//! Explore the time–money trade-off: run the service at several α
//! values and print the achieved Eq. 1 objective against a No-Index
//! baseline of the same seed.
//!
//! ```bash
//! cargo run --release -p flowtune-core --example cost_explorer
//! ```

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_core::{paired_objective, IndexPolicy, QaasService, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn main() {
    const QUANTA: u64 = 120;
    let run = |policy: IndexPolicy, alpha: f64| {
        let mut config = ServiceConfig::default();
        config.params.total_quanta = QUANTA;
        config.params.tuner.alpha = alpha;
        config.policy = policy;
        config.workload = WorkloadKind::paper_phases();
        QaasService::new(config).run().expect("service run failed")
    };

    println!("running No-Index baseline ({QUANTA} quanta)...");
    let baseline = run(IndexPolicy::NoIndex, 0.5);
    println!(
        "baseline: {} dataflows, {:.2} quanta avg, ${:.3}/dataflow",
        baseline.dataflows_finished,
        baseline.avg_makespan_quanta(),
        baseline.cost_per_dataflow()
    );
    println!();
    println!("alpha  finished  avg time  $/dataflow  storage $  objective $");
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let r = run(IndexPolicy::Gain { delete: true }, alpha);
        let objective = paired_objective(
            &baseline,
            &r,
            alpha,
            flowtune_common::Money::from_dollars(0.1),
        );
        println!(
            "{alpha:>5.2}  {:>8}  {:>8.2}  {:>10.3}  {:>9.3}  {objective:>+11.2}",
            r.dataflows_finished,
            r.avg_makespan_quanta(),
            r.cost_per_dataflow(),
            r.index_storage_cost.as_dollars(),
        );
    }
    println!();
    println!("small α weights money (build less, store less); large α weights time");
}
