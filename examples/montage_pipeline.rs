//! The full planning pipeline on one Montage dataflow, step by step:
//! generate → skyline-schedule → inspect the Pareto front and its idle
//! slots → interleave build-index operators → execute on the simulated
//! cloud.
//!
//! ```bash
//! cargo run --release -p flowtune-core --example montage_pipeline
//! ```

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::collections::BTreeMap;

use flowtune_cloud::{IndexAvailability, Simulator};
use flowtune_common::{BuildOpId, DataflowId, ExperimentParams, SimRng, SimTime};
use flowtune_core::experiment::ExperimentSetup;
use flowtune_dataflow::App;
use flowtune_interleave::{BuildOp, LpInterleaver};
use flowtune_sched::{idle_slots, total_fragmentation, BuildRef, SkylineScheduler};

fn main() {
    let setup = ExperimentSetup::new(ExperimentParams::default());
    let quantum = setup.params.cloud.quantum;

    // 1. Generate a Montage dataflow reading its files' partitions.
    let mut factory_rng = SimRng::seed_from_u64(99);
    let reads = setup.filedb.partitions_of(App::Montage);
    let dag = App::Montage.generate(100, &reads, &mut factory_rng);
    println!(
        "dataflow: {} operators, {} edges, critical path {:.1} s, total work {:.1} s",
        dag.len(),
        dag.edges().len(),
        dag.critical_path().as_secs_f64(),
        dag.total_work().as_secs_f64()
    );

    // 2. Skyline scheduling: the Pareto front over (time, money).
    let scheduler = SkylineScheduler::new(setup.scheduler_config(12));
    let skyline = scheduler.schedule(&dag);
    println!("\nskyline ({} schedules):", skyline.len());
    for s in &skyline {
        println!(
            "  time {:>7.1}s  money {:>3} quanta  containers {:>2}  idle {:>6.1}s",
            s.makespan().as_secs_f64(),
            s.leased_quanta(quantum),
            s.containers().len(),
            total_fragmentation(s, quantum).as_secs_f64()
        );
    }

    // 3. The service executes the fastest schedule; look at its slots.
    let mut schedule = skyline.into_iter().next().expect("non-empty skyline");
    let slots = idle_slots(&schedule, quantum);
    println!("\nfastest schedule has {} idle slots:", slots.len());
    for slot in slots.iter().take(8) {
        println!(
            "  {} [{:.1}s, {:.1}s)  ({:.1}s)",
            slot.container,
            slot.start.as_secs_f64(),
            slot.end.as_secs_f64(),
            slot.duration().as_secs_f64()
        );
    }

    // 4. Interleave build-index operators for this dataflow's indexes.
    let mut factory = flowtune_dataflow::DataflowFactory::new(
        setup.filedb.clone(),
        100,
        SimRng::seed_from_u64(100),
    );
    let df = factory.make(DataflowId(0), App::Montage, SimTime::ZERO);
    let mut pending = Vec::new();
    for u in df.index_uses.iter().take(12) {
        for (part, duration, _) in setup.catalog.remaining_build_ops(u.index) {
            pending.push(BuildOp {
                id: BuildOpId(pending.len() as u32),
                build: BuildRef {
                    index: u.index,
                    part: part as u32,
                },
                duration,
                gain: u.speedup,
            });
        }
    }
    let before = total_fragmentation(&schedule, quantum);
    let placed = LpInterleaver::new(quantum).interleave(&mut schedule, &pending);
    let after = total_fragmentation(&schedule, quantum);
    println!(
        "\ninterleaved {} of {} pending build ops; fragmentation {:.2} -> {:.2} quanta",
        placed.len(),
        pending.len(),
        before.as_quanta(quantum),
        after.as_quanta(quantum)
    );

    // 5. Execute on the simulated cloud.
    let sim = Simulator::new(setup.params.cloud.clone(), &setup.filedb);
    let report = sim
        .execute(
            &df.dag,
            &schedule,
            &df.index_uses,
            &IndexAvailability::new(),
            &BTreeMap::new(),
        )
        .expect("simulation failed");
    println!(
        "\nexecuted: makespan {:.1}s, {} leased quanta ({}), {} builds completed, {} killed",
        report.makespan.as_secs_f64(),
        report.leased_quanta,
        report.compute_cost,
        report.completed_builds.len(),
        report.killed_builds.len()
    );
}
