//! Idle-slot packing demo: build a schedule with known gaps and watch
//! the LP interleaver (per-slot 0/1 knapsack, Algorithm 3) pack build
//! operators into them, compared against the Graham greedy baseline
//! and the merged-slot upper bound.
//!
//! ```bash
//! cargo run --release -p flowtune-core --example knapsack_packing
//! ```

use flowtune_common::{BuildOpId, ContainerId, IndexId, OpId, SimDuration, SimTime};
use flowtune_interleave::{graham_greedy, merged_upper_bound, BuildOp, LpInterleaver};
use flowtune_sched::{idle_slots, total_fragmentation, Assignment, BuildRef, Schedule};

const Q: SimDuration = SimDuration::from_secs(60);

fn dataflow_op(op: u32, c: u32, start: u64, end: u64) -> Assignment {
    Assignment {
        op: OpId(op),
        container: ContainerId(c),
        start: SimTime::from_secs(start),
        end: SimTime::from_secs(end),
        build: None,
    }
}

fn main() {
    // A two-container schedule with assorted gaps (like Fig. 2b).
    let mut schedule = Schedule::from_assignments(vec![
        dataflow_op(0, 0, 0, 25),
        dataflow_op(1, 0, 55, 80),
        dataflow_op(2, 0, 100, 115),
        dataflow_op(3, 1, 10, 30),
        dataflow_op(4, 1, 90, 110),
    ]);
    println!("idle slots before interleaving:");
    for slot in idle_slots(&schedule, Q) {
        println!(
            "  {} [{:>5.0}s, {:>5.0}s) = {:>4.0}s",
            slot.container,
            slot.start.as_secs_f64(),
            slot.end.as_secs_f64(),
            slot.duration().as_secs_f64()
        );
    }
    let before = total_fragmentation(&schedule, Q);

    // Ten pending build operators with varying durations and gains.
    let pending: Vec<BuildOp> = [
        (28u64, 9.0f64),
        (25, 7.5),
        (22, 6.0),
        (18, 5.0),
        (15, 4.5),
        (12, 3.0),
        (10, 2.5),
        (8, 2.0),
        (6, 1.5),
        (5, 1.0),
    ]
    .iter()
    .enumerate()
    .map(|(i, (secs, gain))| BuildOp {
        id: BuildOpId(i as u32),
        build: BuildRef {
            index: IndexId(i as u32),
            part: 0,
        },
        duration: SimDuration::from_secs(*secs),
        gain: *gain,
    })
    .collect();

    let placed = LpInterleaver::new(Q).interleave(&mut schedule, &pending);
    let after = total_fragmentation(&schedule, Q);
    println!();
    println!(
        "LP interleaver placed {} of {} build ops:",
        placed.len(),
        pending.len()
    );
    for a in schedule.build_assignments() {
        println!(
            "  {} on {} [{:>5.0}s, {:>5.0}s)",
            a.op,
            a.container,
            a.start.as_secs_f64(),
            a.end.as_secs_f64()
        );
    }
    println!(
        "fragmentation: {:.0}s -> {:.0}s",
        before.as_secs_f64(),
        after.as_secs_f64()
    );

    // Compare packing quality against the baselines.
    let slots: Vec<u64> = idle_slots(
        &Schedule::from_assignments(schedule.dataflow_assignments().copied().collect()),
        Q,
    )
    .iter()
    .map(|s| s.duration().as_millis())
    .collect();
    let sizes: Vec<u64> = pending.iter().map(|b| b.duration.as_millis()).collect();
    let gains: Vec<f64> = pending.iter().map(|b| b.gain).collect();
    let (_, graham) = graham_greedy(&slots, &sizes, &gains);
    let lp_gain: f64 = placed.iter().map(|b| b.gain).sum();
    let upper = merged_upper_bound(&slots, &sizes, &gains);
    println!();
    println!("total gain packed: Graham {graham:.1}, LP {lp_gain:.1}, upper bound {upper:.1}");
}
