//! Quickstart: run the QaaS service with gain-based index auto-tuning
//! for a short horizon and print what happened.
//!
//! ```bash
//! cargo run --release -p flowtune-core --example quickstart
//! ```

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_core::{IndexPolicy, QaasService, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn main() {
    // Table 3 defaults (60 s quanta, $0.1/quantum VMs, $1e-4/MB/quantum
    // storage, 100-operator dataflows) with a 60-quantum demo horizon.
    let mut config = ServiceConfig::default();
    config.params.total_quanta = 60;
    config.workload = WorkloadKind::Random;
    config.policy = IndexPolicy::Gain { delete: true };

    println!(
        "running the QaaS service for {} quanta...",
        config.params.total_quanta
    );
    let mut service = QaasService::new(config);
    let report = service.run().expect("service run failed");

    println!();
    println!("dataflows issued:       {}", report.dataflows_issued);
    println!("dataflows finished:     {}", report.dataflows_finished);
    println!(
        "avg time per dataflow:  {:.2} quanta",
        report.avg_makespan_quanta()
    );
    println!("cost per dataflow:      ${:.3}", report.cost_per_dataflow());
    println!("compute cost:           {}", report.compute_cost);
    println!("index storage cost:     {}", report.index_storage_cost);
    println!(
        "build ops completed:    {} (killed: {}, {:.1} % of all ops)",
        report.builds_completed,
        report.builds_killed,
        report.killed_percentage()
    );
    println!("indexes deleted:        {}", report.indexes_deleted);
    if let Some(last) = report.timeline.last() {
        println!(
            "index set at end:       {} indexes / {} partitions / {:.1} MB",
            last.indexes_built,
            last.index_partitions,
            last.stored_bytes as f64 / (1024.0 * 1024.0)
        );
    }
}
