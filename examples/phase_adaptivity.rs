//! Workload adaptation demo: run the service under a phased workload
//! (CyberShake → LIGO → Montage → CyberShake) and watch the index set
//! track the phases — created when the phase makes them beneficial,
//! deleted when it ends, recreated when CyberShake returns.
//!
//! ```bash
//! cargo run --release -p flowtune-core --example phase_adaptivity
//! ```

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_core::{IndexPolicy, QaasService, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn main() {
    let mut config = ServiceConfig::default();
    // A compressed version of the paper's 720-quantum phase schedule.
    config.params.total_quanta = 180;
    config.workload = WorkloadKind::Phases(vec![
        (
            flowtune_dataflow::App::Cybershake,
            flowtune_common::SimDuration::from_secs(2500),
        ),
        (
            flowtune_dataflow::App::Ligo,
            flowtune_common::SimDuration::from_secs(1250),
        ),
        (
            flowtune_dataflow::App::Montage,
            flowtune_common::SimDuration::from_secs(5000),
        ),
        (
            flowtune_dataflow::App::Cybershake,
            flowtune_common::SimDuration::from_secs(2050),
        ),
    ]);
    config.policy = IndexPolicy::Gain { delete: true };

    println!(
        "running a phased workload for {} quanta...",
        config.params.total_quanta
    );
    let mut service = QaasService::new(config);
    let report = service.run().expect("service run failed");

    println!();
    println!("time(q)  indexes  partitions  stored(MB)");
    for point in report.timeline.iter().step_by(3) {
        let bar = "#".repeat(point.indexes_built.min(60));
        println!(
            "{:>7.0}  {:>7}  {:>10}  {:>10.1}  {}",
            point.time_quanta,
            point.indexes_built,
            point.index_partitions,
            point.stored_bytes as f64 / (1024.0 * 1024.0),
            bar
        );
    }
    println!();
    println!(
        "dataflows finished: {}; builds completed: {}; indexes deleted: {}",
        report.dataflows_finished, report.builds_completed, report.indexes_deleted
    );
}
