//! Paged on-"disk" images of committed index partitions.
//!
//! The execution simulator decides *that* a build finished; this store
//! is where the finished partition materially lands: a run of
//! checksummed, epoch-stamped pages in a [`BufferPool`] over a
//! [`MemPageStore`]. Because the pages physically exist, the failure
//! modes the fault layer injects become physically detectable instead
//! of being bookkeeping flags:
//!
//! * a **torn write** ([`IndexPageStore::write_partition_torn`])
//!   persists the full image and then flips a byte mid-way through the
//!   last page — exactly what a partial sector write leaves behind —
//!   and drops the clean buffered frame, as a crash would;
//! * a **crash during build**
//!   ([`IndexPageStore::write_partition_crashed`]) allocates the whole
//!   page run but persists only the prefix that had been flushed when
//!   the container died, so the tail pages are simply missing.
//!
//! Recovery ([`IndexPageStore::verify_partition`]) re-reads every page
//! of the image *from the store* (the pool's [`BufferPool::check`]
//! deliberately bypasses cached frames) and reports how many pages
//! were scanned and which defects were found. The epoch stamp is
//! bumped on every (re)write of a partition, so a stale page from a
//! previous incarnation spliced into a new image is caught even when
//! its checksum is internally consistent.

use flowtune_common::{IndexId, PageId};
use flowtune_storage::{
    BufferPool, MemPageStore, Page, PageCheck, PoolStats, PAGE_PAYLOAD, PAGE_SIZE,
};
use std::collections::BTreeMap;

/// Page-kind tag for index partition image pages.
pub const IMAGE_KIND: u8 = 3;

/// Cap on pages per partition image, so huge modelled partitions
/// (hundreds of MB) don't materialise hundreds of thousands of
/// simulator pages. The image is a *witness* of the partition — large
/// partitions scale duty per page, not page count.
pub const MAX_IMAGE_PAGES: usize = 64;

/// Cached frames held by the store's buffer pool. Deliberately smaller
/// than a busy run's total image pages so eviction traffic shows up in
/// the measured `storage.pool_evictions` counter.
const POOL_PAGES: usize = 256;

/// One committed partition image: its page run and the epoch all pages
/// must carry.
#[derive(Debug, Clone)]
struct PartitionImage {
    pages: Vec<PageId>,
    epoch: u32,
}

/// Outcome of a recovery scan over one partition image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionVerdict {
    /// Pages the scan read back from the persistent store.
    pub pages_scanned: u64,
    /// Pages that failed verification, with the defect found.
    pub bad_pages: Vec<(PageId, PageCheck)>,
}

impl PartitionVerdict {
    /// True when every page of the image verified clean.
    pub fn is_clean(&self) -> bool {
        self.bad_pages.is_empty()
    }
}

/// Paged backing store for committed index partitions; see the module
/// docs.
#[derive(Debug)]
pub struct IndexPageStore {
    pool: BufferPool<MemPageStore>,
    parts: BTreeMap<(IndexId, u32), PartitionImage>,
    next_epoch: u32,
}

impl Default for IndexPageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexPageStore {
    /// An empty store with the default pool capacity.
    pub fn new() -> Self {
        IndexPageStore {
            pool: BufferPool::new(MemPageStore::new(), POOL_PAGES),
            parts: BTreeMap::new(),
            next_epoch: 0,
        }
    }

    /// Number of pages a `bytes`-sized partition image occupies.
    pub fn image_pages(bytes: u64) -> usize {
        let full = bytes.div_ceil(PAGE_SIZE as u64) as usize;
        full.clamp(1, MAX_IMAGE_PAGES)
    }

    /// Persist a clean image for `(index, part)`, replacing any prior
    /// image (and retiring its epoch). Returns the number of pages
    /// written.
    pub fn write_partition(&mut self, index: IndexId, part: u32, bytes: u64) -> usize {
        let (ids, _) = self.write_image(index, part, bytes);
        ids
    }

    /// Persist the image, then tear its last page: one payload byte is
    /// flipped *behind the checksum* and the clean buffered frame is
    /// dropped, modelling a partial page write surviving a crash.
    /// Returns the torn page id.
    pub fn write_partition_torn(&mut self, index: IndexId, part: u32, bytes: u64) -> PageId {
        let (_, pages) = self.write_image(index, part, bytes);
        #[allow(clippy::expect_used)]
        // flowtune-allow(panic-hygiene): write_image always lays down at least one page
        let victim = *pages.last().expect("image has at least one page");
        self.pool.store_mut().corrupt(victim, PAGE_SIZE / 2);
        self.pool.evict(victim);
        victim
    }

    /// Persist only the prefix of the image that had been flushed when
    /// the build crashed `fraction` of the way through: the page run is
    /// allocated in full, but the tail pages never reach the store and
    /// will scan as [`PageCheck::Missing`]. Returns
    /// `(pages_written, pages_missing)`.
    pub fn write_partition_crashed(
        &mut self,
        index: IndexId,
        part: u32,
        bytes: u64,
        fraction: f64,
    ) -> (usize, usize) {
        self.delete_partition(index, part);
        let epoch = self.bump_epoch();
        let n = Self::image_pages(bytes);
        // At least one page is always missing — a crash that flushed
        // everything would just be a completed build.
        let written = ((n as f64 * fraction.clamp(0.0, 1.0)) as usize).min(n - 1);
        let ids: Vec<PageId> = (0..n).map(|_| self.pool.allocate()).collect();
        for (i, id) in ids.iter().take(written).enumerate() {
            let page = Self::image_page(index, part, epoch, i);
            self.pool.write(*id, &page);
        }
        // The frames of a dead container do not survive into recovery.
        for id in &ids {
            self.pool.evict(*id);
        }
        self.parts
            .insert((index, part), PartitionImage { pages: ids, epoch });
        (written, n - written)
    }

    /// Recovery scan: re-read every page of the image from the
    /// persistent store and verify checksum + epoch. `None` when no
    /// image exists for `(index, part)`.
    pub fn verify_partition(&mut self, index: IndexId, part: u32) -> Option<PartitionVerdict> {
        let image = self.parts.get(&(index, part))?.clone();
        let mut bad_pages = Vec::new();
        for id in &image.pages {
            let verdict = self.pool.check(*id, image.epoch);
            if !verdict.is_clean() {
                bad_pages.push((*id, verdict));
            }
        }
        Some(PartitionVerdict {
            pages_scanned: image.pages.len() as u64,
            bad_pages,
        })
    }

    /// Drop the image for `(index, part)` — pages freed, frames
    /// evicted. Idempotent: deleting an absent image is a no-op, which
    /// is what makes double-invalidation safe.
    pub fn delete_partition(&mut self, index: IndexId, part: u32) {
        if let Some(image) = self.parts.remove(&(index, part)) {
            for id in image.pages {
                self.pool.free(id);
            }
        }
    }

    /// Whether an image (clean or not) exists for `(index, part)`.
    pub fn has_partition(&self, index: IndexId, part: u32) -> bool {
        self.parts.contains_key(&(index, part))
    }

    /// Total pages across all live images.
    pub fn page_count(&self) -> usize {
        self.parts.values().map(|img| img.pages.len()).sum()
    }

    /// Pool traffic accumulated by this store.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    fn bump_epoch(&mut self) -> u32 {
        self.next_epoch += 1;
        self.next_epoch
    }

    /// Lay down a full clean image; returns `(page_count, page_ids)`.
    fn write_image(&mut self, index: IndexId, part: u32, bytes: u64) -> (usize, Vec<PageId>) {
        self.delete_partition(index, part);
        let epoch = self.bump_epoch();
        let n = Self::image_pages(bytes);
        let ids: Vec<PageId> = (0..n).map(|_| self.pool.allocate()).collect();
        for (i, id) in ids.iter().enumerate() {
            let page = Self::image_page(index, part, epoch, i);
            self.pool.write(*id, &page);
        }
        self.parts.insert(
            (index, part),
            PartitionImage {
                pages: ids.clone(),
                epoch,
            },
        );
        (n, ids)
    }

    /// Deterministic page payload derived from the image coordinates —
    /// distinct per (index, part, epoch, page), so splicing any other
    /// page into the image cannot masquerade as this one.
    fn image_page(index: IndexId, part: u32, epoch: u32, page_idx: usize) -> Page {
        let mut payload = Vec::with_capacity(512);
        let mut x = (u64::from(index.0) << 40)
            ^ (u64::from(part) << 24)
            ^ (u64::from(epoch) << 8)
            ^ page_idx as u64;
        while payload.len() < 512 {
            // SplitMix64 finalizer: cheap, deterministic byte soup.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            payload.extend_from_slice(&z.to_le_bytes());
        }
        debug_assert!(payload.len() <= PAGE_PAYLOAD);
        #[allow(clippy::expect_used)]
        // flowtune-allow(panic-hygiene): 512-byte payload is far below PAGE_PAYLOAD
        Page::new(IMAGE_KIND, epoch, payload).expect("image payload fits a page")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn clean_write_verifies_clean() {
        let mut store = IndexPageStore::new();
        let n = store.write_partition(IndexId(1), 3, 10 * MB);
        assert!(n >= 1);
        let verdict = store.verify_partition(IndexId(1), 3).unwrap();
        assert!(verdict.is_clean());
        assert_eq!(verdict.pages_scanned, n as u64);
    }

    #[test]
    fn torn_write_is_detected() {
        let mut store = IndexPageStore::new();
        let victim = store.write_partition_torn(IndexId(2), 0, 5 * MB);
        let verdict = store.verify_partition(IndexId(2), 0).unwrap();
        assert_eq!(
            verdict.bad_pages,
            vec![(victim, PageCheck::ChecksumMismatch)]
        );
    }

    #[test]
    fn crashed_write_leaves_missing_tail_pages() {
        let mut store = IndexPageStore::new();
        let (written, missing) = store.write_partition_crashed(IndexId(3), 1, 20 * MB, 0.5);
        assert!(missing >= 1);
        let verdict = store.verify_partition(IndexId(3), 1).unwrap();
        assert_eq!(verdict.bad_pages.len(), missing);
        assert!(verdict
            .bad_pages
            .iter()
            .all(|(_, check)| *check == PageCheck::Missing));
        assert_eq!(verdict.pages_scanned as usize, written + missing);
    }

    #[test]
    fn crash_at_zero_fraction_writes_nothing() {
        let mut store = IndexPageStore::new();
        let (written, missing) = store.write_partition_crashed(IndexId(4), 0, MB, 0.0);
        assert_eq!(written, 0);
        assert!(missing >= 1);
    }

    #[test]
    fn rebuild_after_delete_verifies_clean_again() {
        let mut store = IndexPageStore::new();
        store.write_partition_torn(IndexId(5), 2, 3 * MB);
        store.delete_partition(IndexId(5), 2);
        assert!(!store.has_partition(IndexId(5), 2));
        // Idempotent: a second delete of the same partition is a no-op.
        store.delete_partition(IndexId(5), 2);
        store.write_partition(IndexId(5), 2, 3 * MB);
        assert!(store.verify_partition(IndexId(5), 2).unwrap().is_clean());
    }

    #[test]
    fn stale_epoch_page_cannot_masquerade_as_the_new_image() {
        let mut store = IndexPageStore::new();
        store.write_partition(IndexId(6), 0, MB);
        let old_epoch = store.parts[&(IndexId(6), 0)].epoch;
        store.write_partition(IndexId(6), 0, MB);
        let image = store.parts.get(&(IndexId(6), 0)).unwrap().clone();
        assert_ne!(image.epoch, old_epoch);
        // Splice an internally-consistent page from the *old* epoch
        // into the new image: checksum passes, epoch must not.
        let spliced = IndexPageStore::image_page(IndexId(6), 0, old_epoch, 0);
        store.pool.write(image.pages[0], &spliced);
        store.pool.evict(image.pages[0]);
        let verdict = store.verify_partition(IndexId(6), 0).unwrap();
        assert_eq!(
            verdict.bad_pages,
            vec![(image.pages[0], PageCheck::EpochMismatch)]
        );
    }

    #[test]
    fn image_pages_scale_and_clamp() {
        assert_eq!(IndexPageStore::image_pages(0), 1);
        assert_eq!(IndexPageStore::image_pages(1), 1);
        assert_eq!(IndexPageStore::image_pages(PAGE_SIZE as u64 + 1), 2);
        assert_eq!(IndexPageStore::image_pages(u64::MAX), MAX_IMAGE_PAGES);
    }
}
