//! Measured-I/O calibration for the index cost model.
//!
//! The analytic model in [`crate::model`] *asserts* how many bytes a
//! build writes (geometric series over tree levels) and says nothing
//! about probe reads. Since the B+Tree now really runs node-per-page
//! over a checksummed page store with an LRU buffer pool, we can
//! *measure* both instead: bulk-build a calibration tree, count the
//! page writes it issued, then replay a seeded probe workload twice —
//! once cold (cache dropped before every probe, so each probe pays its
//! full root-to-leaf store reads) and once warm (pool left alone, so
//! the hit rate reflects steady-state locality). The resulting
//! [`MeasuredIo`] plugs into [`IndexCostModel::with_measured_io`] and
//! replaces the asserted write term in the gain model's build time.
//!
//! Everything here is deterministic: the key set is dense `0..rows`,
//! the probe sequence comes from a [`SimRng`] seed, and pool traffic
//! depends only on the access order.

use crate::bptree::BPlusTree;
use crate::model::MeasuredIo;
use flowtune_common::SimRng;
use flowtune_storage::PAGE_SIZE;

/// Node order of the calibration tree. Matches the order the query
/// layer uses for measured speedups, so the per-row page traffic is
/// representative.
pub const CALIBRATION_ORDER: usize = 64;

/// Build a `rows`-key calibration tree and measure its real page
/// traffic under `probes` seeded point lookups. See the module docs
/// for the cold/warm protocol.
pub fn measure_io(rows: u32, probes: u32, seed: u64) -> MeasuredIo {
    let rows = rows.max(1);
    let probes = probes.max(1);
    let pairs: Vec<(i64, u32)> = (0..rows).map(|i| (i64::from(i), i)).collect();
    let mut tree: BPlusTree<i64> = BPlusTree::bulk_build(CALIBRATION_ORDER, &pairs);

    let built = tree.pool_stats();
    let write_bytes_per_row = built.page_writes as f64 * PAGE_SIZE as f64 / f64::from(rows);

    // Cold probes: every probe starts from an empty pool and pays the
    // full root-to-leaf path in store reads.
    let mut rng = SimRng::seed_from_u64(seed);
    let before = tree.pool_stats();
    for _ in 0..probes {
        tree.drop_cache();
        let key = rng.uniform_i64(0, i64::from(rows) - 1);
        let _ = tree.get_first(&key);
    }
    let cold = tree.pool_stats();
    let read_bytes_per_probe =
        (cold.page_reads - before.page_reads) as f64 * PAGE_SIZE as f64 / f64::from(probes);

    // Warm probes: same seeded key sequence, pool left to fill — the
    // hit rate is what steady-state probing actually sees.
    let mut rng = SimRng::seed_from_u64(seed);
    for _ in 0..probes {
        let key = rng.uniform_i64(0, i64::from(rows) - 1);
        let _ = tree.get_first(&key);
    }
    let warm = tree.pool_stats();
    let hits = warm.hits - cold.hits;
    let loads = hits + (warm.misses - cold.misses);
    let probe_hit_rate = if loads == 0 {
        0.0
    } else {
        hits as f64 / loads as f64
    };

    MeasuredIo {
        write_bytes_per_row,
        read_bytes_per_probe,
        probe_hit_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IndexCostModel;

    #[test]
    fn measurement_is_deterministic() {
        let a = measure_io(5_000, 200, 0xCA11);
        let b = measure_io(5_000, 200, 0xCA11);
        assert_eq!(a, b);
    }

    #[test]
    fn measured_figures_are_physical() {
        let io = measure_io(5_000, 200, 7);
        // A bulk build touches each leaf at least once, so per-row
        // write traffic is at least PAGE_SIZE / order and well under a
        // page per row (keys pack many-per-page).
        assert!(io.write_bytes_per_row > 0.0);
        assert!(
            io.write_bytes_per_row < PAGE_SIZE as f64,
            "write {} B/row",
            io.write_bytes_per_row
        );
        // Every cold probe reads at least the root page.
        assert!(io.read_bytes_per_probe >= PAGE_SIZE as f64);
        // The warm pool (4096 frames) holds this whole tree, so warm
        // probes should overwhelmingly hit.
        assert!(
            io.probe_hit_rate > 0.9,
            "warm hit rate {}",
            io.probe_hit_rate
        );
    }

    #[test]
    fn calibrated_model_uses_the_measurement() {
        let io = measure_io(2_000, 50, 3);
        let model = IndexCostModel::new(12.0, 117.0).with_measured_io(io);
        let rows = 100_000u64;
        let expect_write = rows as f64 * io.write_bytes_per_row;
        let expect = flowtune_common::SimDuration::from_secs_f64(
            (rows as f64 * model.table_rec_bytes + expect_write) / model.network_bandwidth,
        );
        assert_eq!(model.io_time(rows), expect);
    }
}
