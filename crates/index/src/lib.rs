//! # flowtune-index
//!
//! Index substrate: a from-scratch B+Tree and hash index (used by
//! `flowtune-query` to *measure* the speedups of Table 6), the paper's
//! analytic index size/build-time model (§3, "Data Model"), and the index
//! catalog that tracks which index partitions exist, when they were built
//! and which are stale.
//!
//! Indexes are **partitioned**: an index over a table consists of one
//! index partition per table partition, each built by an independent
//! build operator. This is what lets builds fit in idle schedule slots
//! and proceed incrementally and in parallel.

pub mod bptree;
pub mod catalog;
pub mod hash;
pub mod measured;
pub mod model;
pub mod store;
pub mod tuple;

pub use bptree::{BPlusTree, NodeKey};
pub use catalog::{IndexCatalog, IndexKind, IndexSpec, IndexState};
pub use hash::HashIndex;
pub use measured::measure_io;
pub use model::{IndexCostModel, MeasuredIo};
pub use store::{IndexPageStore, PartitionVerdict};
pub use tuple::{KeyPart, TupleKey, MAX_TUPLE_ARITY};
