//! Composite B+Tree keys: tuples of column values with sentinel
//! bounds, ordered lexicographically.
//!
//! A composite index over columns `(a, b, c)` stores one [`TupleKey`]
//! per row. Because tuple order is lexicographic, a *prefix* of the
//! key — values for `a` alone, or `a` and `b` — maps to a contiguous
//! key range, which is the **leftmost-prefix rule**: the index serves
//! any predicate set that pins a leftmost run of its columns (all
//! equalities plus at most one trailing range), and nothing else.
//!
//! Prefix ranges need per-component sentinels: "every key whose first
//! component is 7" is the range `(7, MIN, MIN) ..= (7, MAX, MAX)`.
//! [`KeyPart`] carries those sentinels as enum variants — `Min < Val(v)
//! < Max` falls out of the derived discriminant order, the same trick
//! MapDB and btreemapped use for their tuple serializers — so bound
//! construction never collides with a real stored value, not even
//! `i64::MIN`/`i64::MAX`.
//!
//! Stored keys use only [`KeyPart::Val`]; sentinels appear exclusively
//! in probe bounds. The encoding is total anyway (a tag byte per part)
//! so an encoded bound is still a valid page payload — [`NodeKey`] has
//! no "probe-only" mode.

use crate::bptree::NodeKey;
use flowtune_common::{FlowtuneError, Result};

/// Most components a composite key may carry. Two or three covers the
/// predicate sets the tuner observes; wider keys blow the fanout for
/// no modelled benefit.
pub const MAX_TUPLE_ARITY: usize = 3;

/// One component of a [`TupleKey`]: a column value or a per-component
/// sentinel bound. The derived `Ord` places `Min` below every `Val`
/// and `Max` above every `Val` via discriminant order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KeyPart {
    /// Below every value — low fill for prefix range bounds.
    Min,
    /// A real column value.
    Val(i64),
    /// Above every value — high fill for prefix range bounds.
    Max,
}

/// Encoding tag bytes, one per [`KeyPart`] variant.
const TAG_MIN: u8 = 0;
const TAG_VAL: u8 = 1;
const TAG_MAX: u8 = 2;

/// A composite key: 1–[`MAX_TUPLE_ARITY`] components compared
/// lexicographically (derived `Ord` on the `Vec` is exactly that).
///
/// All keys in one tree must share an arity — mixed arities would
/// still order consistently (shorter tuples sort first at the point of
/// divergence) but never arise: a composite index has a fixed column
/// list.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleKey {
    parts: Vec<KeyPart>,
}

impl TupleKey {
    /// A stored key from column values, in index-column order.
    ///
    /// Panics if `vals` is empty or wider than [`MAX_TUPLE_ARITY`] —
    /// arity is fixed when the index is declared, so a bad width is a
    /// construction error, not data.
    pub fn vals(vals: &[i64]) -> Self {
        assert!(
            (1..=MAX_TUPLE_ARITY).contains(&vals.len()),
            "tuple arity {} outside 1..={MAX_TUPLE_ARITY}",
            vals.len()
        );
        TupleKey {
            parts: vals.iter().map(|&v| KeyPart::Val(v)).collect(),
        }
    }

    /// Inclusive low bound for "every key starting with `prefix`":
    /// the prefix values followed by `Min` fill up to `arity`.
    pub fn prefix_lo(prefix: &[i64], arity: usize) -> Self {
        Self::bound(prefix, None, arity, KeyPart::Min)
    }

    /// Inclusive high bound for "every key starting with `prefix`":
    /// the prefix values followed by `Max` fill up to `arity`.
    pub fn prefix_hi(prefix: &[i64], arity: usize) -> Self {
        Self::bound(prefix, None, arity, KeyPart::Max)
    }

    /// Inclusive low bound for "keys starting with `prefix` whose next
    /// component is ≥ `from`" — the equality-prefix-plus-range shape of
    /// the leftmost rule.
    pub fn range_lo(prefix: &[i64], from: i64, arity: usize) -> Self {
        Self::bound(prefix, Some(from), arity, KeyPart::Min)
    }

    /// Inclusive high bound for "keys starting with `prefix` whose
    /// next component is ≤ `to`".
    pub fn range_hi(prefix: &[i64], to: i64, arity: usize) -> Self {
        Self::bound(prefix, Some(to), arity, KeyPart::Max)
    }

    fn bound(prefix: &[i64], pivot: Option<i64>, arity: usize, fill: KeyPart) -> Self {
        let pinned = prefix.len() + usize::from(pivot.is_some());
        assert!(
            (1..=MAX_TUPLE_ARITY).contains(&arity) && pinned <= arity,
            "bound pins {pinned} of {arity} components (max {MAX_TUPLE_ARITY})"
        );
        let mut parts: Vec<KeyPart> = prefix.iter().map(|&v| KeyPart::Val(v)).collect();
        if let Some(v) = pivot {
            parts.push(KeyPart::Val(v));
        }
        parts.resize(arity, fill);
        TupleKey { parts }
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.parts.len()
    }

    /// The `i`-th component's value, `None` for sentinels or out of
    /// range.
    pub fn component(&self, i: usize) -> Option<i64> {
        match self.parts.get(i)? {
            KeyPart::Val(v) => Some(*v),
            KeyPart::Min | KeyPart::Max => None,
        }
    }
}

impl NodeKey for TupleKey {
    fn encode_key(&self, out: &mut Vec<u8>) {
        #[allow(clippy::expect_used)]
        // flowtune-allow(panic-hygiene): arity is asserted ≤ MAX_TUPLE_ARITY at construction
        let n = u8::try_from(self.parts.len()).expect("tuple arity fits u8");
        out.push(n);
        for part in &self.parts {
            match part {
                KeyPart::Min => out.push(TAG_MIN),
                KeyPart::Val(v) => {
                    out.push(TAG_VAL);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                KeyPart::Max => out.push(TAG_MAX),
            }
        }
    }

    fn decode_key(bytes: &[u8], at: &mut usize) -> Result<Self> {
        let n = usize::from(read_u8(bytes, at)?);
        if !(1..=MAX_TUPLE_ARITY).contains(&n) {
            return Err(FlowtuneError::corrupt(format!("tuple arity {n} invalid")));
        }
        let mut parts = Vec::with_capacity(n);
        for _ in 0..n {
            parts.push(match read_u8(bytes, at)? {
                TAG_MIN => KeyPart::Min,
                TAG_MAX => KeyPart::Max,
                TAG_VAL => {
                    let mut buf = [0u8; 8];
                    let Some(raw) = bytes.get(*at..*at + 8) else {
                        return Err(FlowtuneError::corrupt("tuple key truncated"));
                    };
                    buf.copy_from_slice(raw);
                    *at += 8;
                    KeyPart::Val(i64::from_le_bytes(buf))
                }
                tag => {
                    return Err(FlowtuneError::corrupt(format!(
                        "unknown tuple part tag {tag}"
                    )))
                }
            });
        }
        Ok(TupleKey { parts })
    }
}

fn read_u8(bytes: &[u8], at: &mut usize) -> Result<u8> {
    let Some(&b) = bytes.get(*at) else {
        return Err(FlowtuneError::corrupt("tuple key truncated"));
    };
    *at += 1;
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bptree::BPlusTree;
    use flowtune_common::SimRng;

    #[test]
    fn sentinels_bracket_all_values() {
        assert!(KeyPart::Min < KeyPart::Val(i64::MIN));
        assert!(KeyPart::Val(i64::MAX) < KeyPart::Max);
        assert!(KeyPart::Val(-1) < KeyPart::Val(0));
    }

    #[test]
    fn tuple_order_is_lexicographic() {
        let a = TupleKey::vals(&[1, 9, 9]);
        let b = TupleKey::vals(&[2, 0, 0]);
        assert!(a < b, "first component dominates");
        let lo = TupleKey::prefix_lo(&[2], 3);
        let hi = TupleKey::prefix_hi(&[2], 3);
        assert!(lo <= b && b <= hi, "prefix bounds bracket the prefix run");
        assert!(a < lo, "other prefixes fall outside");
    }

    #[test]
    fn encode_decode_round_trips() {
        let keys = [
            TupleKey::vals(&[0]),
            TupleKey::vals(&[i64::MIN, i64::MAX]),
            TupleKey::vals(&[7, -3, 42]),
            TupleKey::prefix_lo(&[7], 3),
            TupleKey::range_hi(&[7], 99, 3),
        ];
        for key in &keys {
            let mut buf = Vec::new();
            key.encode_key(&mut buf);
            let mut at = 0;
            let back = TupleKey::decode_key(&buf, &mut at).unwrap();
            assert_eq!(&back, key);
            assert_eq!(at, buf.len(), "decode consumes the whole encoding");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TupleKey::decode_key(&[], &mut 0).is_err());
        assert!(TupleKey::decode_key(&[0], &mut 0).is_err(), "arity 0");
        assert!(TupleKey::decode_key(&[9], &mut 0).is_err(), "arity 9");
        assert!(
            TupleKey::decode_key(&[1, 7], &mut 0).is_err(),
            "unknown tag"
        );
        assert!(
            TupleKey::decode_key(&[1, TAG_VAL, 1, 2], &mut 0).is_err(),
            "truncated value"
        );
    }

    #[test]
    #[should_panic(expected = "tuple arity")]
    fn oversized_tuple_is_a_construction_error() {
        let _ = TupleKey::vals(&[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "bound pins")]
    fn overfull_bound_is_a_construction_error() {
        let _ = TupleKey::range_lo(&[1, 2, 3], 4, 3);
    }

    /// Seeded property check: every prefix / prefix+range scan over a
    /// composite tree matches a naive filter over the raw tuples,
    /// element-wise and in order — including pivots at the component
    /// extremes, where only the sentinel variants keep bounds total.
    #[test]
    fn prefix_scans_match_naive_filter() {
        let mut rng = SimRng::seed_from_u64(0xC0);
        for _ in 0..40 {
            let n = rng.uniform_u64(1, 300) as usize;
            let tuples: Vec<[i64; 3]> = (0..n)
                .map(|_| {
                    [
                        rng.uniform_i64(0, 6),
                        rng.uniform_i64(0, 6),
                        rng.uniform_i64(0, 6),
                    ]
                })
                .collect();
            let mut pairs: Vec<(TupleKey, u32)> = tuples
                .iter()
                .enumerate()
                .map(|(i, t)| (TupleKey::vals(t), i as u32))
                .collect();
            pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            let t = BPlusTree::bulk_build(8, &pairs);

            for a in 0..6 {
                // One-column prefix.
                let got: Vec<u32> = t
                    .range(TupleKey::prefix_lo(&[a], 3), TupleKey::prefix_hi(&[a], 3))
                    .map(|(_, r)| r)
                    .collect();
                let want = naive(&tuples, |v| v[0] == a);
                assert_eq!(got, want, "prefix ({a})");
                for b in 0..6 {
                    // Two-column prefix.
                    let got: Vec<u32> = t
                        .range(
                            TupleKey::prefix_lo(&[a, b], 3),
                            TupleKey::prefix_hi(&[a, b], 3),
                        )
                        .map(|(_, r)| r)
                        .collect();
                    let want = naive(&tuples, |v| v[0] == a && v[1] == b);
                    assert_eq!(got, want, "prefix ({a},{b})");
                }
                // Prefix + trailing range on the second component.
                let (lo, hi) = (rng.uniform_i64(0, 6), rng.uniform_i64(0, 6));
                let got: Vec<u32> = t
                    .range(
                        TupleKey::range_lo(&[a], lo, 3),
                        TupleKey::range_hi(&[a], hi, 3),
                    )
                    .map(|(_, r)| r)
                    .collect();
                let want = naive(&tuples, |v| v[0] == a && (lo..=hi).contains(&v[1]));
                assert_eq!(got, want, "range ({a}, {lo}..={hi})");
            }
            // Pivot at the component extremes: sentinel bounds must
            // still bracket values equal to i64::MIN / i64::MAX.
            let got = t
                .range(
                    TupleKey::range_lo(&[], i64::MIN, 3),
                    TupleKey::range_hi(&[], i64::MAX, 3),
                )
                .count();
            assert_eq!(got, tuples.len(), "full-domain range sees every tuple");
        }
    }

    fn naive(tuples: &[[i64; 3]], pred: impl Fn(&[i64; 3]) -> bool) -> Vec<u32> {
        let mut hits: Vec<(TupleKey, u32)> = tuples
            .iter()
            .enumerate()
            .filter(|(_, v)| pred(v))
            .map(|(i, v)| (TupleKey::vals(v), i as u32))
            .collect();
        hits.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        hits.into_iter().map(|(_, r)| r).collect()
    }

    #[test]
    fn composite_keys_fit_default_order_pages() {
        // Arity-3 keys are 28 encoded bytes; a 64-order leaf stays
        // inside one 4 KiB page (6 + 64·(4 + 28) = 2054 bytes).
        let pairs: Vec<(TupleKey, u32)> = (0..5000)
            .map(|i| (TupleKey::vals(&[i / 100, i % 100, i % 7]), i as u32))
            .collect();
        let t = BPlusTree::bulk_build(64, &pairs);
        t.check_invariants().unwrap();
        t.verify_pages().unwrap();
        assert_eq!(t.len(), 5000);
    }
}
