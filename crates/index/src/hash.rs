//! A from-scratch chained hash index.
//!
//! O(1) point lookups (the paper's "Lookup" operator category with a hash
//! index). Uses FNV-1a hashing and power-of-two bucket counts; buckets are
//! short `Vec`s of `(key, row)` pairs.

use std::fmt::Debug;
use std::hash::{Hash, Hasher};

/// FNV-1a, a small fast hasher — no dependency needed.
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

/// Hash index from keys to row ids; duplicates allowed.
#[derive(Debug, Clone)]
pub struct HashIndex<K> {
    buckets: Vec<Vec<(K, u32)>>,
    mask: u64,
    len: usize,
}

impl<K: Hash + Eq + Clone + Debug> HashIndex<K> {
    /// Create an index pre-sized for about `expected` entries.
    pub fn with_capacity(expected: usize) -> Self {
        // Target load factor ~1 entry per bucket.
        let buckets = expected.next_power_of_two().max(16);
        HashIndex {
            buckets: vec![Vec::new(); buckets],
            mask: buckets as u64 - 1,
            len: 0,
        }
    }

    /// Build from `(key, row)` pairs.
    pub fn build(pairs: impl IntoIterator<Item = (K, u32)>) -> Self {
        let iter = pairs.into_iter();
        let mut idx = HashIndex::with_capacity(iter.size_hint().0.max(16));
        for (k, r) in iter {
            idx.insert(k, r);
        }
        idx
    }

    fn bucket_of(&self, key: &K) -> usize {
        let mut h = Fnv1a::default();
        key.hash(&mut h);
        (h.finish() & self.mask) as usize
    }

    /// Insert one entry.
    pub fn insert(&mut self, key: K, row: u32) {
        let b = self.bucket_of(&key);
        self.buckets[b].push((key, row));
        self.len += 1;
        if self.len > self.buckets.len() * 2 {
            self.grow();
        }
    }

    fn grow(&mut self) {
        let new_size = self.buckets.len() * 2;
        let mut next = HashIndex {
            buckets: vec![Vec::new(); new_size],
            mask: new_size as u64 - 1,
            len: 0,
        };
        for bucket in self.buckets.drain(..) {
            for (k, r) in bucket {
                next.insert(k, r);
            }
        }
        *self = next;
    }

    /// Row ids of all entries equal to `key`.
    pub fn get<'a>(&'a self, key: &'a K) -> impl Iterator<Item = u32> + 'a {
        self.buckets[self.bucket_of(key)]
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, r)| *r)
    }

    /// First matching row id, if any.
    pub fn get_first(&self, key: &K) -> Option<u32> {
        self.get(key).next()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;

    #[test]
    fn insert_get() {
        let mut h = HashIndex::with_capacity(4);
        for i in 0..100i64 {
            h.insert(i, (i * 2) as u32);
        }
        assert_eq!(h.len(), 100);
        for i in 0..100i64 {
            assert_eq!(h.get_first(&i), Some((i * 2) as u32));
        }
        assert_eq!(h.get_first(&500), None);
    }

    #[test]
    fn duplicates() {
        let h = HashIndex::build([(7i64, 1), (7, 2), (8, 3)]);
        let mut rows: Vec<u32> = h.get(&7).collect();
        rows.sort_unstable();
        assert_eq!(rows, [1, 2]);
        assert_eq!(h.get(&8).count(), 1);
        assert!(!h.is_empty());
    }

    #[test]
    fn growth_preserves_entries() {
        let mut h = HashIndex::with_capacity(16);
        for i in 0..10_000i64 {
            h.insert(i, i as u32);
        }
        assert_eq!(h.len(), 10_000);
        assert_eq!(h.get_first(&9_999), Some(9_999));
        assert_eq!(h.get_first(&0), Some(0));
    }

    #[test]
    fn string_keys() {
        let h = HashIndex::build([("a".to_owned(), 0), ("b".to_owned(), 1)]);
        assert_eq!(h.get_first(&"b".to_owned()), Some(1));
        assert_eq!(h.get_first(&"z".to_owned()), None);
    }

    #[test]
    fn matches_linear_scan() {
        let mut rng = SimRng::seed_from_u64(0x4A5);
        for _ in 0..150 {
            let n = rng.uniform_u64(0, 300) as usize;
            let keys: Vec<i64> = (0..n).map(|_| rng.uniform_i64(0, 50)).collect();
            let probe = rng.uniform_i64(0, 60);
            let h = HashIndex::build(keys.iter().enumerate().map(|(i, k)| (*k, i as u32)));
            let mut got: Vec<u32> = h.get(&probe).collect();
            got.sort_unstable();
            let expect: Vec<u32> = keys
                .iter()
                .enumerate()
                .filter(|(_, k)| **k == probe)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, expect);
        }
    }
}
