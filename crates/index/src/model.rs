//! Analytic index size and build-time model (§3, "Data Model").
//!
//! The paper assumes B+Tree indexes and sizes them with a geometric
//! series: a balanced tree of fan-out `k` over `n` records stores
//! `Σ_{i=0}^{m} k^i = (n·k − 1)/(k − 1)` records including the non-leaf
//! levels (`m = log_k n`), each of `RecSize` bytes. The build time of a
//! partition is the I/O time to read the table partition and write the
//! index plus an `O(n log n)` CPU term:
//!
//! ```text
//! t_ip(idx, p) = t_io(idx, p) + C(idx) · p.n · log_k(p.n)
//! t_io(idx, p) = (p.n · RecSize_table + size(idx, p)) / net
//! ```
//!
//! `C(idx)` is a per-record CPU constant derived from the indexed
//! columns.

use flowtune_common::{pricing, Money, Quanta, SimDuration};

/// Measured build/probe I/O from a real paged-tree run (see
/// `measured::measure_io`). When attached to a cost model the analytic
/// I/O term switches from the asserted geometric-series estimate to
/// these observed figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredIo {
    /// Page bytes written to the store per indexed row during a bulk
    /// build (encoded node pages ÷ rows).
    pub write_bytes_per_row: f64,
    /// Page bytes read from the store per cold point probe.
    pub read_bytes_per_probe: f64,
    /// Fraction of probe page loads served by the buffer pool once
    /// warm (hits / (hits + misses)).
    pub probe_hit_rate: f64,
}

/// Per-index cost model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexCostModel {
    /// Average size of one index record (key bytes + row pointer).
    pub rec_bytes: f64,
    /// Average size of one *table* record (read during the build).
    pub table_rec_bytes: f64,
    /// Disk block size used to derive the tree fan-out.
    pub block_bytes: f64,
    /// Per-record CPU constant `C(idx)`, in seconds per `n·log_k n` unit.
    pub cpu_per_record: f64,
    /// Network bandwidth in bytes/second for the I/O term.
    pub network_bandwidth: f64,
    /// Measured build/probe I/O; `None` keeps the pure analytic model.
    pub measured_io: Option<MeasuredIo>,
}

impl IndexCostModel {
    /// A model with defaults matching the experimental setup: 8 KB
    /// blocks, 1 Gbps network, and a CPU constant calibrated so that a
    /// 128 MB / ~1.1 M-row partition builds in a few seconds (bulk
    /// B+Tree builds run at roughly half a million rows per second).
    pub fn new(rec_bytes: f64, table_rec_bytes: f64) -> Self {
        IndexCostModel {
            rec_bytes,
            table_rec_bytes,
            block_bytes: 8192.0,
            cpu_per_record: 1e-6,
            network_bandwidth: 1e9 / 8.0,
            measured_io: None,
        }
    }

    /// The same model with measured build/probe I/O attached; the
    /// analytic write-size estimate in [`IndexCostModel::io_time`] is
    /// replaced by the observed per-row page traffic.
    pub fn with_measured_io(mut self, io: MeasuredIo) -> Self {
        self.measured_io = Some(io);
        self
    }

    /// Tree fan-out `k`: how many index records fit in one disk block.
    pub fn fanout(&self) -> f64 {
        (self.block_bytes / self.rec_bytes).max(2.0)
    }

    /// Index size over `n` records: `RecSize · (n·k − 1)/(k − 1)` bytes
    /// (geometric series over all tree levels).
    pub fn size_bytes(&self, rows: u64) -> u64 {
        if rows == 0 {
            return 0;
        }
        let k = self.fanout();
        let total_records = (rows as f64 * k - 1.0) / (k - 1.0);
        (total_records * self.rec_bytes).round() as u64
    }

    /// I/O part of the build time: read the table partition, write the
    /// index partition. With measured I/O attached the write side uses
    /// the observed per-row page traffic instead of the analytic
    /// geometric-series size.
    pub fn io_time(&self, rows: u64) -> SimDuration {
        let write_bytes = match self.measured_io {
            Some(io) => rows as f64 * io.write_bytes_per_row,
            None => self.size_bytes(rows) as f64,
        };
        let bytes = rows as f64 * self.table_rec_bytes + write_bytes;
        SimDuration::from_secs_f64(bytes / self.network_bandwidth)
    }

    /// CPU part of the build time: `C · n · log_k n` seconds.
    pub fn cpu_time(&self, rows: u64) -> SimDuration {
        if rows < 2 {
            return SimDuration::ZERO;
        }
        let k = self.fanout();
        let logk = (rows as f64).ln() / k.ln();
        SimDuration::from_secs_f64(self.cpu_per_record * rows as f64 * logk)
    }

    /// Total time to build the index partition over `rows` records.
    /// Clamped to at least one millisecond for non-empty partitions so a
    /// build operator always occupies schedulable time.
    pub fn build_time(&self, rows: u64) -> SimDuration {
        let t = self.io_time(rows) + self.cpu_time(rows);
        if rows > 0 {
            t.max(SimDuration::from_millis(1))
        } else {
            t
        }
    }

    /// Storage cost of keeping the index partition for `window_quanta`
    /// quanta at the given per-MB-per-quantum price.
    pub fn storage_cost(
        &self,
        rows: u64,
        window_quanta: Quanta,
        price_per_mb_quantum: Money,
    ) -> Money {
        pricing::storage_cost(
            self.size_bytes(rows),
            window_quanta.get(),
            price_per_mb_quantum,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;

    /// orderkey index: 4-byte key + 8-byte pointer.
    fn orderkey_model() -> IndexCostModel {
        IndexCostModel::new(12.0, 117.0)
    }

    #[test]
    fn size_close_to_n_recsize_for_large_fanout() {
        let m = orderkey_model();
        let n = 12_000_000u64;
        let size = m.size_bytes(n);
        let flat = n as f64 * m.rec_bytes;
        // Fan-out ~683, so tree overhead ≈ 1/(k-1) ≈ 0.15 %.
        assert!(size as f64 > flat);
        assert!((size as f64) < flat * 1.01, "size {size} vs flat {flat}");
    }

    #[test]
    fn table5_orderkey_percentage_reproduces() {
        // Paper: orderkey index is 146.99 MB on a 1.4 GB table (10.49 %).
        let m = orderkey_model();
        let n = 11_997_996u64;
        let pct = m.size_bytes(n) as f64 / (n as f64 * m.table_rec_bytes) * 100.0;
        assert!(
            (9.0..12.0).contains(&pct),
            "orderkey index {pct:.2} % of table"
        );
    }

    #[test]
    fn empty_partition_costs_nothing() {
        let m = orderkey_model();
        assert_eq!(m.size_bytes(0), 0);
        assert_eq!(m.build_time(0), SimDuration::ZERO);
    }

    #[test]
    fn build_time_fits_idle_slots() {
        // A ~1.1 M-row (128 MB) partition must build in well under a
        // quantum for interleaving to make sense.
        let m = orderkey_model();
        let t = m.build_time(1_100_000).as_secs_f64();
        assert!((1.0..60.0).contains(&t), "partition build time {t:.1}s");
    }

    #[test]
    fn io_time_scales_with_bytes() {
        let m = orderkey_model();
        let t1 = m.io_time(100_000).as_secs_f64();
        let t2 = m.io_time(200_000).as_secs_f64();
        assert!((t2 / t1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn storage_cost_matches_pricing_helper() {
        let m = orderkey_model();
        let price = Money::from_dollars(1e-4);
        let c = m.storage_cost(1_000_000, Quanta::new(2.0), price);
        let expect = pricing::storage_cost(m.size_bytes(1_000_000), 2.0, price);
        assert_eq!(c, expect);
    }

    #[test]
    fn measured_io_replaces_the_analytic_write_term() {
        let base = orderkey_model();
        let calibrated = orderkey_model().with_measured_io(MeasuredIo {
            write_bytes_per_row: base.rec_bytes * 3.0,
            read_bytes_per_probe: 12288.0,
            probe_hit_rate: 0.9,
        });
        let rows = 1_000_000u64;
        let expect = SimDuration::from_secs_f64(
            (rows as f64 * base.table_rec_bytes + rows as f64 * base.rec_bytes * 3.0)
                / base.network_bandwidth,
        );
        assert_eq!(calibrated.io_time(rows), expect);
        // Measured traffic here is larger than the analytic estimate,
        // so the calibrated build is strictly slower.
        assert!(calibrated.io_time(rows) > base.io_time(rows));
        assert!(calibrated.build_time(rows) > base.build_time(rows));
    }

    #[test]
    fn size_and_time_are_monotonic() {
        let mut rng = SimRng::seed_from_u64(0x30D);
        for _ in 0..500 {
            let a = rng.uniform_u64(1, 5_000_000);
            let b = rng.uniform_u64(1, 5_000_000);
            let m = orderkey_model();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            assert!(m.size_bytes(lo) <= m.size_bytes(hi));
            assert!(m.build_time(lo) <= m.build_time(hi));
        }
    }
}
