//! The index catalog.
//!
//! Tracks every index the service knows about — *potential* (suggested by
//! an index advisor, not built), partially built, fully built — together
//! with per-partition creation times `T` and version stamps. Batch
//! updates to a table partition invalidate the index partitions built on
//! it (§3: "Indexes built on table partitions that are updated are
//! deleted and marked as not built").

use std::collections::HashMap;

use flowtune_common::{FileId, IndexId, SimDuration, SimTime};

use crate::model::IndexCostModel;

/// The physical shape of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// B+Tree: supports lookup, range, sort, group, merge join.
    BTree,
    /// Hash: supports lookup and hash join only.
    Hash,
}

/// Immutable description of one index `idx(t, C, T)`.
#[derive(Debug, Clone)]
pub struct IndexSpec {
    /// Identity.
    pub id: IndexId,
    /// The file/table the index is built over.
    pub file: FileId,
    /// Indexed column names, in key order. One entry is the paper's
    /// single-column case; composite indexes list their components
    /// left to right, and the leftmost-prefix rule (see
    /// [`crate::tuple`]) decides which predicate sets they serve.
    pub columns: Vec<String>,
    /// Physical kind.
    pub kind: IndexKind,
    /// Cost model (record sizes, fan-out, CPU constant).
    pub model: IndexCostModel,
    /// Rows of each table partition, in partition order; index partition
    /// `i` covers table partition `i`.
    pub partition_rows: Vec<u64>,
}

impl IndexSpec {
    /// Convenience constructor for the common single-column case.
    pub fn single_column(
        id: IndexId,
        file: FileId,
        column: impl Into<String>,
        kind: IndexKind,
        model: IndexCostModel,
        partition_rows: Vec<u64>,
    ) -> Self {
        IndexSpec {
            id,
            file,
            columns: vec![column.into()],
            kind,
            model,
            partition_rows,
        }
    }

    /// Human-readable column list, e.g. `quantity+shipdate`.
    pub fn display_columns(&self) -> String {
        self.columns.join("+")
    }

    /// True when the index keys more than one column.
    pub fn is_composite(&self) -> bool {
        self.columns.len() > 1
    }

    /// Leftmost-prefix subsumption: true when this index's column list
    /// is a strict leftmost prefix of `other`'s over the same file and
    /// kind. Every probe this index can serve, `other` serves too (at
    /// the same asymptotic cost), so a catalog holding `other` should
    /// never also build `self`.
    pub fn is_prefix_of(&self, other: &IndexSpec) -> bool {
        self.file == other.file
            && self.kind == other.kind
            && self.columns.len() < other.columns.len()
            && other.columns.starts_with(&self.columns)
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partition_rows.len()
    }

    /// Size in bytes of index partition `part` once built.
    pub fn partition_bytes(&self, part: usize) -> u64 {
        self.model.size_bytes(self.partition_rows[part])
    }

    /// Total size in bytes when fully built.
    pub fn total_bytes(&self) -> u64 {
        (0..self.partition_count())
            .map(|p| self.partition_bytes(p))
            .sum()
    }

    /// Time to build index partition `part`.
    pub fn partition_build_time(&self, part: usize) -> SimDuration {
        self.model.build_time(self.partition_rows[part])
    }

    /// Total time `ti(idx)` to build every partition sequentially.
    pub fn total_build_time(&self) -> SimDuration {
        (0..self.partition_count())
            .map(|p| self.partition_build_time(p))
            .sum()
    }
}

/// One built index partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltPartition {
    /// When the partition finished building (an element of the ordered
    /// creation-time set `T`).
    pub built_at: SimTime,
    /// Version of the table partition it was built against.
    pub version: u32,
}

/// Mutable state of one index.
#[derive(Debug, Clone)]
pub struct IndexState {
    /// `parts[i]` is `Some` when index partition `i` is currently built.
    pub parts: Vec<Option<BuiltPartition>>,
}

impl IndexState {
    fn new(partitions: usize) -> Self {
        IndexState {
            parts: vec![None; partitions],
        }
    }

    /// Number of built partitions.
    pub fn built_count(&self) -> usize {
        self.parts.iter().filter(|p| p.is_some()).count()
    }

    /// True when every partition is built.
    pub fn fully_built(&self) -> bool {
        self.parts.iter().all(Option::is_some)
    }

    /// True when no partition is built.
    pub fn empty(&self) -> bool {
        self.parts.iter().all(Option::is_none)
    }
}

/// The catalog of all indexes known to the service.
#[derive(Debug, Default)]
pub struct IndexCatalog {
    specs: Vec<IndexSpec>,
    states: Vec<IndexState>,
    by_file: HashMap<FileId, Vec<IndexId>>,
}

impl IndexCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an index; its `id` field is overwritten with the assigned
    /// identity, which is returned.
    pub fn add(&mut self, mut spec: IndexSpec) -> IndexId {
        let id = IndexId::from_index(self.specs.len());
        spec.id = id;
        self.by_file.entry(spec.file).or_default().push(id);
        self.states.push(IndexState::new(spec.partition_count()));
        self.specs.push(spec);
        id
    }

    /// All registered index ids.
    pub fn ids(&self) -> impl Iterator<Item = IndexId> + '_ {
        (0..self.specs.len()).map(IndexId::from_index)
    }

    /// Number of registered indexes.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Spec of an index.
    pub fn spec(&self, id: IndexId) -> &IndexSpec {
        &self.specs[id.index()]
    }

    /// Attach measured build/probe I/O to every registered cost model,
    /// switching build-time estimates from the analytic write-size
    /// term to the observed per-row page traffic (see
    /// `crate::measured`).
    pub fn calibrate_io(&mut self, io: crate::model::MeasuredIo) {
        for spec in &mut self.specs {
            spec.model.measured_io = Some(io);
        }
    }

    /// State of an index.
    pub fn state(&self, id: IndexId) -> &IndexState {
        &self.states[id.index()]
    }

    /// Indexes registered over a file.
    pub fn indexes_on(&self, file: FileId) -> &[IndexId] {
        self.by_file.get(&file).map_or(&[], Vec::as_slice)
    }

    /// True when index partition `part` is built and current.
    pub fn is_partition_built(&self, id: IndexId, part: usize) -> bool {
        self.states[id.index()].parts[part].is_some()
    }

    /// Fraction of partitions currently built, in `[0, 1]`.
    pub fn built_fraction(&self, id: IndexId) -> f64 {
        let st = &self.states[id.index()];
        if st.parts.is_empty() {
            return 0.0;
        }
        st.built_count() as f64 / st.parts.len() as f64
    }

    /// Record that index partition `part` finished building at `now`
    /// against table-partition `version`.
    pub fn mark_built(&mut self, id: IndexId, part: usize, now: SimTime, version: u32) {
        self.states[id.index()].parts[part] = Some(BuiltPartition {
            built_at: now,
            version,
        });
    }

    /// Invalidate one built index partition (a failed or fault-killed
    /// build): it goes back to *not built* and can be re-attempted.
    /// Returns true when the partition was built.
    pub fn unmark_built(&mut self, id: IndexId, part: usize) -> bool {
        self.states[id.index()].parts[part].take().is_some()
    }

    /// A batch update bumped `file`'s partition `part` to `new_version`:
    /// drop every index partition built against an older version.
    /// Returns `(index, partition, freed_bytes)` for each dropped one.
    pub fn invalidate_table_partition(
        &mut self,
        file: FileId,
        part: usize,
        new_version: u32,
    ) -> Vec<(IndexId, usize, u64)> {
        let mut dropped = Vec::new();
        for &id in self.by_file.get(&file).map_or(&[][..], Vec::as_slice) {
            let state = &mut self.states[id.index()];
            if part < state.parts.len() {
                if let Some(built) = state.parts[part] {
                    if built.version < new_version {
                        state.parts[part] = None;
                        dropped.push((id, part, self.specs[id.index()].partition_bytes(part)));
                    }
                }
            }
        }
        dropped
    }

    /// Delete every built partition of an index (it stays registered as a
    /// *potential* index). Returns the freed bytes.
    pub fn delete_index(&mut self, id: IndexId) -> u64 {
        let spec = &self.specs[id.index()];
        let state = &mut self.states[id.index()];
        let mut freed = 0;
        for (part, slot) in state.parts.iter_mut().enumerate() {
            if slot.take().is_some() {
                freed += spec.partition_bytes(part);
            }
        }
        freed
    }

    /// Bytes currently occupied by the built partitions of `id`.
    pub fn built_bytes(&self, id: IndexId) -> u64 {
        let spec = &self.specs[id.index()];
        self.states[id.index()]
            .parts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| spec.partition_bytes(i))
            .sum()
    }

    /// Bytes currently occupied by all built index partitions.
    pub fn total_built_bytes(&self) -> u64 {
        self.ids().map(|id| self.built_bytes(id)).sum()
    }

    /// Remaining build work for `id`: the unbuilt partitions as
    /// `(partition ordinal, build time, index-partition bytes)`.
    pub fn remaining_build_ops(&self, id: IndexId) -> Vec<(usize, SimDuration, u64)> {
        let spec = &self.specs[id.index()];
        self.states[id.index()]
            .parts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| (i, spec.partition_build_time(i), spec.partition_bytes(i)))
            .collect()
    }

    /// Remaining total build time `ti` for the unbuilt partitions of `id`.
    pub fn remaining_build_time(&self, id: IndexId) -> SimDuration {
        self.remaining_build_ops(id)
            .iter()
            .map(|(_, t, _)| *t)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(file: u32, parts: usize) -> IndexSpec {
        IndexSpec::single_column(
            IndexId(0),
            FileId(file),
            "orderkey",
            IndexKind::BTree,
            IndexCostModel::new(12.0, 117.0),
            vec![100_000; parts],
        )
    }

    fn composite(file: u32, columns: &[&str], kind: IndexKind) -> IndexSpec {
        IndexSpec {
            id: IndexId(0),
            file: FileId(file),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            kind,
            model: IndexCostModel::new(12.0, 117.0),
            partition_rows: vec![100_000; 2],
        }
    }

    #[test]
    fn leftmost_prefix_subsumption() {
        let a = composite(0, &["quantity"], IndexKind::BTree);
        let ab = composite(0, &["quantity", "shipdate"], IndexKind::BTree);
        let abc = composite(0, &["quantity", "linenumber", "shipdate"], IndexKind::BTree);
        assert!(a.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&abc));
        assert!(!ab.is_prefix_of(&abc), "(a,b) is not a prefix of (a,c,b)");
        assert!(!ab.is_prefix_of(&a), "subsumption is not symmetric");
        assert!(
            !a.is_prefix_of(&a),
            "strict: an index does not subsume itself"
        );
        // Different file or kind: no subsumption.
        assert!(!a.is_prefix_of(&composite(1, &["quantity", "shipdate"], IndexKind::BTree)));
        assert!(!a.is_prefix_of(&composite(0, &["quantity", "shipdate"], IndexKind::Hash)));
        assert_eq!(abc.display_columns(), "quantity+linenumber+shipdate");
        assert!(abc.is_composite() && !a.is_composite());
    }

    #[test]
    fn add_and_lookup() {
        let mut cat = IndexCatalog::new();
        let a = cat.add(spec(0, 3));
        let b = cat.add(spec(0, 3));
        let c = cat.add(spec(1, 2));
        assert_eq!(cat.len(), 3);
        assert_eq!(cat.indexes_on(FileId(0)), &[a, b]);
        assert_eq!(cat.indexes_on(FileId(1)), &[c]);
        assert!(cat.indexes_on(FileId(9)).is_empty());
        assert_eq!(cat.spec(a).partition_count(), 3);
    }

    #[test]
    fn unmark_built_supports_fail_invalidate_rebuild() {
        let mut cat = IndexCatalog::new();
        let id = cat.add(spec(0, 2));
        // build -> fail -> invalidate -> rebuild.
        cat.mark_built(id, 1, SimTime::from_secs(10), 0);
        assert!(cat.is_partition_built(id, 1));
        assert!(cat.unmark_built(id, 1));
        assert!(!cat.is_partition_built(id, 1));
        assert!(!cat.unmark_built(id, 1), "already invalidated");
        assert_eq!(cat.built_bytes(id), 0);
        cat.mark_built(id, 1, SimTime::from_secs(99), 0);
        assert!(cat.is_partition_built(id, 1));
    }

    #[test]
    fn build_state_machine() {
        let mut cat = IndexCatalog::new();
        let id = cat.add(spec(0, 4));
        assert!(cat.state(id).empty());
        assert_eq!(cat.built_fraction(id), 0.0);
        cat.mark_built(id, 1, SimTime::from_secs(10), 0);
        cat.mark_built(id, 2, SimTime::from_secs(20), 0);
        assert_eq!(cat.state(id).built_count(), 2);
        assert!((cat.built_fraction(id) - 0.5).abs() < 1e-12);
        assert!(cat.is_partition_built(id, 1));
        assert!(!cat.is_partition_built(id, 0));
        assert!(!cat.state(id).fully_built());
        assert_eq!(cat.remaining_build_ops(id).len(), 2);
    }

    #[test]
    fn built_bytes_tracks_partitions() {
        let mut cat = IndexCatalog::new();
        let id = cat.add(spec(0, 2));
        assert_eq!(cat.built_bytes(id), 0);
        cat.mark_built(id, 0, SimTime::ZERO, 0);
        let per_part = cat.spec(id).partition_bytes(0);
        assert_eq!(cat.built_bytes(id), per_part);
        cat.mark_built(id, 1, SimTime::ZERO, 0);
        assert_eq!(cat.built_bytes(id), cat.spec(id).total_bytes());
        assert_eq!(cat.total_built_bytes(), cat.built_bytes(id));
    }

    #[test]
    fn delete_frees_everything() {
        let mut cat = IndexCatalog::new();
        let id = cat.add(spec(0, 2));
        cat.mark_built(id, 0, SimTime::ZERO, 0);
        cat.mark_built(id, 1, SimTime::ZERO, 0);
        let freed = cat.delete_index(id);
        assert_eq!(freed, cat.spec(id).total_bytes());
        assert!(cat.state(id).empty());
        // Idempotent.
        assert_eq!(cat.delete_index(id), 0);
    }

    #[test]
    fn update_invalidates_stale_partitions_only() {
        let mut cat = IndexCatalog::new();
        let a = cat.add(spec(0, 3));
        let b = cat.add(spec(0, 3));
        cat.mark_built(a, 1, SimTime::ZERO, 0);
        cat.mark_built(b, 1, SimTime::ZERO, 1); // already built on v1
        cat.mark_built(a, 2, SimTime::ZERO, 0);
        let dropped = cat.invalidate_table_partition(FileId(0), 1, 1);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].0, a);
        assert!(!cat.is_partition_built(a, 1));
        assert!(cat.is_partition_built(b, 1));
        assert!(cat.is_partition_built(a, 2));
    }

    #[test]
    fn remaining_build_time_shrinks_as_parts_build() {
        let mut cat = IndexCatalog::new();
        let id = cat.add(spec(0, 4));
        let full = cat.remaining_build_time(id);
        cat.mark_built(id, 0, SimTime::ZERO, 0);
        let less = cat.remaining_build_time(id);
        assert!(less < full);
        assert_eq!(cat.spec(id).total_build_time(), full);
    }
}
