//! A from-scratch B+Tree, node-per-page over a paged store.
//!
//! Maps orderable keys to `u32` row ids, allows duplicate keys, supports
//! point lookup, ordered range scans and full in-order traversal — the
//! access paths behind the paper's five operator categories (lookup,
//! range select, sorting, grouping, join).
//!
//! Every node is one fixed-size page in a private
//! [`flowtune_storage::MemPageStore`], accessed through a
//! [`flowtune_storage::BufferPool`] — checksummed, epoch-stamped, and
//! LRU-cached. There is no separate in-memory arena: the page store is
//! the *only* representation, so the code path the fault-injection and
//! recovery machinery verifies is the same one every query runs
//! (DESIGN §5h). Leaves are chained for range scans. Pool traffic
//! (hits/misses/evictions, page reads/writes) is what turns the cost
//! model's asserted build/probe I/O into measured I/O.

use flowtune_common::{FlowtuneError, PageId, Result};
use flowtune_storage::{BufferPool, MemPageStore, Page, PageStore, PoolStats};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::rc::Rc;

/// Maximum keys per node if not overridden.
pub const DEFAULT_ORDER: usize = 64;

/// Cached frames in a tree's private buffer pool (16 MiB of 4 KiB
/// pages). Trees larger than this spill to store reads, which is
/// exactly the traffic the measured-I/O calibration wants to see.
pub const TREE_POOL_PAGES: usize = 4096;

/// Page kind tag for leaf nodes.
const KIND_LEAF: u8 = 1;
/// Page kind tag for internal nodes.
const KIND_INTERNAL: u8 = 2;
/// `next`-pointer sentinel for the last leaf in the chain.
const NO_PAGE: u32 = u32::MAX;

/// Keys a paged B+Tree can store: orderable, and encodable to/from the
/// page payload byte format.
pub trait NodeKey: Ord + Clone + Debug {
    /// Append this key's encoding to `out`.
    fn encode_key(&self, out: &mut Vec<u8>);
    /// Decode one key starting at `*at`, advancing `*at` past it.
    fn decode_key(bytes: &[u8], at: &mut usize) -> Result<Self>;
}

impl NodeKey for i64 {
    fn encode_key(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode_key(bytes: &[u8], at: &mut usize) -> Result<Self> {
        let raw = take(bytes, at, 8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(i64::from_le_bytes(buf))
    }
}

impl NodeKey for u64 {
    fn encode_key(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode_key(bytes: &[u8], at: &mut usize) -> Result<Self> {
        let raw = take(bytes, at, 8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_le_bytes(buf))
    }
}

impl NodeKey for String {
    fn encode_key(&self, out: &mut Vec<u8>) {
        #[allow(clippy::expect_used)]
        // flowtune-allow(panic-hygiene): string keys longer than a page cannot be stored at all; the length check in store_node rejects the node first
        let len = u16::try_from(self.len()).expect("string key fits a page");
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }

    fn decode_key(bytes: &[u8], at: &mut usize) -> Result<Self> {
        let raw = take(bytes, at, 2)?;
        let len = usize::from(u16::from_le_bytes([raw[0], raw[1]]));
        let body = take(bytes, at, len)?;
        String::from_utf8(body.to_vec())
            .map_err(|_| FlowtuneError::corrupt("string key is not valid UTF-8"))
    }
}

/// Slice `n` bytes at `*at`, advancing the cursor.
fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = at.checked_add(n).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(FlowtuneError::corrupt("node payload truncated"));
    };
    let out = &bytes[*at..end];
    *at = end;
    Ok(out)
}

fn read_u16(bytes: &[u8], at: &mut usize) -> Result<u16> {
    let raw = take(bytes, at, 2)?;
    Ok(u16::from_le_bytes([raw[0], raw[1]]))
}

fn read_u32(bytes: &[u8], at: &mut usize) -> Result<u32> {
    let raw = take(bytes, at, 4)?;
    Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
}

/// Decoded in-memory view of one node page.
#[derive(Debug, Clone)]
enum Node<K> {
    Internal {
        /// `keys[i]` is the smallest key reachable under `children[i+1]`.
        keys: Vec<K>,
        children: Vec<PageId>,
    },
    Leaf {
        keys: Vec<K>,
        rows: Vec<u32>,
        next: Option<PageId>,
    },
}

/// Encode a node into `(page kind, payload)`.
///
/// Leaf payload: `n: u16 | next: u32 | n × row: u32 | n × key`.
/// Internal payload: `n: u16 | (n+1) × child: u32 | n × key`.
fn encode_node<K: NodeKey>(node: &Node<K>) -> (u8, Vec<u8>) {
    let mut out = Vec::new();
    match node {
        Node::Leaf { keys, rows, next } => {
            #[allow(clippy::expect_used)]
            // flowtune-allow(panic-hygiene): node arity is bounded by the tree order, which store_node caps far below u16::MAX
            let n = u16::try_from(keys.len()).expect("leaf arity fits u16");
            out.extend_from_slice(&n.to_le_bytes());
            out.extend_from_slice(&next.map_or(NO_PAGE, |p| p.0).to_le_bytes());
            for row in rows {
                out.extend_from_slice(&row.to_le_bytes());
            }
            for key in keys {
                key.encode_key(&mut out);
            }
            (KIND_LEAF, out)
        }
        Node::Internal { keys, children } => {
            #[allow(clippy::expect_used)]
            // flowtune-allow(panic-hygiene): node arity is bounded by the tree order, which store_node caps far below u16::MAX
            let n = u16::try_from(keys.len()).expect("internal arity fits u16");
            out.extend_from_slice(&n.to_le_bytes());
            for child in children {
                out.extend_from_slice(&child.0.to_le_bytes());
            }
            for key in keys {
                key.encode_key(&mut out);
            }
            (KIND_INTERNAL, out)
        }
    }
}

/// Decode a node page written by [`encode_node`].
fn decode_node<K: NodeKey>(page: &Page) -> Result<Node<K>> {
    let bytes = &page.payload;
    let mut at = 0usize;
    let n = usize::from(read_u16(bytes, &mut at)?);
    match page.kind {
        KIND_LEAF => {
            let next = read_u32(bytes, &mut at)?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(read_u32(bytes, &mut at)?);
            }
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(K::decode_key(bytes, &mut at)?);
            }
            Ok(Node::Leaf {
                keys,
                rows,
                next: (next != NO_PAGE).then_some(PageId(next)),
            })
        }
        KIND_INTERNAL => {
            let mut children = Vec::with_capacity(n + 1);
            for _ in 0..=n {
                children.push(PageId(read_u32(bytes, &mut at)?));
            }
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(K::decode_key(bytes, &mut at)?);
            }
            Ok(Node::Internal { keys, children })
        }
        kind => Err(FlowtuneError::corrupt(format!(
            "unknown node page kind {kind}"
        ))),
    }
}

/// B+Tree from keys to row ids; duplicates allowed. Nodes live in a
/// private checksummed page store behind an LRU buffer pool.
#[derive(Debug, Clone)]
pub struct BPlusTree<K> {
    /// `RefCell` because reads (`get`, `range`, `iter`) take `&self`
    /// but still move frames through the pool's LRU state. Borrows
    /// never outlive a single node load, so they cannot overlap.
    pool: RefCell<BufferPool<MemPageStore>>,
    /// Decoded-node memo above the pool: a load served from here is a
    /// shared-`Rc` clone, skipping the page copy and key decode
    /// entirely — which is what keeps warm point lookups ahead of warm
    /// range scans in wall time. Nodes are immutable once stored
    /// (every mutation writes a fresh node), so sharing is safe. The
    /// memo is buffered memory in the crash model — `drop_cache` and
    /// `tear_page` discard it — and is bounded at [`TREE_POOL_PAGES`]
    /// entries by a deterministic full flush.
    memo: RefCell<BTreeMap<PageId, Rc<Node<K>>>>,
    /// Loads served by the memo, folded into [`Self::pool_stats`] hits.
    memo_hits: Cell<u64>,
    root: PageId,
    order: usize,
    len: usize,
    /// Epoch stamped into every page this tree writes.
    epoch: u32,
    _marker: std::marker::PhantomData<K>,
}

impl<K: NodeKey> Default for BPlusTree<K> {
    fn default() -> Self {
        Self::new(DEFAULT_ORDER)
    }
}

impl<K: NodeKey> BPlusTree<K> {
    /// Create an empty tree with the given order (max keys per node,
    /// must be ≥ 3).
    pub fn new(order: usize) -> Self {
        assert!(order >= 3, "B+Tree order must be at least 3");
        let mut pool = BufferPool::new(MemPageStore::new(), TREE_POOL_PAGES);
        let root = pool.allocate();
        let tree = BPlusTree {
            pool: RefCell::new(pool),
            memo: RefCell::new(BTreeMap::new()),
            memo_hits: Cell::new(0),
            root,
            order,
            len: 0,
            epoch: 0,
            _marker: std::marker::PhantomData,
        };
        tree.store_node(
            root,
            &Node::Leaf {
                keys: Vec::new(),
                rows: Vec::new(),
                next: None,
            },
        );
        tree
    }

    /// Bulk-build from `(key, row)` pairs sorted by key. Leaves are packed
    /// to `order` entries, then internal levels are stacked — O(n).
    ///
    /// Panics if the input is not sorted by key.
    pub fn bulk_build(order: usize, pairs: &[(K, u32)]) -> Self {
        assert!(order >= 3, "B+Tree order must be at least 3");
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_build input must be sorted by key"
        );
        if pairs.is_empty() {
            return Self::new(order);
        }
        let mut pool = BufferPool::new(MemPageStore::new(), TREE_POOL_PAGES);
        let chunks: Vec<&[(K, u32)]> = pairs.chunks(order).collect();
        let leaf_ids: Vec<PageId> = chunks.iter().map(|_| pool.allocate()).collect();
        let mut tree = BPlusTree {
            pool: RefCell::new(pool),
            memo: RefCell::new(BTreeMap::new()),
            memo_hits: Cell::new(0),
            root: leaf_ids[0],
            order,
            len: pairs.len(),
            epoch: 0,
            _marker: std::marker::PhantomData,
        };
        let mut level: Vec<(K, PageId)> = Vec::with_capacity(chunks.len());
        for (i, chunk) in chunks.iter().enumerate() {
            tree.store_node(
                leaf_ids[i],
                &Node::Leaf {
                    keys: chunk.iter().map(|(k, _)| k.clone()).collect(),
                    rows: chunk.iter().map(|(_, r)| *r).collect(),
                    next: leaf_ids.get(i + 1).copied(),
                },
            );
            level.push((chunk[0].0.clone(), leaf_ids[i]));
        }
        // Stack internal levels until a single root remains.
        while level.len() > 1 {
            let mut upper: Vec<(K, PageId)> = Vec::new();
            for chunk in level.chunks(order + 1) {
                let id = tree.pool.borrow_mut().allocate();
                tree.store_node(
                    id,
                    &Node::Internal {
                        keys: chunk[1..].iter().map(|(k, _)| k.clone()).collect(),
                        children: chunk.iter().map(|(_, c)| *c).collect(),
                    },
                );
                upper.push((chunk[0].0.clone(), id));
            }
            level = upper;
        }
        tree.root = level[0].1;
        tree
    }

    /// Decode the node stored at `id`, serving a shared handle from
    /// the decoded-node memo when possible.
    fn load(&self, id: PageId) -> Rc<Node<K>> {
        if let Some(node) = self.memo.borrow().get(&id) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return Rc::clone(node);
        }
        #[allow(clippy::expect_used)]
        let page = self
            .pool
            .borrow_mut()
            .read(id)
            // flowtune-allow(panic-hygiene): the tree owns its private page store; a page it wrote failing read/decode is memory corruption, unrecoverable at this layer (external corruption is surfaced as a typed error by verify_pages, which recovery runs *before* serving queries)
            .expect("tree-owned page must read back cleanly");
        #[allow(clippy::expect_used)]
        // flowtune-allow(panic-hygiene): same invariant as above — pages this tree wrote decode by construction
        let node = Rc::new(decode_node(&page).expect("tree-owned page must decode"));
        self.memo_node(id, Rc::clone(&node));
        node
    }

    /// Owned copy of the node stored at `id`, for mutation.
    fn load_owned(&self, id: PageId) -> Node<K> {
        (*self.load(id)).clone()
    }

    /// Shared handle to the leaf stored at `id`.
    fn load_leaf(&self, id: PageId) -> Rc<Node<K>> {
        let node = self.load(id);
        debug_assert!(
            matches!(&*node, Node::Leaf { .. }),
            "leaf chain points to internal node"
        );
        node
    }

    /// Encode and persist a node to its page, refreshing the memo.
    fn store_node(&self, id: PageId, node: &Node<K>) {
        let (kind, payload) = encode_node(node);
        #[allow(clippy::expect_used)]
        let page = Page::new(kind, self.epoch, payload)
            // flowtune-allow(panic-hygiene): an encoded node exceeding one page means the configured order is too large for the key width — a construction-time configuration error, not a runtime condition; every supported (order, key type) pair is pinned by tests
            .expect("node must fit one page: order too large for this key type");
        self.pool.borrow_mut().write(id, &page);
        self.memo_node(id, Rc::new(node.clone()));
    }

    /// Insert a decoded node into the memo, flushing it wholesale when
    /// it reaches the pool's frame budget (deterministic, and never
    /// counted as pool evictions — the persistent frames are intact).
    fn memo_node(&self, id: PageId, node: Rc<Node<K>>) {
        let mut memo = self.memo.borrow_mut();
        if memo.len() >= TREE_POOL_PAGES && !memo.contains_key(&id) {
            memo.clear();
        }
        memo.insert(id, node);
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a lone leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &*self.load(node) {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Number of node pages in the store (live nodes; splits never free).
    pub fn node_count(&self) -> usize {
        self.pool.borrow().store().page_count()
    }

    /// Buffer-pool traffic accumulated by this tree (page reads and
    /// writes, cache hits/misses/evictions) — the measured-I/O source
    /// the cost model calibrates against. Loads served by the
    /// decoded-node memo count as hits: the memo never outlives the
    /// cached frame it shadows, so they are cache hits in every sense
    /// that matters to the probe model.
    pub fn pool_stats(&self) -> PoolStats {
        let mut stats = self.pool.borrow().stats();
        stats.hits += self.memo_hits.get();
        stats
    }

    /// Drop every buffered frame (pool frames and decoded-node memo)
    /// so the next probes run cold — the measurement hook
    /// `measured::measure_io` uses to observe real from-store probe
    /// traffic instead of warm-cache hits.
    pub fn drop_cache(&mut self) {
        self.pool.borrow_mut().clear_cache();
        self.memo.borrow_mut().clear();
    }

    /// Insert a `(key, row)` pair; duplicates are kept.
    pub fn insert(&mut self, key: K, row: u32) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, row) {
            // Root split: create a new root.
            let old_root = self.root;
            let id = self.pool.borrow_mut().allocate();
            self.store_node(
                id,
                &Node::Internal {
                    keys: vec![sep],
                    children: vec![old_root, right],
                },
            );
            self.root = id;
        }
        self.len += 1;
    }

    /// Recursive insert; returns `Some((separator, new_right_page))` when
    /// the child split.
    fn insert_rec(&mut self, node: PageId, key: K, row: u32) -> Option<(K, PageId)> {
        match self.load_owned(node) {
            Node::Leaf {
                mut keys,
                mut rows,
                next,
            } => {
                let pos = keys.partition_point(|k| *k <= key);
                keys.insert(pos, key);
                rows.insert(pos, row);
                if keys.len() > self.order {
                    Some(self.split_leaf(node, keys, rows, next))
                } else {
                    self.store_node(node, &Node::Leaf { keys, rows, next });
                    None
                }
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                // Route with strict `<` so a key equal to a separator goes
                // left; the leaf chain makes duplicates that historically
                // stayed right of the separator still reachable.
                let child_idx = keys.partition_point(|k| *k < key);
                let child = children[child_idx];
                let (sep, right) = self.insert_rec(child, key, row)?;
                // The new right node goes immediately after the child
                // that split; with duplicate separators a key search
                // could misplace it.
                keys.insert(child_idx, sep);
                children.insert(child_idx + 1, right);
                if keys.len() > self.order {
                    return Some(self.split_internal(node, keys, children));
                }
                self.store_node(node, &Node::Internal { keys, children });
                None
            }
        }
    }

    /// Split an overfull leaf, persisting both halves.
    fn split_leaf(
        &mut self,
        node: PageId,
        mut keys: Vec<K>,
        mut rows: Vec<u32>,
        next: Option<PageId>,
    ) -> (K, PageId) {
        let new_id = self.pool.borrow_mut().allocate();
        let mid = keys.len() / 2;
        let right_keys: Vec<K> = keys.split_off(mid);
        let right_rows: Vec<u32> = rows.split_off(mid);
        let sep = right_keys[0].clone();
        self.store_node(
            new_id,
            &Node::Leaf {
                keys: right_keys,
                rows: right_rows,
                next,
            },
        );
        self.store_node(
            node,
            &Node::Leaf {
                keys,
                rows,
                next: Some(new_id),
            },
        );
        (sep, new_id)
    }

    /// Split an overfull internal node, persisting both halves.
    fn split_internal(
        &mut self,
        node: PageId,
        mut keys: Vec<K>,
        mut children: Vec<PageId>,
    ) -> (K, PageId) {
        let new_id = self.pool.borrow_mut().allocate();
        let mid = keys.len() / 2;
        let right_keys: Vec<K> = keys.split_off(mid + 1);
        #[allow(clippy::expect_used)]
        // flowtune-allow(panic-hygiene): split is only called on overfull nodes, so mid >= 1 keys remain
        let sep = keys.pop().expect("internal node must have a middle key");
        let right_children: Vec<PageId> = children.split_off(mid + 1);
        self.store_node(
            new_id,
            &Node::Internal {
                keys: right_keys,
                children: right_children,
            },
        );
        self.store_node(node, &Node::Internal { keys, children });
        (sep, new_id)
    }

    /// Locate the leaf that may contain `key` (or the first key ≥ it)
    /// and the position within it. `None` descends to the leftmost
    /// leaf at position 0 — the single descent path shared by point
    /// lookups, range scans, and full traversal, so pool/memo
    /// accounting counts every entry point identically.
    fn seek(&self, key: Option<&K>) -> (PageId, usize) {
        let mut node = self.root;
        loop {
            match &*self.load(node) {
                Node::Internal { keys, children } => {
                    node = match key {
                        Some(key) => children[keys.partition_point(|k| k < key)],
                        None => children[0],
                    };
                }
                Node::Leaf { keys, .. } => {
                    let pos = key.map_or(0, |key| keys.partition_point(|k| k < key));
                    return (node, pos);
                }
            }
        }
    }

    /// Remove one `(key, row)` entry; returns true if it existed.
    ///
    /// Deletion is *lazy*: the entry is removed from its leaf but nodes
    /// are never merged or rebalanced. Search correctness is unaffected
    /// (separators stay valid bounds); space is reclaimed when the index
    /// partition is rebuilt, which is how the catalog handles updates
    /// anyway (stale partitions are dropped wholesale).
    pub fn remove(&mut self, key: &K, row: u32) -> bool {
        let (mut leaf, _) = self.seek(Some(key));
        loop {
            let Node::Leaf {
                mut keys,
                mut rows,
                next,
            } = self.load_owned(leaf)
            else {
                unreachable!("leaf chain points to internal node")
            };
            let start = keys.partition_point(|k| k < key);
            let mut i = start;
            while i < keys.len() && &keys[i] == key {
                if rows[i] == row {
                    keys.remove(i);
                    rows.remove(i);
                    self.len -= 1;
                    self.store_node(leaf, &Node::Leaf { keys, rows, next });
                    return true;
                }
                i += 1;
            }
            // A duplicates run may continue in the next leaf.
            match next.filter(|_| i == keys.len()) {
                Some(n) => leaf = n,
                None => return false,
            }
        }
    }

    /// Remove every entry for `key`; returns how many were removed.
    pub fn remove_all(&mut self, key: &K) -> usize {
        let rows: Vec<u32> = self.get(key).collect();
        for r in &rows {
            let removed = self.remove(key, *r);
            debug_assert!(removed, "row listed by get must be removable");
        }
        rows.len()
    }

    /// Row ids of all entries equal to `key`, in insertion-independent
    /// (key) order.
    pub fn get<'a>(&'a self, key: &K) -> impl Iterator<Item = u32> + 'a {
        self.range(key.clone(), key.clone()).map(|(_, r)| r)
    }

    /// First row id for `key`, if any.
    pub fn get_first(&self, key: &K) -> Option<u32> {
        self.get(key).next()
    }

    /// Ordered iterator over all `(key, row)` with `lo ≤ key ≤ hi`.
    ///
    /// Bounds are taken by value: callers probing with computed
    /// sentinel keys (e.g. [`crate::TupleKey`] prefix bounds) hand
    /// them to the iterator instead of keeping a borrow alive for its
    /// whole lifetime.
    pub fn range(&self, lo: K, hi: K) -> RangeIter<'_, K> {
        let (leaf, pos) = self.seek(Some(&lo));
        RangeIter {
            tree: self,
            leaf: Some(self.load_leaf(leaf)),
            pos,
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// Ordered iterator over every `(key, row)` entry.
    pub fn iter(&self) -> RangeIter<'_, K> {
        let (leaf, pos) = self.seek(None);
        RangeIter {
            tree: self,
            leaf: Some(self.load_leaf(leaf)),
            pos,
            lo: None,
            hi: None,
        }
    }

    /// Verify structural invariants (sortedness, key/child arity, leaf
    /// chain order). Used by tests and fuzzing; O(n).
    pub fn check_invariants(&self) -> Result<()> {
        // Every leaf's keys sorted; chained leaves globally sorted.
        let mut last: Option<K> = None;
        let mut counted = 0usize;
        for (k, _) in self.iter() {
            if let Some(prev) = &last {
                if prev > &k {
                    return Err(FlowtuneError::corrupt(format!(
                        "keys out of order: {prev:?} > {k:?}"
                    )));
                }
            }
            last = Some(k);
            counted += 1;
        }
        if counted != self.len {
            return Err(FlowtuneError::corrupt(format!(
                "len {} but iterated {counted}",
                self.len
            )));
        }
        self.check_node(self.root, None, None)
    }

    fn check_node(&self, node: PageId, lo: Option<&K>, hi: Option<&K>) -> Result<()> {
        match &*self.load(node) {
            Node::Leaf { keys, rows, .. } => {
                if keys.len() != rows.len() {
                    return Err(FlowtuneError::corrupt("leaf keys/rows length mismatch"));
                }
                for k in keys {
                    if lo.is_some_and(|lo| k < lo) || hi.is_some_and(|hi| k > hi) {
                        return Err(FlowtuneError::corrupt(format!(
                            "leaf key {k:?} outside separator bounds"
                        )));
                    }
                }
                Ok(())
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err(FlowtuneError::corrupt("internal arity mismatch"));
                }
                if keys.windows(2).any(|w| w[0] > w[1]) {
                    return Err(FlowtuneError::corrupt("internal keys unsorted"));
                }
                for (i, &child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    self.check_node(child, child_lo, child_hi)?;
                }
                Ok(())
            }
        }
    }

    /// Verify every page in the backing store against its checksum and
    /// this tree's epoch, bypassing cached frames — the scan recovery
    /// runs before a rebuilt or suspect tree is allowed to serve
    /// queries. Returns the first defect found.
    pub fn verify_pages(&self) -> Result<()> {
        let mut pool = self.pool.borrow_mut();
        let ids: Vec<PageId> = pool.store().ids().collect();
        for id in ids {
            let verdict = pool.check(id, self.epoch);
            if !verdict.is_clean() {
                return Err(FlowtuneError::corrupt(format!(
                    "page {id} failed verification: {verdict:?}"
                )));
            }
        }
        Ok(())
    }

    /// Fault-injection hook: corrupt the `nth` stored page (modulo the
    /// page count) in the *persistent* store and drop its cached
    /// frame, modeling a torn write that survives a crash while the
    /// builder's memory does not. Returns the damaged page id.
    pub fn tear_page(&mut self, nth: usize) -> Option<PageId> {
        let mut pool = self.pool.borrow_mut();
        let ids: Vec<PageId> = pool.store().ids().collect();
        if ids.is_empty() {
            return None;
        }
        let id = ids[nth % ids.len()];
        pool.store_mut()
            .corrupt(id, flowtune_storage::PAGE_SIZE / 2);
        pool.evict(id);
        self.memo.borrow_mut().remove(&id);
        Some(id)
    }
}

/// Ordered iterator over `(key, row)` pairs of a [`BPlusTree`]. Holds
/// a shared handle to the decoded current leaf so iteration loads each
/// leaf page once.
#[derive(Debug)]
pub struct RangeIter<'a, K: NodeKey> {
    tree: &'a BPlusTree<K>,
    /// Decoded current leaf (always a [`Node::Leaf`]).
    leaf: Option<Rc<Node<K>>>,
    pos: usize,
    lo: Option<K>,
    hi: Option<K>,
}

impl<K: NodeKey> Iterator for RangeIter<'_, K> {
    type Item = (K, u32);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let Node::Leaf { keys, rows, next } = &**self.leaf.as_ref()? else {
                unreachable!("leaf chain points to internal node")
            };
            if self.pos < keys.len() {
                let k = &keys[self.pos];
                // A duplicates run can span leaves: entries below
                // `lo` may still appear at the head of a chained
                // leaf. Skip them (keys are globally sorted, so
                // this terminates at the first in-range key).
                if self.lo.as_ref().is_some_and(|lo| k < lo) {
                    self.pos += 1;
                    continue;
                }
                if self.hi.as_ref().is_some_and(|hi| k > hi) {
                    self.leaf = None;
                    return None;
                }
                let item = (k.clone(), rows[self.pos]);
                self.pos += 1;
                return Some(item);
            }
            self.leaf = next.map(|id| self.tree.load_leaf(id));
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;

    #[test]
    fn empty_tree() {
        let t: BPlusTree<i64> = BPlusTree::new(4);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.get_first(&1), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = BPlusTree::new(4);
        for k in [5i64, 1, 9, 3, 7, 2, 8, 6, 4, 0] {
            t.insert(k, k as u32 * 10);
        }
        assert_eq!(t.len(), 10);
        for k in 0..10i64 {
            assert_eq!(t.get_first(&k), Some(k as u32 * 10), "key {k}");
        }
        assert_eq!(t.get_first(&42), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = BPlusTree::new(4);
        for i in 0..20u32 {
            t.insert(7i64, i);
        }
        t.insert(3, 100);
        let rows: Vec<u32> = t.get(&7).collect();
        assert_eq!(rows.len(), 20);
        assert_eq!(t.get(&3).count(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_scan_is_sorted_and_bounded() {
        let mut t = BPlusTree::new(5);
        for k in (0..200i64).rev() {
            t.insert(k, k as u32);
        }
        let got: Vec<i64> = t.range(50, 59).map(|(k, _)| k).collect();
        assert_eq!(got, (50..=59).collect::<Vec<_>>());
        // Empty range.
        assert_eq!(t.range(300, 400).count(), 0);
        // Range covering everything.
        assert_eq!(t.range(-10, 10_000).count(), 200);
    }

    #[test]
    fn bulk_build_equals_incremental() {
        let pairs: Vec<(i64, u32)> = (0..500).map(|i| (i / 3, i as u32)).collect();
        let bulk = BPlusTree::bulk_build(8, &pairs);
        let mut inc = BPlusTree::new(8);
        for (k, r) in &pairs {
            inc.insert(*k, *r);
        }
        bulk.check_invariants().unwrap();
        inc.check_invariants().unwrap();
        let a: Vec<(i64, u32)> = bulk.iter().collect();
        let b: Vec<(i64, u32)> = inc.iter().collect();
        // Same multiset per key (row order within equal keys may differ).
        assert_eq!(a.len(), b.len());
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        a2.sort_unstable();
        b2.sort_unstable();
        assert_eq!(a2, b2);
        assert_eq!(bulk.len(), 500);
    }

    #[test]
    fn bulk_build_empty_and_single() {
        let t: BPlusTree<i64> = BPlusTree::bulk_build(4, &[]);
        assert!(t.is_empty());
        let t = BPlusTree::bulk_build(4, &[(9i64, 1)]);
        assert_eq!(t.get_first(&9), Some(1));
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn height_grows_logarithmically() {
        let pairs: Vec<(i64, u32)> = (0..10_000).map(|i| (i, i as u32)).collect();
        let t = BPlusTree::bulk_build(64, &pairs);
        // 10k entries at order 64: leaves ~157, one or two internal levels.
        assert!(t.height() <= 3, "height {}", t.height());
        t.check_invariants().unwrap();
    }

    #[test]
    fn string_keys_work() {
        let mut t = BPlusTree::new(4);
        for (i, w) in ["pear", "apple", "fig", "date", "cherry"]
            .iter()
            .enumerate()
        {
            t.insert((*w).to_owned(), i as u32);
        }
        let inorder: Vec<String> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(inorder, ["apple", "cherry", "date", "fig", "pear"]);
        t.check_invariants().unwrap();
        t.verify_pages().unwrap();
    }

    #[test]
    fn remove_deletes_specific_entries() {
        let mut t = BPlusTree::new(4);
        for i in 0..50u32 {
            t.insert((i / 5) as i64, i);
        }
        assert!(t.remove(&3, 17));
        assert!(!t.remove(&3, 17), "double delete must fail");
        assert!(!t.remove(&99, 0), "missing key");
        assert_eq!(t.len(), 49);
        assert!(!t.get(&3).any(|r| r == 17));
        assert_eq!(t.get(&3).count(), 4);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_all_clears_duplicates_across_leaves() {
        let mut t = BPlusTree::new(3);
        for i in 0..30u32 {
            t.insert(7i64, i);
        }
        t.insert(1, 100);
        t.insert(9, 101);
        assert_eq!(t.remove_all(&7), 30);
        assert_eq!(t.get(&7).count(), 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get_first(&1), Some(100));
        assert_eq!(t.get_first(&9), Some(101));
        t.check_invariants().unwrap();
    }

    #[test]
    fn interleaved_insert_remove_stays_consistent() {
        let mut t = BPlusTree::new(4);
        for round in 0..5 {
            for i in 0..40u32 {
                t.insert((i % 10) as i64, round * 100 + i);
            }
            for k in 0..5i64 {
                t.remove_all(&k);
            }
            t.check_invariants().unwrap();
        }
        for k in 0..5i64 {
            assert_eq!(t.get(&k).count(), 0);
        }
        for k in 5..10i64 {
            assert_eq!(t.get(&k).count(), 20, "key {k}");
        }
    }

    #[test]
    fn remove_matches_multiset_reference() {
        let mut rng = SimRng::seed_from_u64(0xB71);
        for _ in 0..60 {
            let n_ops = rng.uniform_u64(0, 300) as usize;
            let mut t = BPlusTree::new(4);
            let mut reference: Vec<(i64, u32)> = Vec::new();
            for _ in 0..n_ops {
                let k = rng.uniform_i64(0, 20);
                let r = rng.uniform_u64(0, 8) as u32;
                if rng.chance(0.5) {
                    t.insert(k, r);
                    reference.push((k, r));
                } else {
                    let expect = reference.iter().position(|&e| e == (k, r));
                    let got = t.remove(&k, r);
                    assert_eq!(got, expect.is_some());
                    if let Some(pos) = expect {
                        reference.swap_remove(pos);
                    }
                }
            }
            assert_eq!(t.len(), reference.len());
            let mut got: Vec<(i64, u32)> = t.iter().collect();
            got.sort_unstable();
            reference.sort_unstable();
            assert_eq!(got, reference);
            t.check_invariants().unwrap();
            t.verify_pages().unwrap();
        }
    }

    #[test]
    fn matches_sorted_reference() {
        let mut rng = SimRng::seed_from_u64(0xB72);
        for _ in 0..60 {
            let n = rng.uniform_u64(0, 400) as usize;
            let mut keys: Vec<i64> = (0..n).map(|_| rng.uniform_i64(-1000, 1000)).collect();
            let order = rng.uniform_u64(3, 16) as usize;
            let mut t = BPlusTree::new(order);
            for (i, k) in keys.iter().enumerate() {
                t.insert(*k, i as u32);
            }
            t.check_invariants().unwrap();
            let got: Vec<i64> = t.iter().map(|(k, _)| k).collect();
            keys.sort_unstable();
            assert_eq!(got, keys);
        }
    }

    #[test]
    fn range_equals_filter() {
        let mut rng = SimRng::seed_from_u64(0xB73);
        for _ in 0..100 {
            let n = rng.uniform_u64(1, 300) as usize;
            let keys: Vec<i64> = (0..n).map(|_| rng.uniform_i64(0, 200)).collect();
            let lo = rng.uniform_i64(0, 200);
            let hi = lo + rng.uniform_i64(0, 100);
            let mut t = BPlusTree::new(6);
            for (i, k) in keys.iter().enumerate() {
                t.insert(*k, i as u32);
            }
            let got = t.range(lo, hi).count();
            let expect = keys.iter().filter(|k| (lo..=hi).contains(*k)).count();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn range_bounds_need_no_outliving_borrow() {
        // Bounds computed in an inner scope hand ownership to the
        // iterator — the regression the by-value API exists for.
        let pairs: Vec<(i64, u32)> = (0..100).map(|i| (i, i as u32)).collect();
        let t = BPlusTree::bulk_build(8, &pairs);
        let iter = {
            let lo = 10i64 + 5;
            let hi = lo + 20;
            t.range(lo, hi)
        };
        assert_eq!(iter.count(), 21);
    }

    #[test]
    fn iter_count_matches_len_after_churn() {
        // `iter` and `range` share one `seek` descent; this pins the
        // full-traversal entry point against the tree's own length
        // accounting after random insert/remove churn.
        let mut rng = SimRng::seed_from_u64(0xB74);
        let mut t = BPlusTree::new(4);
        let mut live: Vec<(i64, u32)> = Vec::new();
        for step in 0..2000u32 {
            if live.is_empty() || rng.chance(0.6) {
                let k = rng.uniform_i64(0, 50);
                t.insert(k, step);
                live.push((k, step));
            } else {
                let victim = rng.uniform_u64(0, live.len() as u64) as usize;
                let (k, r) = live.swap_remove(victim);
                assert!(t.remove(&k, r));
            }
            if step % 250 == 0 {
                assert_eq!(t.iter().count(), t.len());
            }
        }
        assert_eq!(t.iter().count(), t.len());
        assert_eq!(t.len(), live.len());
        t.check_invariants().unwrap();
    }

    #[test]
    fn nodes_live_in_checksummed_pages() {
        let pairs: Vec<(i64, u32)> = (0..1000).map(|i| (i, i as u32)).collect();
        let t = BPlusTree::bulk_build(8, &pairs);
        // One page per node, all verifiable.
        assert!(t.node_count() > 100);
        t.verify_pages().unwrap();
        let stats = t.pool_stats();
        assert_eq!(stats.page_writes as usize, t.node_count());
    }

    #[test]
    fn torn_page_is_detected_and_never_served() {
        let pairs: Vec<(i64, u32)> = (0..5000).map(|i| (i, i as u32)).collect();
        let mut t = BPlusTree::bulk_build(16, &pairs);
        t.verify_pages().unwrap();
        let torn = t.tear_page(7).unwrap();
        let err = t.verify_pages().unwrap_err();
        assert!(
            matches!(err, FlowtuneError::Corrupt(_)),
            "torn page {torn} must surface as Corrupt, got {err:?}"
        );
    }

    #[test]
    fn probes_hit_the_buffer_pool() {
        let pairs: Vec<(i64, u32)> = (0..10_000).map(|i| (i, i as u32)).collect();
        let t = BPlusTree::bulk_build(64, &pairs);
        let before = t.pool_stats();
        for k in (0..10_000i64).step_by(97) {
            assert!(t.get_first(&k).is_some());
        }
        let after = t.pool_stats();
        // The tree fits the pool, so probes after a bulk build are all
        // cache hits — zero store reads.
        assert!(after.hits > before.hits);
        assert_eq!(after.page_reads, before.page_reads);
    }

    #[test]
    fn check_invariants_returns_typed_errors() {
        let t: BPlusTree<i64> = BPlusTree::new(4);
        // A healthy tree verifies; the error type is FlowtuneError so
        // corruption composes with the workspace Result plumbing.
        let ok: Result<()> = t.check_invariants();
        ok.unwrap();
    }

    #[test]
    #[should_panic(expected = "order too large")]
    fn oversized_node_is_a_construction_error() {
        // 300 string keys of 64 bytes cannot fit one 4 KiB page.
        let big = "x".repeat(64);
        let pairs: Vec<(String, u32)> = (0..300).map(|i| (big.clone(), i)).collect();
        let _ = BPlusTree::bulk_build(300, &pairs);
    }
}
