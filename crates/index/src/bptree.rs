//! A from-scratch B+Tree.
//!
//! Maps orderable keys to `u32` row ids, allows duplicate keys, supports
//! point lookup, ordered range scans and full in-order traversal — the
//! access paths behind the paper's five operator categories (lookup,
//! range select, sorting, grouping, join). Nodes live in an arena
//! (`Vec<Node>`), leaves are chained for range scans.

use std::fmt::Debug;

/// Maximum keys per node if not overridden.
pub const DEFAULT_ORDER: usize = 64;

#[derive(Debug, Clone)]
enum Node<K> {
    Internal {
        /// `keys[i]` is the smallest key reachable under `children[i+1]`.
        keys: Vec<K>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<K>,
        rows: Vec<u32>,
        next: Option<u32>,
    },
}

/// B+Tree from keys to row ids; duplicates allowed.
#[derive(Debug, Clone)]
pub struct BPlusTree<K> {
    nodes: Vec<Node<K>>,
    root: u32,
    order: usize,
    len: usize,
}

impl<K: Ord + Clone + Debug> Default for BPlusTree<K> {
    fn default() -> Self {
        Self::new(DEFAULT_ORDER)
    }
}

impl<K: Ord + Clone + Debug> BPlusTree<K> {
    /// Create an empty tree with the given order (max keys per node,
    /// must be ≥ 3).
    pub fn new(order: usize) -> Self {
        assert!(order >= 3, "B+Tree order must be at least 3");
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                rows: Vec::new(),
                next: None,
            }],
            root: 0,
            order,
            len: 0,
        }
    }

    /// Bulk-build from `(key, row)` pairs sorted by key. Leaves are packed
    /// to `order` entries, then internal levels are stacked — O(n).
    ///
    /// Panics if the input is not sorted by key.
    pub fn bulk_build(order: usize, pairs: &[(K, u32)]) -> Self {
        assert!(order >= 3, "B+Tree order must be at least 3");
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_build input must be sorted by key"
        );
        if pairs.is_empty() {
            return Self::new(order);
        }
        let mut nodes: Vec<Node<K>> = Vec::new();
        // Build the leaf level.
        let mut level: Vec<(K, u32)> = Vec::new(); // (min key, node id)
        for chunk in pairs.chunks(order) {
            let id = nodes.len() as u32;
            if let Some(Node::Leaf { next, .. }) = nodes.last_mut() {
                *next = Some(id);
            }
            nodes.push(Node::Leaf {
                keys: chunk.iter().map(|(k, _)| k.clone()).collect(),
                rows: chunk.iter().map(|(_, r)| *r).collect(),
                next: None,
            });
            level.push((chunk[0].0.clone(), id));
        }
        // Stack internal levels until a single root remains.
        while level.len() > 1 {
            let mut upper: Vec<(K, u32)> = Vec::new();
            for chunk in level.chunks(order + 1) {
                let id = nodes.len() as u32;
                nodes.push(Node::Internal {
                    keys: chunk[1..].iter().map(|(k, _)| k.clone()).collect(),
                    children: chunk.iter().map(|(_, c)| *c).collect(),
                });
                upper.push((chunk[0].0.clone(), id));
            }
            level = upper;
        }
        let root = level[0].1;
        BPlusTree {
            nodes,
            root,
            order,
            len: pairs.len(),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a lone leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Number of nodes in the arena (live nodes; splits never free).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Insert a `(key, row)` pair; duplicates are kept.
    pub fn insert(&mut self, key: K, row: u32) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, row) {
            // Root split: create a new root.
            let old_root = self.root;
            let id = self.nodes.len() as u32;
            self.nodes.push(Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            });
            self.root = id;
        }
        self.len += 1;
    }

    /// Recursive insert; returns `Some((separator, new_right_node))` when
    /// the child split.
    fn insert_rec(&mut self, node: u32, key: K, row: u32) -> Option<(K, u32)> {
        match &mut self.nodes[node as usize] {
            Node::Leaf { keys, rows, .. } => {
                let pos = keys.partition_point(|k| *k <= key);
                keys.insert(pos, key);
                rows.insert(pos, row);
                if keys.len() > self.order {
                    Some(self.split_leaf(node))
                } else {
                    None
                }
            }
            Node::Internal { keys, children } => {
                // Route with strict `<` so a key equal to a separator goes
                // left; the leaf chain makes duplicates that historically
                // stayed right of the separator still reachable.
                let child_idx = keys.partition_point(|k| *k < key);
                let child = children[child_idx];
                let (sep, right) = self.insert_rec(child, key, row)?;
                if let Node::Internal { keys, children } = &mut self.nodes[node as usize] {
                    // The new right node goes immediately after the child
                    // that split; with duplicate separators a key search
                    // could misplace it.
                    keys.insert(child_idx, sep);
                    children.insert(child_idx + 1, right);
                    if keys.len() > self.order {
                        return Some(self.split_internal(node));
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, node: u32) -> (K, u32) {
        let new_id = self.nodes.len() as u32;
        let (sep, new_node) = match &mut self.nodes[node as usize] {
            Node::Leaf { keys, rows, next } => {
                let mid = keys.len() / 2;
                let right_keys: Vec<K> = keys.split_off(mid);
                let right_rows: Vec<u32> = rows.split_off(mid);
                let sep = right_keys[0].clone();
                let right = Node::Leaf {
                    keys: right_keys,
                    rows: right_rows,
                    next: next.take(),
                };
                *next = Some(new_id);
                (sep, right)
            }
            Node::Internal { .. } => unreachable!("split_leaf on internal node"),
        };
        self.nodes.push(new_node);
        (sep, new_id)
    }

    fn split_internal(&mut self, node: u32) -> (K, u32) {
        let new_id = self.nodes.len() as u32;
        let (sep, new_node) = match &mut self.nodes[node as usize] {
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let right_keys: Vec<K> = keys.split_off(mid + 1);
                #[allow(clippy::expect_used)]
                // flowtune-allow(panic-hygiene): split is only called on overfull nodes, so mid >= 1 keys remain
                let sep = keys.pop().expect("internal node must have a middle key");
                let right_children: Vec<u32> = children.split_off(mid + 1);
                (
                    sep,
                    Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                )
            }
            Node::Leaf { .. } => unreachable!("split_internal on leaf node"),
        };
        self.nodes.push(new_node);
        (sep, new_id)
    }

    /// Locate the leaf that may contain `key` (or the first key ≥ it) and
    /// the position within it.
    fn seek(&self, key: &K) -> (u32, usize) {
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Internal { keys, children } => {
                    node = children[keys.partition_point(|k| k < key)];
                }
                Node::Leaf { keys, .. } => {
                    return (node, keys.partition_point(|k| k < key));
                }
            }
        }
    }

    /// Remove one `(key, row)` entry; returns true if it existed.
    ///
    /// Deletion is *lazy*: the entry is removed from its leaf but nodes
    /// are never merged or rebalanced. Search correctness is unaffected
    /// (separators stay valid bounds); space is reclaimed when the index
    /// partition is rebuilt, which is how the catalog handles updates
    /// anyway (stale partitions are dropped wholesale).
    pub fn remove(&mut self, key: &K, row: u32) -> bool {
        let (mut leaf, _) = self.seek(key);
        loop {
            let next_leaf = match &mut self.nodes[leaf as usize] {
                Node::Leaf { keys, rows, next } => {
                    let start = keys.partition_point(|k| k < key);
                    let mut i = start;
                    while i < keys.len() && &keys[i] == key {
                        if rows[i] == row {
                            keys.remove(i);
                            rows.remove(i);
                            self.len -= 1;
                            return true;
                        }
                        i += 1;
                    }
                    // A duplicates run may continue in the next leaf.
                    if i == keys.len() {
                        *next
                    } else {
                        None
                    }
                }
                Node::Internal { .. } => unreachable!("seek returns a leaf"),
            };
            match next_leaf {
                Some(n) => leaf = n,
                None => return false,
            }
        }
    }

    /// Remove every entry for `key`; returns how many were removed.
    pub fn remove_all(&mut self, key: &K) -> usize {
        let rows: Vec<u32> = self.get(key).collect();
        for r in &rows {
            let removed = self.remove(key, *r);
            debug_assert!(removed, "row listed by get must be removable");
        }
        rows.len()
    }

    /// Row ids of all entries equal to `key`, in insertion-independent
    /// (key) order.
    pub fn get<'a>(&'a self, key: &'a K) -> impl Iterator<Item = u32> + 'a {
        self.range(key, key).map(|(_, r)| r)
    }

    /// First row id for `key`, if any.
    pub fn get_first(&self, key: &K) -> Option<u32> {
        self.get(key).next()
    }

    /// Ordered iterator over all `(key, row)` with `lo ≤ key ≤ hi`.
    pub fn range<'a>(&'a self, lo: &'a K, hi: &'a K) -> RangeIter<'a, K> {
        let (leaf, pos) = self.seek(lo);
        RangeIter {
            tree: self,
            leaf: Some(leaf),
            pos,
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// Ordered iterator over every `(key, row)` entry.
    pub fn iter(&self) -> RangeIter<'_, K> {
        // Walk to the leftmost leaf.
        let mut node = self.root;
        while let Node::Internal { children, .. } = &self.nodes[node as usize] {
            node = children[0];
        }
        RangeIter {
            tree: self,
            leaf: Some(node),
            pos: 0,
            lo: None,
            hi: None,
        }
    }

    /// Verify structural invariants (sortedness, key/child arity, leaf
    /// chain order). Used by tests and fuzzing; O(n).
    pub fn check_invariants(&self) -> Result<(), String> {
        // Every leaf's keys sorted; chained leaves globally sorted.
        let mut last: Option<K> = None;
        let mut counted = 0usize;
        for (k, _) in self.iter() {
            if let Some(prev) = &last {
                if prev > k {
                    return Err(format!("keys out of order: {prev:?} > {k:?}"));
                }
            }
            last = Some(k.clone());
            counted += 1;
        }
        if counted != self.len {
            return Err(format!("len {} but iterated {counted}", self.len));
        }
        self.check_node(self.root, None, None)
    }

    fn check_node(&self, node: u32, lo: Option<&K>, hi: Option<&K>) -> Result<(), String> {
        match &self.nodes[node as usize] {
            Node::Leaf { keys, rows, .. } => {
                if keys.len() != rows.len() {
                    return Err("leaf keys/rows length mismatch".into());
                }
                for k in keys {
                    if lo.is_some_and(|lo| k < lo) || hi.is_some_and(|hi| k > hi) {
                        return Err(format!("leaf key {k:?} outside separator bounds"));
                    }
                }
                Ok(())
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err("internal arity mismatch".into());
                }
                if keys.windows(2).any(|w| w[0] > w[1]) {
                    return Err("internal keys unsorted".into());
                }
                for (i, &child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    self.check_node(child, child_lo, child_hi)?;
                }
                Ok(())
            }
        }
    }
}

/// Ordered iterator over `(key, row)` pairs of a [`BPlusTree`].
#[derive(Debug)]
pub struct RangeIter<'a, K> {
    tree: &'a BPlusTree<K>,
    leaf: Option<u32>,
    pos: usize,
    lo: Option<&'a K>,
    hi: Option<&'a K>,
}

impl<'a, K: Ord + Clone + Debug> Iterator for RangeIter<'a, K> {
    type Item = (&'a K, u32);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            match &self.tree.nodes[leaf as usize] {
                Node::Leaf { keys, rows, next } => {
                    if self.pos < keys.len() {
                        let k = &keys[self.pos];
                        // A duplicates run can span leaves: entries below
                        // `lo` may still appear at the head of a chained
                        // leaf. Skip them (keys are globally sorted, so
                        // this terminates at the first in-range key).
                        if self.lo.is_some_and(|lo| k < lo) {
                            self.pos += 1;
                            continue;
                        }
                        if self.hi.is_some_and(|hi| k > hi) {
                            self.leaf = None;
                            return None;
                        }
                        let r = rows[self.pos];
                        self.pos += 1;
                        return Some((k, r));
                    }
                    self.leaf = *next;
                    self.pos = 0;
                }
                Node::Internal { .. } => unreachable!("leaf chain points to internal node"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;

    #[test]
    fn empty_tree() {
        let t: BPlusTree<i64> = BPlusTree::new(4);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.get_first(&1), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = BPlusTree::new(4);
        for k in [5i64, 1, 9, 3, 7, 2, 8, 6, 4, 0] {
            t.insert(k, k as u32 * 10);
        }
        assert_eq!(t.len(), 10);
        for k in 0..10i64 {
            assert_eq!(t.get_first(&k), Some(k as u32 * 10), "key {k}");
        }
        assert_eq!(t.get_first(&42), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = BPlusTree::new(4);
        for i in 0..20u32 {
            t.insert(7i64, i);
        }
        t.insert(3, 100);
        let rows: Vec<u32> = t.get(&7).collect();
        assert_eq!(rows.len(), 20);
        assert_eq!(t.get(&3).count(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_scan_is_sorted_and_bounded() {
        let mut t = BPlusTree::new(5);
        for k in (0..200i64).rev() {
            t.insert(k, k as u32);
        }
        let got: Vec<i64> = t.range(&50, &59).map(|(k, _)| *k).collect();
        assert_eq!(got, (50..=59).collect::<Vec<_>>());
        // Empty range.
        assert_eq!(t.range(&300, &400).count(), 0);
        // Range covering everything.
        assert_eq!(t.range(&-10, &10_000).count(), 200);
    }

    #[test]
    fn bulk_build_equals_incremental() {
        let pairs: Vec<(i64, u32)> = (0..500).map(|i| (i / 3, i as u32)).collect();
        let bulk = BPlusTree::bulk_build(8, &pairs);
        let mut inc = BPlusTree::new(8);
        for (k, r) in &pairs {
            inc.insert(*k, *r);
        }
        bulk.check_invariants().unwrap();
        inc.check_invariants().unwrap();
        let a: Vec<(i64, u32)> = bulk.iter().map(|(k, r)| (*k, r)).collect();
        let b: Vec<(i64, u32)> = inc.iter().map(|(k, r)| (*k, r)).collect();
        // Same multiset per key (row order within equal keys may differ).
        assert_eq!(a.len(), b.len());
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        a2.sort_unstable();
        b2.sort_unstable();
        assert_eq!(a2, b2);
        assert_eq!(bulk.len(), 500);
    }

    #[test]
    fn bulk_build_empty_and_single() {
        let t: BPlusTree<i64> = BPlusTree::bulk_build(4, &[]);
        assert!(t.is_empty());
        let t = BPlusTree::bulk_build(4, &[(9i64, 1)]);
        assert_eq!(t.get_first(&9), Some(1));
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn height_grows_logarithmically() {
        let pairs: Vec<(i64, u32)> = (0..10_000).map(|i| (i, i as u32)).collect();
        let t = BPlusTree::bulk_build(64, &pairs);
        // 10k entries at order 64: leaves ~157, one or two internal levels.
        assert!(t.height() <= 3, "height {}", t.height());
        t.check_invariants().unwrap();
    }

    #[test]
    fn string_keys_work() {
        let mut t = BPlusTree::new(4);
        for (i, w) in ["pear", "apple", "fig", "date", "cherry"]
            .iter()
            .enumerate()
        {
            t.insert((*w).to_owned(), i as u32);
        }
        let inorder: Vec<String> = t.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(inorder, ["apple", "cherry", "date", "fig", "pear"]);
    }

    #[test]
    fn remove_deletes_specific_entries() {
        let mut t = BPlusTree::new(4);
        for i in 0..50u32 {
            t.insert((i / 5) as i64, i);
        }
        assert!(t.remove(&3, 17));
        assert!(!t.remove(&3, 17), "double delete must fail");
        assert!(!t.remove(&99, 0), "missing key");
        assert_eq!(t.len(), 49);
        assert!(!t.get(&3).any(|r| r == 17));
        assert_eq!(t.get(&3).count(), 4);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_all_clears_duplicates_across_leaves() {
        let mut t = BPlusTree::new(3);
        for i in 0..30u32 {
            t.insert(7i64, i);
        }
        t.insert(1, 100);
        t.insert(9, 101);
        assert_eq!(t.remove_all(&7), 30);
        assert_eq!(t.get(&7).count(), 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get_first(&1), Some(100));
        assert_eq!(t.get_first(&9), Some(101));
        t.check_invariants().unwrap();
    }

    #[test]
    fn interleaved_insert_remove_stays_consistent() {
        let mut t = BPlusTree::new(4);
        for round in 0..5 {
            for i in 0..40u32 {
                t.insert((i % 10) as i64, round * 100 + i);
            }
            for k in 0..5i64 {
                t.remove_all(&k);
            }
            t.check_invariants().unwrap();
        }
        for k in 0..5i64 {
            assert_eq!(t.get(&k).count(), 0);
        }
        for k in 5..10i64 {
            assert_eq!(t.get(&k).count(), 20, "key {k}");
        }
    }

    #[test]
    fn remove_matches_multiset_reference() {
        let mut rng = SimRng::seed_from_u64(0xB71);
        for _ in 0..60 {
            let n_ops = rng.uniform_u64(0, 300) as usize;
            let mut t = BPlusTree::new(4);
            let mut reference: Vec<(i64, u32)> = Vec::new();
            for _ in 0..n_ops {
                let k = rng.uniform_i64(0, 20);
                let r = rng.uniform_u64(0, 8) as u32;
                if rng.chance(0.5) {
                    t.insert(k, r);
                    reference.push((k, r));
                } else {
                    let expect = reference.iter().position(|&e| e == (k, r));
                    let got = t.remove(&k, r);
                    assert_eq!(got, expect.is_some());
                    if let Some(pos) = expect {
                        reference.swap_remove(pos);
                    }
                }
            }
            assert_eq!(t.len(), reference.len());
            let mut got: Vec<(i64, u32)> = t.iter().map(|(k, r)| (*k, r)).collect();
            got.sort_unstable();
            reference.sort_unstable();
            assert_eq!(got, reference);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn matches_sorted_reference() {
        let mut rng = SimRng::seed_from_u64(0xB72);
        for _ in 0..60 {
            let n = rng.uniform_u64(0, 400) as usize;
            let mut keys: Vec<i64> = (0..n).map(|_| rng.uniform_i64(-1000, 1000)).collect();
            let order = rng.uniform_u64(3, 16) as usize;
            let mut t = BPlusTree::new(order);
            for (i, k) in keys.iter().enumerate() {
                t.insert(*k, i as u32);
            }
            t.check_invariants().unwrap();
            let got: Vec<i64> = t.iter().map(|(k, _)| *k).collect();
            keys.sort_unstable();
            assert_eq!(got, keys);
        }
    }

    #[test]
    fn range_equals_filter() {
        let mut rng = SimRng::seed_from_u64(0xB73);
        for _ in 0..100 {
            let n = rng.uniform_u64(1, 300) as usize;
            let keys: Vec<i64> = (0..n).map(|_| rng.uniform_i64(0, 200)).collect();
            let lo = rng.uniform_i64(0, 200);
            let hi = lo + rng.uniform_i64(0, 100);
            let mut t = BPlusTree::new(6);
            for (i, k) in keys.iter().enumerate() {
                t.insert(*k, i as u32);
            }
            let got = t.range(&lo, &hi).count();
            let expect = keys.iter().filter(|k| (lo..=hi).contains(*k)).count();
            assert_eq!(got, expect);
        }
    }
}
