//! Tables, partitions and partition data.
//!
//! A table `t(schema, P, S)` is its schema, an ordered set of partitions
//! and its statistics (§3, "Data Model"). Partitions carry a version
//! number: batch updates create a new version of the partitions they
//! touch, which invalidates indexes built on the old version.

use crate::column::ColumnData;
use crate::schema::Schema;
use flowtune_common::{FileId, PartitionId, TableId};

/// Metadata of one table partition `p(id, n, path)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMeta {
    /// Partition identity (file + ordinal).
    pub id: PartitionId,
    /// Number of records `n`.
    pub rows: u64,
    /// Size in bytes (rows × average row size, or exact when data exists).
    pub bytes: u64,
    /// Path of the partition object in the storage service.
    pub path: String,
    /// Version, bumped by each batch update that touches this partition.
    pub version: u32,
}

/// Metadata of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Table identity.
    pub id: TableId,
    /// Human-readable name.
    pub name: String,
    /// Column schema (carries per-column average-size statistics).
    pub schema: Schema,
    /// Ordered partitions.
    pub partitions: Vec<PartitionMeta>,
}

impl TableMeta {
    /// Build a table, splitting `rows` records into partitions of at most
    /// `max_partition_bytes` bytes using the schema's average row size.
    ///
    /// This mirrors the paper's setup where files are split into at most
    /// 128 MB partitions.
    pub fn with_partitions(
        id: TableId,
        name: impl Into<String>,
        schema: Schema,
        rows: u64,
        max_partition_bytes: u64,
    ) -> Self {
        let name = name.into();
        let row_bytes = schema.avg_row_bytes();
        assert!(row_bytes > 0.0, "schema must have a positive row size");
        assert!(max_partition_bytes > 0, "partition size must be positive");
        let rows_per_part = ((max_partition_bytes as f64 / row_bytes).floor() as u64).max(1);
        let mut partitions = Vec::new();
        let mut remaining = rows;
        let mut ordinal = 0u32;
        while remaining > 0 {
            let n = remaining.min(rows_per_part);
            partitions.push(PartitionMeta {
                id: PartitionId::new(FileId(id.0), ordinal),
                rows: n,
                bytes: (n as f64 * row_bytes).round() as u64,
                path: format!("{name}/part-{ordinal:05}"),
                version: 0,
            });
            remaining -= n;
            ordinal += 1;
        }
        TableMeta {
            id,
            name,
            schema,
            partitions,
        }
    }

    /// Total rows across all partitions.
    pub fn rows(&self) -> u64 {
        self.partitions.iter().map(|p| p.rows).sum()
    }

    /// Total bytes across all partitions.
    pub fn bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.bytes).sum()
    }

    /// Apply a batch update to partition `ordinal`: bump its version (old
    /// indexes on it are now stale).
    pub fn update_partition(&mut self, ordinal: usize) {
        self.partitions[ordinal].version += 1;
    }
}

/// Actual column values of one partition (schema-aligned).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionData {
    columns: Vec<ColumnData>,
    rows: usize,
}

impl PartitionData {
    /// Build from columns; all columns must have equal length.
    pub fn new(columns: Vec<ColumnData>) -> Self {
        let rows = columns.first().map_or(0, ColumnData::len);
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), rows, "column {i} length mismatch");
        }
        PartitionData { columns, rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Exact encoded byte size of the partition.
    pub fn encoded_bytes(&self) -> u64 {
        self.columns.iter().map(ColumnData::encoded_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("k", ColumnType::Int64),
            Column::new("txt", ColumnType::Text { avg: 24.0 }),
        ])
    }

    #[test]
    fn partitioning_respects_max_bytes() {
        // 32 bytes/row, 1000 rows, 3200-byte partitions -> 100 rows each.
        let t = TableMeta::with_partitions(TableId(0), "t", schema(), 1000, 3200);
        assert_eq!(t.partitions.len(), 10);
        assert!(t.partitions.iter().all(|p| p.rows == 100));
        assert_eq!(t.rows(), 1000);
        assert_eq!(t.bytes(), 32_000);
        assert_eq!(t.partitions[3].id, PartitionId::new(FileId(0), 3));
    }

    #[test]
    fn last_partition_takes_remainder() {
        let t = TableMeta::with_partitions(TableId(1), "t", schema(), 250, 3200);
        assert_eq!(t.partitions.len(), 3);
        assert_eq!(t.partitions[2].rows, 50);
    }

    #[test]
    fn tiny_partition_size_still_progresses() {
        // max bytes below one row size -> one row per partition.
        let t = TableMeta::with_partitions(TableId(2), "t", schema(), 3, 8);
        assert_eq!(t.partitions.len(), 3);
        assert!(t.partitions.iter().all(|p| p.rows == 1));
    }

    #[test]
    fn updates_bump_versions() {
        let mut t = TableMeta::with_partitions(TableId(0), "t", schema(), 10, 3200);
        assert_eq!(t.partitions[0].version, 0);
        t.update_partition(0);
        assert_eq!(t.partitions[0].version, 1);
    }

    #[test]
    fn partition_data_checks_alignment() {
        let d = PartitionData::new(vec![
            ColumnData::I64(vec![1, 2]),
            ColumnData::Str(vec!["a".into(), "b".into()]),
        ]);
        assert_eq!(d.rows(), 2);
        assert_eq!(d.encoded_bytes(), 16 + 2);
        assert_eq!(d.columns().len(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn misaligned_columns_rejected() {
        let _ = PartitionData::new(vec![
            ColumnData::I64(vec![1, 2]),
            ColumnData::Str(vec!["a".into()]),
        ]);
    }
}
