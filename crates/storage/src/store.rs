//! The cloud storage service.
//!
//! Holds persistent objects (table/file partitions and index partitions)
//! and meters the two quantities the provider charges for: **occupancy**
//! (byte·quanta, priced per MB per quantum) and **transfer volume**. The
//! paper computes the storage bill "by counting the number of bytes
//! transferred and charging appropriately over time".

use std::collections::HashMap;

use flowtune_common::{pricing, IndexId, Money, PartitionId, SimDuration, SimTime};

/// Key of an object in the storage service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectKey {
    /// A table/file partition.
    Partition(PartitionId),
    /// One partition of an index (`index`, table-partition ordinal).
    IndexPart(IndexId, u32),
}

#[derive(Debug, Clone)]
struct StoredObject {
    bytes: u64,
    created: SimTime,
}

/// The storage service: object registry plus cost meter.
#[derive(Debug)]
pub struct StorageService {
    objects: HashMap<ObjectKey, StoredObject>,
    price_per_mb_quantum: Money,
    quantum: SimDuration,
    /// Cost accrued by `settle` so far.
    accrued: Money,
    /// Time up to which occupancy has been billed.
    settled_to: SimTime,
    bytes_uploaded: u64,
    bytes_downloaded: u64,
}

impl StorageService {
    /// Create an empty storage service with the given pricing.
    pub fn new(price_per_mb_quantum: Money, quantum: SimDuration) -> Self {
        StorageService {
            objects: HashMap::new(),
            price_per_mb_quantum,
            quantum,
            accrued: Money::ZERO,
            settled_to: SimTime::ZERO,
            bytes_uploaded: 0,
            bytes_downloaded: 0,
        }
    }

    /// Bill occupancy from the last settlement point up to `now`. Must be
    /// called (directly or via put/delete) with non-decreasing times.
    pub fn settle(&mut self, now: SimTime) {
        debug_assert!(now >= self.settled_to, "settle must move forward");
        if now <= self.settled_to {
            return;
        }
        let span_quanta = (now - self.settled_to).as_quanta(self.quantum);
        let bytes = self.stored_bytes();
        self.accrued += pricing::storage_cost(bytes, span_quanta, self.price_per_mb_quantum);
        self.settled_to = now;
    }

    /// Store (or replace) an object of `bytes` bytes at time `now`.
    pub fn put(&mut self, key: ObjectKey, bytes: u64, now: SimTime) {
        self.settle(now);
        self.bytes_uploaded += bytes;
        self.objects.insert(
            key,
            StoredObject {
                bytes,
                created: now,
            },
        );
    }

    /// Record a download of an object (for transfer accounting); returns
    /// its size, or `None` when the object does not exist.
    pub fn get(&mut self, key: &ObjectKey) -> Option<u64> {
        let bytes = self.objects.get(key)?.bytes;
        self.bytes_downloaded += bytes;
        Some(bytes)
    }

    /// Remove an object at time `now`; returns its size if it existed.
    pub fn delete(&mut self, key: &ObjectKey, now: SimTime) -> Option<u64> {
        self.settle(now);
        self.objects.remove(key).map(|o| o.bytes)
    }

    /// True when the object exists.
    pub fn contains(&self, key: &ObjectKey) -> bool {
        self.objects.contains_key(key)
    }

    /// Size of an object, if present.
    pub fn object_bytes(&self, key: &ObjectKey) -> Option<u64> {
        self.objects.get(key).map(|o| o.bytes)
    }

    /// Creation time of an object, if present.
    pub fn object_created(&self, key: &ObjectKey) -> Option<SimTime> {
        self.objects.get(key).map(|o| o.created)
    }

    /// Total bytes currently stored.
    pub fn stored_bytes(&self) -> u64 {
        self.objects.values().map(|o| o.bytes).sum()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Occupancy cost accrued up to the last settlement.
    pub fn accrued_cost(&self) -> Money {
        self.accrued
    }

    /// Total bytes uploaded since creation.
    pub fn bytes_uploaded(&self) -> u64 {
        self.bytes_uploaded
    }

    /// Total bytes downloaded since creation.
    pub fn bytes_downloaded(&self) -> u64 {
        self.bytes_downloaded
    }

    /// Iterate over stored objects as `(key, bytes)`.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectKey, u64)> {
        self.objects.iter().map(|(k, o)| (k, o.bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::FileId;

    const MB: u64 = 1024 * 1024;

    fn service() -> StorageService {
        StorageService::new(Money::from_dollars(1e-4), SimDuration::from_secs(60))
    }

    fn pkey(part: u32) -> ObjectKey {
        ObjectKey::Partition(PartitionId::new(FileId(0), part))
    }

    #[test]
    fn occupancy_is_billed_per_byte_quantum() {
        let mut s = service();
        s.put(pkey(0), 10 * MB, SimTime::ZERO);
        // 10 MB for 2 quanta at $1e-4/MB/quantum = $2e-3.
        s.settle(SimTime::from_secs(120));
        assert_eq!(s.accrued_cost(), Money::from_dollars(2e-3));
    }

    #[test]
    fn deletion_stops_billing() {
        let mut s = service();
        s.put(pkey(0), 10 * MB, SimTime::ZERO);
        assert_eq!(s.delete(&pkey(0), SimTime::from_secs(60)), Some(10 * MB));
        s.settle(SimTime::from_secs(600));
        // Only the first quantum was occupied.
        assert_eq!(s.accrued_cost(), Money::from_dollars(1e-3));
        assert!(!s.contains(&pkey(0)));
    }

    #[test]
    fn partial_quanta_are_prorated() {
        let mut s = service();
        s.put(pkey(0), MB, SimTime::ZERO);
        s.settle(SimTime::from_secs(30));
        assert_eq!(s.accrued_cost(), Money::from_dollars(0.5e-4));
    }

    #[test]
    fn transfer_accounting() {
        let mut s = service();
        s.put(pkey(0), 5 * MB, SimTime::ZERO);
        assert_eq!(s.get(&pkey(0)), Some(5 * MB));
        assert_eq!(s.get(&pkey(0)), Some(5 * MB));
        assert_eq!(s.get(&pkey(9)), None);
        assert_eq!(s.bytes_uploaded(), 5 * MB);
        assert_eq!(s.bytes_downloaded(), 10 * MB);
    }

    #[test]
    fn replace_updates_size() {
        let mut s = service();
        s.put(pkey(0), MB, SimTime::ZERO);
        s.put(pkey(0), 3 * MB, SimTime::ZERO);
        assert_eq!(s.stored_bytes(), 3 * MB);
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn index_and_partition_keys_are_distinct() {
        let mut s = service();
        s.put(pkey(0), MB, SimTime::ZERO);
        s.put(ObjectKey::IndexPart(IndexId(0), 0), 2 * MB, SimTime::ZERO);
        assert_eq!(s.object_count(), 2);
        assert_eq!(
            s.object_bytes(&ObjectKey::IndexPart(IndexId(0), 0)),
            Some(2 * MB)
        );
        assert_eq!(s.object_created(&pkey(0)), Some(SimTime::ZERO));
    }
}
