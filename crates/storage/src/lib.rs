//! # flowtune-storage
//!
//! Data substrate for the flowtune workspace: table schemas, columnar
//! partition data, a synthetic TPC-H `lineitem` generator (the paper uses
//! `lineitem` at scale factor 2 to size indexes and measure speedups), the
//! cloud storage-service cost meter, and the container local-disk LRU
//! cache model.
//!
//! Two layers coexist:
//!
//! * **Metadata** ([`table::TableMeta`], [`table::PartitionMeta`]) — what
//!   the scheduler/tuner/simulator see: row counts, byte sizes, column
//!   statistics. This is all the paper's cost models need.
//! * **Data** ([`column::ColumnData`], [`table::PartitionData`]) — actual
//!   values, used by `flowtune-query` and `flowtune-index` to *measure*
//!   real index speedups (Table 6) instead of assuming them.

pub mod cache;
pub mod column;
pub mod lineitem;
pub mod page;
pub mod pool;
pub mod schema;
pub mod store;
pub mod table;
pub mod value;

pub use cache::LruCache;
pub use column::ColumnData;
pub use lineitem::{LineitemGenerator, LineitemParams};
pub use page::{checksum64, MemPageStore, Page, PageCheck, PageStore, PAGE_PAYLOAD, PAGE_SIZE};
pub use pool::{BufferPool, PoolStats};
pub use schema::{Column, ColumnType, Schema};
pub use store::{ObjectKey, StorageService};
pub use table::{PartitionData, PartitionMeta, TableMeta};
pub use value::Value;
