//! Container local-disk cache.
//!
//! Each container caches partitions and index partitions read from the
//! storage service on its local disk (100 GB by default); when the cache
//! fills, the least-recently-used object is evicted (§6.1). A hit means
//! the operator's input transfer time is zero.
//!
//! The cache is also the eviction core of the page buffer pool
//! (`pool::BufferPool`), which holds one entry per cached page frame.
//! That use demands two properties the original container-cache role
//! never exercised:
//!
//! * **complete eviction accounting** — every key that leaves the cache
//!   through [`LruCache::insert`] is reported to the caller (including
//!   a stale entry displaced by an uncacheable oversized re-insert,
//!   which used to vanish silently) and tallied in
//!   [`LruCache::evictions`], so a caller keeping per-key side state
//!   (pool frames) can never leak or desynchronize;
//! * **cheap victim selection** — a `BTreeSet` recency index keyed by
//!   the unique use tick makes eviction `O(log n)` instead of a full
//!   scan, and deterministic by construction (ticks never collide).

use std::collections::{BTreeSet, HashMap};

/// Byte-sized LRU cache keyed by `K`.
#[derive(Debug, Clone)]
pub struct LruCache<K> {
    capacity: u64,
    used: u64,
    /// key -> (bytes, last-use tick)
    entries: HashMap<K, (u64, u64)>,
    /// (last-use tick, key), ordered oldest-first; ticks are unique,
    /// so the minimum element is *the* LRU victim.
    recency: BTreeSet<(u64, K)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: std::hash::Hash + Eq + Ord + Clone> LruCache<K> {
    /// Create a cache with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            used: 0,
            entries: HashMap::new(),
            recency: BTreeSet::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, updating recency and hit/miss statistics.
    pub fn get(&mut self, key: &K) -> bool {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(key) {
            self.recency.remove(&(entry.1, key.clone()));
            entry.1 = self.tick;
            self.recency.insert((self.tick, key.clone()));
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Check presence without touching recency or statistics.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Remove `key` from both maps, returning its byte size.
    fn take(&mut self, key: &K) -> Option<u64> {
        let (bytes, tick) = self.entries.remove(key)?;
        self.recency.remove(&(tick, key.clone()));
        self.used -= bytes;
        Some(bytes)
    }

    /// Insert an object, evicting least-recently-used entries until it
    /// fits. Objects larger than the whole cache are not cached at all
    /// — but a stale entry they displace *is* reported. Returns every
    /// key evicted by this call (also tallied in
    /// [`LruCache::evictions`]).
    pub fn insert(&mut self, key: K, bytes: u64) -> Vec<K> {
        self.tick += 1;
        let mut evicted = Vec::new();
        if bytes > self.capacity {
            // Can't fit even in an empty cache; treat as uncacheable.
            // The old entry for this key (if any) still leaves the
            // cache and must be visible to callers tracking side
            // state per cached key.
            if self.take(&key).is_some() {
                self.evictions += 1;
                evicted.push(key);
            }
            return evicted;
        }
        self.take(&key);
        while self.used + bytes > self.capacity {
            // Over budget with the new object not yet inserted: at
            // least one entry exists, and the recency set's minimum
            // is the unique LRU victim.
            let Some((_, victim)) = self.recency.iter().next().cloned() else {
                break;
            };
            self.take(&victim);
            self.evictions += 1;
            evicted.push(victim);
        }
        self.entries.insert(key.clone(), (bytes, self.tick));
        self.recency.insert((self.tick, key));
        self.used += bytes;
        evicted
    }

    /// Remove an object (e.g. when its partition version is invalidated).
    /// Explicit removal is not an eviction.
    pub fn remove(&mut self, key: &K) -> bool {
        self.take(key).is_some()
    }

    /// Drop everything (container deleted: local disk contents are lost).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.used = 0;
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hits recorded by [`LruCache::get`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`LruCache::get`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Keys evicted by [`LruCache::insert`] (capacity pressure plus
    /// oversized-insert displacement), over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = LruCache::new(100);
        assert!(!c.get(&"a"));
        c.insert("a", 10);
        assert!(c.get(&"a"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(30);
        c.insert("a", 10);
        c.insert("b", 10);
        c.insert("c", 10);
        assert!(c.get(&"a")); // a is now most recent
        let evicted = c.insert("d", 10);
        assert_eq!(evicted, vec!["b"]);
        assert_eq!(c.evictions(), 1);
        assert!(c.contains(&"a"));
        assert!(c.contains(&"d"));
        assert_eq!(c.used_bytes(), 30);
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c = LruCache::new(30);
        c.insert("a", 10);
        c.insert("a", 20);
        assert_eq!(c.used_bytes(), 20);
        assert_eq!(c.len(), 1);
        // Shrinking a key in place is not an eviction.
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn oversized_objects_are_not_cached() {
        let mut c = LruCache::new(10);
        assert!(c.insert("big", 100).is_empty());
        assert!(!c.contains(&"big"));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn oversized_reinsert_reports_the_displaced_entry() {
        // Regression: growing a cached object past the whole-cache
        // capacity removes the old entry — the caller must hear about
        // it, or side state keyed by cached keys leaks.
        let mut c = LruCache::new(10);
        c.insert("a", 5);
        let evicted = c.insert("a", 100);
        assert_eq!(evicted, vec!["a"]);
        assert_eq!(c.evictions(), 1);
        assert!(!c.contains(&"a"));
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn remove_and_clear() {
        let mut c = LruCache::new(100);
        c.insert("a", 10);
        c.insert("b", 20);
        assert!(c.remove(&"a"));
        assert!(!c.remove(&"a"));
        assert_eq!(c.used_bytes(), 20);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        // Removal and clearing are not evictions.
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn used_bytes_never_exceeds_capacity() {
        let mut rng = SimRng::seed_from_u64(0x1CACE);
        for _ in 0..150 {
            let n_ops = rng.uniform_u64(1, 200) as usize;
            let mut c = LruCache::new(64);
            for _ in 0..n_ops {
                let k = rng.uniform_u64(0, 20) as u32;
                let sz = rng.uniform_u64(1, 40);
                c.insert(k, sz);
                assert!(c.used_bytes() <= c.capacity_bytes());
            }
            // Internal bookkeeping consistent: re-deriving used from entries.
            let derived: u64 = (0u32..20).filter(|k| c.contains(k)).count() as u64;
            assert!(derived as usize == c.len());
        }
    }

    /// Straight-line reference model: a recency-ordered `Vec` of
    /// `(key, bytes)` with front = least recently used.
    struct RefModel {
        capacity: u64,
        order: Vec<(u32, u64)>,
        evictions: u64,
    }

    impl RefModel {
        fn used(&self) -> u64 {
            self.order.iter().map(|&(_, b)| b).sum()
        }

        fn get(&mut self, key: u32) -> bool {
            if let Some(at) = self.order.iter().position(|&(k, _)| k == key) {
                let e = self.order.remove(at);
                self.order.push(e);
                true
            } else {
                false
            }
        }

        fn insert(&mut self, key: u32, bytes: u64) -> Vec<u32> {
            let mut evicted = Vec::new();
            let had = self.order.iter().position(|&(k, _)| k == key);
            if bytes > self.capacity {
                if let Some(at) = had {
                    self.order.remove(at);
                    self.evictions += 1;
                    evicted.push(key);
                }
                return evicted;
            }
            if let Some(at) = had {
                self.order.remove(at);
            }
            while self.used() + bytes > self.capacity {
                let (victim, _) = self.order.remove(0);
                self.evictions += 1;
                evicted.push(victim);
            }
            self.order.push((key, bytes));
            evicted
        }

        fn remove(&mut self, key: u32) -> bool {
            if let Some(at) = self.order.iter().position(|&(k, _)| k == key) {
                self.order.remove(at);
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn matches_reference_model_under_seeded_workload() {
        // Seeded op soup over a small key universe, cross-checked
        // against the straight-line model after every operation:
        // identical eviction order, eviction counts, membership, and
        // byte accounting — including oversized inserts and explicit
        // removals. This pins the behavior the buffer pool builds on.
        let mut rng = SimRng::seed_from_u64(0xE71C7);
        for round in 0..60 {
            let capacity = rng.uniform_u64(8, 96);
            let mut c: LruCache<u32> = LruCache::new(capacity);
            let mut m = RefModel {
                capacity,
                order: Vec::new(),
                evictions: 0,
            };
            let n_ops = rng.uniform_u64(50, 400);
            for op in 0..n_ops {
                let key = rng.uniform_u64(0, 12) as u32;
                match rng.uniform_u64(0, 10) {
                    0..=5 => {
                        // Sizes up to 1.5x capacity exercise the
                        // oversized path too.
                        let sz = rng.uniform_u64(1, capacity + capacity / 2);
                        let got = c.insert(key, sz);
                        let want = m.insert(key, sz);
                        assert!(
                            got == want,
                            "round {round} op {op}: evicted {got:?}, reference {want:?}"
                        );
                    }
                    6..=8 => {
                        assert_eq!(c.get(&key), m.get(key), "round {round} op {op}: get {key}");
                    }
                    _ => {
                        assert_eq!(c.remove(&key), m.remove(key), "round {round} op {op}");
                    }
                }
                assert_eq!(c.used_bytes(), m.used(), "round {round} op {op}");
                assert_eq!(c.len(), m.order.len(), "round {round} op {op}");
                assert_eq!(c.evictions(), m.evictions, "round {round} op {op}");
                assert!(c.used_bytes() <= c.capacity_bytes());
                for &(k, _) in &m.order {
                    assert!(c.contains(&k), "round {round} op {op}: missing {k}");
                }
            }
        }
    }
}
