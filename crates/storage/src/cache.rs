//! Container local-disk cache.
//!
//! Each container caches partitions and index partitions read from the
//! storage service on its local disk (100 GB by default); when the cache
//! fills, the least-recently-used object is evicted (§6.1). A hit means
//! the operator's input transfer time is zero.

use std::collections::HashMap;

/// Byte-sized LRU cache keyed by `K`.
#[derive(Debug)]
pub struct LruCache<K> {
    capacity: u64,
    used: u64,
    /// key -> (bytes, last-use tick)
    entries: HashMap<K, (u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<K: std::hash::Hash + Eq + Clone> LruCache<K> {
    /// Create a cache with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            used: 0,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `key`, updating recency and hit/miss statistics.
    pub fn get(&mut self, key: &K) -> bool {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(key) {
            entry.1 = self.tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Check presence without touching recency or statistics.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Insert an object, evicting least-recently-used entries until it
    /// fits. Objects larger than the whole cache are not cached at all.
    /// Returns the evicted keys.
    pub fn insert(&mut self, key: K, bytes: u64) -> Vec<K> {
        self.tick += 1;
        let mut evicted = Vec::new();
        if bytes > self.capacity {
            // Can't fit even in an empty cache; treat as uncacheable.
            if let Some((old, _)) = self.entries.remove(&key) {
                self.used -= old;
            }
            return evicted;
        }
        if let Some((old, _)) = self.entries.remove(&key) {
            self.used -= old;
        }
        #[allow(clippy::expect_used)]
        while self.used + bytes > self.capacity {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
                .expect("cache overfull but empty"); // flowtune-allow(panic-hygiene): over-budget cache holds at least one entry, and the LRU key was just read from it
            let (sz, _) = self.entries.remove(&lru).expect("lru key must exist");
            self.used -= sz;
            evicted.push(lru);
        }
        self.entries.insert(key, (bytes, self.tick));
        self.used += bytes;
        evicted
    }

    /// Remove an object (e.g. when its partition version is invalidated).
    pub fn remove(&mut self, key: &K) -> bool {
        if let Some((bytes, _)) = self.entries.remove(key) {
            self.used -= bytes;
            true
        } else {
            false
        }
    }

    /// Drop everything (container deleted: local disk contents are lost).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hits recorded by [`LruCache::get`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`LruCache::get`].
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = LruCache::new(100);
        assert!(!c.get(&"a"));
        c.insert("a", 10);
        assert!(c.get(&"a"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(30);
        c.insert("a", 10);
        c.insert("b", 10);
        c.insert("c", 10);
        assert!(c.get(&"a")); // a is now most recent
        let evicted = c.insert("d", 10);
        assert_eq!(evicted, vec!["b"]);
        assert!(c.contains(&"a"));
        assert!(c.contains(&"d"));
        assert_eq!(c.used_bytes(), 30);
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c = LruCache::new(30);
        c.insert("a", 10);
        c.insert("a", 20);
        assert_eq!(c.used_bytes(), 20);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_objects_are_not_cached() {
        let mut c = LruCache::new(10);
        c.insert("big", 100);
        assert!(!c.contains(&"big"));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn remove_and_clear() {
        let mut c = LruCache::new(100);
        c.insert("a", 10);
        c.insert("b", 20);
        assert!(c.remove(&"a"));
        assert!(!c.remove(&"a"));
        assert_eq!(c.used_bytes(), 20);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn used_bytes_never_exceeds_capacity() {
        let mut rng = SimRng::seed_from_u64(0x1CACE);
        for _ in 0..150 {
            let n_ops = rng.uniform_u64(1, 200) as usize;
            let mut c = LruCache::new(64);
            for _ in 0..n_ops {
                let k = rng.uniform_u64(0, 20) as u32;
                let sz = rng.uniform_u64(1, 40);
                c.insert(k, sz);
                assert!(c.used_bytes() <= c.capacity_bytes());
            }
            // Internal bookkeeping consistent: re-deriving used from entries.
            let derived: u64 = (0u32..20).filter(|k| c.contains(k)).count() as u64;
            assert!(derived as usize == c.len());
        }
    }
}
