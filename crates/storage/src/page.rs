//! Fixed-size pages with per-page checksums and epoch stamps.
//!
//! The page is the unit of I/O, caching, and corruption detection for
//! the paged index backend (DESIGN §5h). Every page carries a 16-byte
//! header:
//!
//! ```text
//! bytes  0..8   FNV-1a 64 checksum over bytes 8..PAGE_SIZE
//! bytes  8..12  epoch (u32 LE) — stamp of the build that wrote the page
//! byte   12     kind tag (node type / image payload)
//! byte   13     reserved (zero)
//! bytes 14..16  payload length (u16 LE)
//! bytes 16..    payload, zero-padded to PAGE_SIZE
//! ```
//!
//! The checksum covers the epoch, so a torn write that splices an old
//! page body under a new header (or vice versa) fails verification.
//! [`PageStore`] is the persistence trait; [`MemPageStore`] is the
//! deterministic in-memory backing every simulation run uses. The raw
//! store accepts arbitrary byte strings so fault injection can model
//! truncated (torn) writes — [`Page::check`] reports them as
//! [`PageCheck::SizeMismatch`].

use flowtune_common::{FlowtuneError, PageId, Result};
use std::collections::BTreeMap;

/// Fixed page size in bytes. Every encoded page is exactly this long.
pub const PAGE_SIZE: usize = 4096;

/// Header bytes reserved at the front of every page.
pub const PAGE_HEADER: usize = 16;

/// Maximum payload bytes a single page can carry.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;

/// FNV-1a 64-bit checksum (in-repo: the workspace has a strict
/// zero-external-dependency policy, and FNV is strong enough to catch
/// the byte flips and truncations the fault injector produces).
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A decoded page: epoch stamp, kind tag, and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// Epoch of the build that wrote the page; verification rejects
    /// pages whose epoch does not match the committed partition epoch.
    pub epoch: u32,
    /// Kind tag (leaf/internal node, partition-image chunk, ...).
    pub kind: u8,
    /// Meaningful payload bytes (at most [`PAGE_PAYLOAD`]).
    pub payload: Vec<u8>,
}

/// Outcome of verifying one raw page against an expected epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageCheck {
    /// Header, checksum, and epoch all verify.
    Clean,
    /// The page id is not present in the store at all.
    Missing,
    /// The raw bytes are not exactly [`PAGE_SIZE`] long (torn write).
    SizeMismatch,
    /// The stored checksum does not match the page body (bit rot or a
    /// torn write inside the page).
    ChecksumMismatch,
    /// The page verifies but was written by a different build epoch
    /// (stale page left behind by a crashed or superseded build).
    EpochMismatch,
}

impl PageCheck {
    /// True when the page passed every check.
    pub fn is_clean(self) -> bool {
        self == PageCheck::Clean
    }
}

impl Page {
    /// Construct a page, rejecting oversized payloads.
    pub fn new(kind: u8, epoch: u32, payload: Vec<u8>) -> Result<Page> {
        if payload.len() > PAGE_PAYLOAD {
            return Err(FlowtuneError::storage(format!(
                "page payload of {} bytes exceeds the {PAGE_PAYLOAD}-byte page capacity",
                payload.len()
            )));
        }
        Ok(Page {
            epoch,
            kind,
            payload,
        })
    }

    /// Encode to exactly [`PAGE_SIZE`] bytes with a fresh checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; PAGE_SIZE];
        out[8..12].copy_from_slice(&self.epoch.to_le_bytes());
        out[12] = self.kind;
        #[allow(clippy::expect_used)]
        // flowtune-allow(panic-hygiene): Page::new bounds payload at PAGE_PAYLOAD (< u16::MAX), so the length conversion cannot fail
        let len = u16::try_from(self.payload.len()).expect("payload fits a page");
        out[14..16].copy_from_slice(&len.to_le_bytes());
        out[PAGE_HEADER..PAGE_HEADER + self.payload.len()].copy_from_slice(&self.payload);
        let sum = checksum64(&out[8..]);
        out[0..8].copy_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode and verify a raw page. Size or checksum defects yield
    /// [`FlowtuneError::Corrupt`]; the epoch is returned for the caller
    /// to compare against the committed partition epoch.
    pub fn decode(bytes: &[u8]) -> Result<Page> {
        match Self::check_raw(bytes) {
            PageCheck::Clean => {}
            defect => {
                return Err(FlowtuneError::corrupt(format!(
                    "page failed verification: {defect:?}"
                )))
            }
        }
        let epoch = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let len = usize::from(u16::from_le_bytes([bytes[14], bytes[15]]));
        Ok(Page {
            epoch,
            kind: bytes[12],
            payload: bytes[PAGE_HEADER..PAGE_HEADER + len].to_vec(),
        })
    }

    /// Verify raw bytes without an epoch expectation.
    fn check_raw(bytes: &[u8]) -> PageCheck {
        if bytes.len() != PAGE_SIZE {
            return PageCheck::SizeMismatch;
        }
        let stored = u64::from_le_bytes([
            bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
        ]);
        if stored != checksum64(&bytes[8..]) {
            return PageCheck::ChecksumMismatch;
        }
        let len = usize::from(u16::from_le_bytes([bytes[14], bytes[15]]));
        if len > PAGE_PAYLOAD {
            return PageCheck::ChecksumMismatch;
        }
        PageCheck::Clean
    }

    /// Verify raw bytes (possibly absent) against an expected epoch.
    pub fn check(bytes: Option<&[u8]>, expected_epoch: u32) -> PageCheck {
        let Some(bytes) = bytes else {
            return PageCheck::Missing;
        };
        let verdict = Self::check_raw(bytes);
        if !verdict.is_clean() {
            return verdict;
        }
        let epoch = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if epoch != expected_epoch {
            return PageCheck::EpochMismatch;
        }
        PageCheck::Clean
    }
}

/// Persistence abstraction the buffer pool runs over. Implementations
/// must be deterministic: id allocation and read/write behavior depend
/// only on the call sequence.
pub trait PageStore {
    /// Allocate a fresh page id. Ids are never reused.
    fn allocate(&mut self) -> PageId;
    /// Write raw bytes for `id`. Arbitrary lengths are accepted so
    /// fault injection can model torn (truncated) writes; verification
    /// catches them later.
    fn write(&mut self, id: PageId, bytes: Vec<u8>);
    /// Raw bytes for `id`, or `None` when the page was never written
    /// (or was freed).
    fn read(&self, id: PageId) -> Option<&[u8]>;
    /// Drop the page. Freed ids are not reallocated.
    fn free(&mut self, id: PageId);
    /// Number of pages currently stored.
    fn page_count(&self) -> usize;
}

/// Deterministic in-memory page store: a `BTreeMap` of raw page images
/// with monotonically allocated ids.
#[derive(Debug, Clone, Default)]
pub struct MemPageStore {
    pages: BTreeMap<PageId, Vec<u8>>,
    next: u32,
}

impl MemPageStore {
    /// Create an empty store.
    pub fn new() -> Self {
        MemPageStore::default()
    }

    /// Fault-injection hook: XOR one byte of the stored image, leaving
    /// a checksum-detectable flip. No-op when the page or offset is
    /// out of range.
    pub fn corrupt(&mut self, id: PageId, offset: usize) {
        if let Some(bytes) = self.pages.get_mut(&id) {
            if let Some(b) = bytes.get_mut(offset) {
                *b ^= 0xFF;
            }
        }
    }

    /// Fault-injection hook: truncate the stored image to `keep`
    /// bytes, modeling a torn write that persisted only a prefix.
    pub fn truncate(&mut self, id: PageId, keep: usize) {
        if let Some(bytes) = self.pages.get_mut(&id) {
            bytes.truncate(keep);
        }
    }

    /// Ids of every stored page, ascending.
    pub fn ids(&self) -> impl Iterator<Item = PageId> + '_ {
        self.pages.keys().copied()
    }
}

impl PageStore for MemPageStore {
    fn allocate(&mut self) -> PageId {
        let id = PageId(self.next);
        self.next = self.next.wrapping_add(1);
        id
    }

    fn write(&mut self, id: PageId, bytes: Vec<u8>) {
        self.pages.insert(id, bytes);
    }

    fn read(&self, id: PageId) -> Option<&[u8]> {
        self.pages.get(&id).map(Vec::as_slice)
    }

    fn free(&mut self, id: PageId) {
        self.pages.remove(&id);
    }

    fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let page = Page::new(1, 7, b"hello pages".to_vec()).unwrap();
        let bytes = page.encode();
        assert_eq!(bytes.len(), PAGE_SIZE);
        let back = Page::decode(&bytes).unwrap();
        assert_eq!(back, page);
    }

    #[test]
    fn payload_capacity_is_enforced() {
        assert!(Page::new(0, 0, vec![0u8; PAGE_PAYLOAD]).is_ok());
        assert!(Page::new(0, 0, vec![0u8; PAGE_PAYLOAD + 1]).is_err());
    }

    #[test]
    fn checksum_catches_any_single_byte_flip() {
        let page = Page::new(3, 9, vec![0xAB; 100]).unwrap();
        let clean = page.encode();
        // Flip each byte in turn (header and body alike): every flip
        // must be detected, because the checksum covers epoch + body
        // and the stored checksum itself no longer matches the body.
        for i in 0..PAGE_SIZE {
            let mut torn = clean.clone();
            torn[i] ^= 0x01;
            assert!(
                Page::decode(&torn).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn check_classifies_defects() {
        let page = Page::new(2, 5, b"abc".to_vec()).unwrap();
        let clean = page.encode();
        assert_eq!(Page::check(Some(&clean), 5), PageCheck::Clean);
        assert_eq!(Page::check(None, 5), PageCheck::Missing);
        assert_eq!(Page::check(Some(&clean[..100]), 5), PageCheck::SizeMismatch);
        let mut flipped = clean.clone();
        flipped[PAGE_HEADER] ^= 0xFF;
        assert_eq!(Page::check(Some(&flipped), 5), PageCheck::ChecksumMismatch);
        // A clean page from another build epoch: checksum passes,
        // epoch comparison rejects.
        assert_eq!(Page::check(Some(&clean), 6), PageCheck::EpochMismatch);
    }

    #[test]
    fn epoch_is_under_the_checksum() {
        // Splicing a different epoch under an otherwise valid page must
        // fail the *checksum*, not just the epoch comparison — a torn
        // header cannot masquerade as a clean page of another epoch.
        let page = Page::new(2, 5, b"abc".to_vec()).unwrap();
        let mut bytes = page.encode();
        bytes[8..12].copy_from_slice(&6u32.to_le_bytes());
        assert_eq!(Page::check(Some(&bytes), 6), PageCheck::ChecksumMismatch);
    }

    #[test]
    fn mem_store_allocates_monotonic_ids_and_never_reuses() {
        let mut s = MemPageStore::new();
        let a = s.allocate();
        let b = s.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        s.write(a, vec![1, 2, 3]);
        s.free(a);
        let c = s.allocate();
        assert_eq!(c, PageId(2));
        assert_eq!(s.read(a), None);
        assert_eq!(s.page_count(), 0);
    }

    #[test]
    fn corrupt_and_truncate_are_detected_by_check() {
        let mut s = MemPageStore::new();
        let id = s.allocate();
        let page = Page::new(1, 4, vec![7u8; 64]).unwrap();
        s.write(id, page.encode());
        assert_eq!(Page::check(s.read(id), 4), PageCheck::Clean);
        s.truncate(id, 1000);
        assert_eq!(Page::check(s.read(id), 4), PageCheck::SizeMismatch);
        let id2 = s.allocate();
        s.write(id2, page.encode());
        s.corrupt(id2, PAGE_HEADER + 3);
        assert_eq!(Page::check(s.read(id2), 4), PageCheck::ChecksumMismatch);
    }
}
