//! Dynamically-typed scalar values.
//!
//! Row-oriented access used by tests, examples and small queries; the hot
//! paths in `flowtune-query` operate on [`crate::column::ColumnData`]
//! directly.

use std::cmp::Ordering;
use std::fmt;

/// One scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// Date as days since 1970-01-01.
    Date(i32),
    /// Text.
    Str(String),
}

impl Value {
    /// Total order between values of the *same* variant; `None` when the
    /// variants differ (heterogeneous comparison is a logic error the
    /// caller should surface, not silently order).
    pub fn try_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::I32(a), Value::I32(b)) => Some(a.cmp(b)),
            (Value::I64(a), Value::I64(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::F64(a), Value::F64(b)) => a.partial_cmp(b),
            _ => None,
        }
    }

    /// On-disk size of this value in bytes (textual encoding for dates,
    /// matching the schema statistics).
    pub fn encoded_bytes(&self) -> usize {
        match self {
            Value::I32(_) => 4,
            Value::I64(_) => 8,
            Value::F64(_) => 8,
            Value::Date(_) => 10,
            Value::Str(s) => s.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Date(d) => write!(f, "date({d})"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_type_comparisons() {
        assert_eq!(Value::I64(1).try_cmp(&Value::I64(2)), Some(Ordering::Less));
        assert_eq!(
            Value::from("b").try_cmp(&Value::from("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Date(10).try_cmp(&Value::Date(10)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::F64(1.5).try_cmp(&Value::F64(1.5)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn cross_type_comparison_is_none() {
        assert_eq!(Value::I32(1).try_cmp(&Value::I64(1)), None);
        assert_eq!(Value::F64(f64::NAN).try_cmp(&Value::F64(0.0)), None);
    }

    #[test]
    fn encoded_sizes() {
        assert_eq!(Value::I32(7).encoded_bytes(), 4);
        assert_eq!(Value::Date(0).encoded_bytes(), 10);
        assert_eq!(Value::from("hello").encoded_bytes(), 5);
    }
}
