//! Synthetic TPC-H `lineitem` generator.
//!
//! The paper sizes its indexes and measures index speedups on TPC-H
//! `lineitem` at scale factor 2 (≈12 M rows, 1.4 GB). We cannot ship TPC-H
//! data, so this module generates a statistically equivalent table: the
//! same 16 columns, the same per-column average sizes (so the Table 5
//! index-size percentages reproduce), duplicate-heavy `orderkey` values
//! (~4 line items per order, like TPC-H) and categorical
//! `shipinstruct`/`shipmode` domains.
//!
//! Row count is a parameter: benches measure speedups on a few million
//! rows and the analytic size model extrapolates to the full scale.

use crate::column::ColumnData;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::PartitionData;
use flowtune_common::SimRng;

/// Rows in TPC-H `lineitem` at scale factor 2, the configuration the
/// paper uses.
pub const SF2_ROWS: u64 = 11_997_996;

/// The four values TPC-H uses for `l_shipinstruct`.
pub const SHIP_INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// The seven values TPC-H uses for `l_shipmode`.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct LineitemParams {
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Average line items per order (TPC-H: 4); controls `orderkey`
    /// duplication.
    pub lines_per_order: u32,
}

impl Default for LineitemParams {
    fn default() -> Self {
        LineitemParams {
            rows: 100_000,
            seed: 0x71C4,
            lines_per_order: 4,
        }
    }
}

/// Synthetic `lineitem` generator.
#[derive(Debug)]
pub struct LineitemGenerator {
    params: LineitemParams,
}

impl LineitemGenerator {
    /// Create a generator.
    pub fn new(params: LineitemParams) -> Self {
        assert!(params.rows > 0, "row count must be positive");
        assert!(
            params.lines_per_order > 0,
            "lines per order must be positive"
        );
        LineitemGenerator { params }
    }

    /// The `lineitem` schema with per-column average-size statistics
    /// matching TPC-H flat files (~117 bytes/row, 1.4 GB at SF 2).
    pub fn schema() -> Schema {
        Schema::new(vec![
            Column::new("orderkey", ColumnType::Int32),
            Column::new("partkey", ColumnType::Int32),
            Column::new("suppkey", ColumnType::Int32),
            Column::new("linenumber", ColumnType::Int32),
            Column::new("quantity", ColumnType::Float64),
            Column::new("extendedprice", ColumnType::Float64),
            Column::new("discount", ColumnType::Float64),
            Column::new("tax", ColumnType::Float64),
            Column::new("returnflag", ColumnType::Char { width: 1, avg: 1.0 }),
            Column::new("linestatus", ColumnType::Char { width: 1, avg: 1.0 }),
            Column::new("shipdate", ColumnType::Date),
            Column::new("commitdate", ColumnType::Date),
            Column::new("receiptdate", ColumnType::Date),
            Column::new(
                "shipinstruct",
                ColumnType::Char {
                    width: 25,
                    avg: 12.0,
                },
            ),
            Column::new(
                "shipmode",
                ColumnType::Char {
                    width: 10,
                    avg: 4.3,
                },
            ),
            Column::new("comment", ColumnType::Text { avg: 27.0 }),
        ])
    }

    /// Generate only the named columns (in the given order). Generating a
    /// subset keeps the speedup benches lean — the Table 6 queries touch
    /// only `orderkey`.
    ///
    /// All columns are derived from independent forked RNG streams, so the
    /// values of a column do not depend on which other columns are
    /// requested.
    pub fn generate_columns(&self, names: &[&str]) -> PartitionData {
        let mut root = SimRng::seed_from_u64(self.params.seed);
        // Fork one stream per schema column, in schema order, so column
        // content is independent of the requested subset.
        let schema = Self::schema();
        let mut streams: Vec<SimRng> = (0..schema.len()).map(|_| root.fork()).collect();
        let columns = names
            .iter()
            .map(|name| {
                let idx = schema
                    .index_of(name)
                    // flowtune-allow(panic-hygiene): documented contract: callers request schema column names
                    .unwrap_or_else(|| panic!("unknown lineitem column {name:?}"));
                self.generate_column(name, &mut streams[idx])
            })
            .collect();
        PartitionData::new(columns)
    }

    /// Generate the full 16-column table.
    pub fn generate(&self) -> PartitionData {
        let schema = Self::schema();
        let names: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
        self.generate_columns(&names)
    }

    fn generate_column(&self, name: &str, rng: &mut SimRng) -> ColumnData {
        let n = self.params.rows;
        match name {
            "orderkey" => ColumnData::I64(self.orderkeys(rng)),
            "partkey" => {
                ColumnData::I32((0..n).map(|_| rng.uniform_i64(1, 200_001) as i32).collect())
            }
            "suppkey" => {
                ColumnData::I32((0..n).map(|_| rng.uniform_i64(1, 10_001) as i32).collect())
            }
            "linenumber" => ColumnData::I32((0..n).map(|i| (i % 7 + 1) as i32).collect()),
            "quantity" => ColumnData::F64((0..n).map(|_| rng.uniform_i64(1, 51) as f64).collect()),
            "extendedprice" => ColumnData::F64(
                (0..n)
                    .map(|_| rng.uniform_range(900.0, 105_000.0))
                    .collect(),
            ),
            "discount" => ColumnData::F64(
                (0..n)
                    .map(|_| rng.uniform_i64(0, 11) as f64 / 100.0)
                    .collect(),
            ),
            "tax" => ColumnData::F64(
                (0..n)
                    .map(|_| rng.uniform_i64(0, 9) as f64 / 100.0)
                    .collect(),
            ),
            "returnflag" => ColumnData::Str(
                (0..n)
                    .map(|_| (*rng.choose(&["R", "A", "N"])).to_owned())
                    .collect(),
            ),
            "linestatus" => ColumnData::Str(
                (0..n)
                    .map(|_| (*rng.choose(&["O", "F"])).to_owned())
                    .collect(),
            ),
            // TPC-H dates span 1992-01-01 .. 1998-12-31 (days since epoch
            // 8035 .. 10592).
            "shipdate" | "commitdate" | "receiptdate" => ColumnData::Date(
                (0..n)
                    .map(|_| rng.uniform_i64(8035, 10593) as i32)
                    .collect(),
            ),
            "shipinstruct" => ColumnData::Str(
                (0..n)
                    .map(|_| (*rng.choose(&SHIP_INSTRUCTIONS)).to_owned())
                    .collect(),
            ),
            "shipmode" => ColumnData::Str(
                (0..n)
                    .map(|_| (*rng.choose(&SHIP_MODES)).to_owned())
                    .collect(),
            ),
            "comment" => ColumnData::Str((0..n).map(|_| comment_text(rng)).collect()),
            // flowtune-allow(panic-hygiene): documented contract: generate_column takes schema column names
            other => panic!("unknown lineitem column {other:?}"),
        }
    }

    /// `orderkey` values: consecutive order numbers each repeated for a
    /// random group of line items (1 ..= 2·avg-1, mean = avg), then
    /// shuffled so physical order carries no information.
    fn orderkeys(&self, rng: &mut SimRng) -> Vec<i64> {
        let n = self.params.rows;
        let max_group = (2 * self.params.lines_per_order - 1).max(1) as u64;
        let mut keys = Vec::with_capacity(n);
        let mut order = 1i64;
        while keys.len() < n {
            let group = rng.uniform_u64(1, max_group + 1) as usize;
            for _ in 0..group.min(n - keys.len()) {
                keys.push(order);
            }
            order += 1;
        }
        rng.shuffle(&mut keys);
        keys
    }
}

fn comment_text(rng: &mut SimRng) -> String {
    // Word salad with mean length ~27 bytes, like l_comment.
    const WORDS: [&str; 16] = [
        "carefully",
        "quickly",
        "furiously",
        "deposits",
        "requests",
        "accounts",
        "packages",
        "ideas",
        "theodolites",
        "pinto",
        "beans",
        "foxes",
        "sleep",
        "haggle",
        "bold",
        "final",
    ];
    let target = rng.uniform_u64(10, 45) as usize;
    let mut s = String::with_capacity(target + 12);
    while s.len() < target {
        if !s.is_empty() {
            s.push(' ');
        }
        let word: &&str = rng.choose(&WORDS[..]);
        s.push_str(word);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::OnlineStats;

    #[test]
    fn schema_row_size_matches_tpch() {
        let row = LineitemGenerator::schema().avg_row_bytes();
        // TPC-H lineitem flat-file rows average ~117 bytes (1.4 GB / 12 M).
        assert!((110.0..130.0).contains(&row), "row bytes {row}");
    }

    #[test]
    fn generates_requested_rows() {
        let g = LineitemGenerator::new(LineitemParams {
            rows: 1000,
            ..Default::default()
        });
        let data = g.generate_columns(&["orderkey", "commitdate"]);
        assert_eq!(data.rows(), 1000);
        assert_eq!(data.columns().len(), 2);
    }

    #[test]
    fn orderkey_duplication_matches_lines_per_order() {
        let g = LineitemGenerator::new(LineitemParams {
            rows: 40_000,
            ..Default::default()
        });
        let data = g.generate_columns(&["orderkey"]);
        let keys = data.column(0).as_i64().unwrap();
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        let avg_group = keys.len() as f64 / distinct.len() as f64;
        assert!((3.0..5.0).contains(&avg_group), "avg group {avg_group}");
    }

    #[test]
    fn column_content_is_independent_of_subset() {
        let p = LineitemParams {
            rows: 500,
            ..Default::default()
        };
        let a = LineitemGenerator::new(p.clone()).generate_columns(&["commitdate"]);
        let b = LineitemGenerator::new(p).generate_columns(&["orderkey", "commitdate"]);
        assert_eq!(a.column(0), b.column(1));
    }

    #[test]
    fn comments_have_tpch_like_lengths() {
        let g = LineitemGenerator::new(LineitemParams {
            rows: 2000,
            ..Default::default()
        });
        let data = g.generate_columns(&["comment"]);
        let stats = OnlineStats::from_iter(
            data.column(0)
                .as_str()
                .unwrap()
                .iter()
                .map(|s| s.len() as f64),
        );
        assert!(
            (20.0..35.0).contains(&stats.mean()),
            "mean comment {}",
            stats.mean()
        );
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let p = LineitemParams {
            rows: 100,
            seed: 9,
            lines_per_order: 4,
        };
        let a = LineitemGenerator::new(p.clone()).generate_columns(&["orderkey"]);
        let b = LineitemGenerator::new(p).generate_columns(&["orderkey"]);
        assert_eq!(a, b);
    }

    #[test]
    fn dates_in_tpch_range() {
        let g = LineitemGenerator::new(LineitemParams {
            rows: 1000,
            ..Default::default()
        });
        let data = g.generate_columns(&["shipdate"]);
        for &d in data.column(0).as_date().unwrap() {
            assert!((8035..10593).contains(&d));
        }
    }
}
