//! Columnar value storage.
//!
//! Partitions store their data column-wise; the query and index crates
//! iterate typed vectors directly, which is what makes the Table 6
//! speedup measurements meaningful (a scan really is a tight loop over a
//! `&[i64]`, a B+Tree lookup really does walk tree nodes).

use crate::value::Value;

/// The values of one column of one partition.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 32-bit integers.
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// Dates (days since epoch).
    Date(Vec<i32>),
    /// Text values.
    Str(Vec<String>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row` as a dynamically-typed [`Value`].
    ///
    /// Panics if `row` is out of bounds.
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnData::I32(v) => Value::I32(v[row]),
            ColumnData::I64(v) => Value::I64(v[row]),
            ColumnData::F64(v) => Value::F64(v[row]),
            ColumnData::Date(v) => Value::Date(v[row]),
            ColumnData::Str(v) => Value::Str(v[row].clone()),
        }
    }

    /// Typed access: 64-bit integer column, or `None` if another type.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            ColumnData::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Typed access: 32-bit integer column.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            ColumnData::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Typed access: date column.
    pub fn as_date(&self) -> Option<&[i32]> {
        match self {
            ColumnData::Date(v) => Some(v),
            _ => None,
        }
    }

    /// Typed access: text column.
    pub fn as_str(&self) -> Option<&[String]> {
        match self {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Actual encoded byte size of the column contents.
    pub fn encoded_bytes(&self) -> u64 {
        match self {
            ColumnData::I32(v) => 4 * v.len() as u64,
            ColumnData::I64(v) => 8 * v.len() as u64,
            ColumnData::F64(v) => 8 * v.len() as u64,
            ColumnData::Date(v) => 10 * v.len() as u64,
            ColumnData::Str(v) => v.iter().map(|s| s.len() as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_values() {
        let c = ColumnData::I64(vec![5, 6, 7]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.value(1), Value::I64(6));
        assert_eq!(c.as_i64().unwrap(), &[5, 6, 7]);
        assert!(c.as_str().is_none());
    }

    #[test]
    fn encoded_sizes() {
        assert_eq!(ColumnData::I32(vec![1, 2]).encoded_bytes(), 8);
        assert_eq!(ColumnData::Date(vec![0; 3]).encoded_bytes(), 30);
        let s = ColumnData::Str(vec!["ab".into(), "cde".into()]);
        assert_eq!(s.encoded_bytes(), 5);
    }

    #[test]
    fn empty_column() {
        let c = ColumnData::Str(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.encoded_bytes(), 0);
    }
}
