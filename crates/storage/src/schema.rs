//! Table schemas and column statistics.
//!
//! The paper's index size model (§3, "Data Model") needs only one
//! statistic per column: the **average size of the fields of each column**
//! in bytes. [`ColumnType::avg_value_bytes`] provides it, with an override
//! available per column for measured statistics.

use std::fmt;

/// Logical column type.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnType {
    /// 32-bit integer (4 bytes on disk).
    Int32,
    /// 64-bit integer (8 bytes on disk).
    Int64,
    /// 64-bit float (8 bytes on disk).
    Float64,
    /// Calendar date stored in its textual `YYYY-MM-DD` form (10 bytes),
    /// as TPC-H flat files do.
    Date,
    /// Fixed-width character field; stores the declared width but the
    /// *average* occupied size may be smaller (e.g. `shipinstruct` is
    /// `char(25)` yet its four possible values average 12 bytes).
    Char {
        /// Declared width in bytes.
        width: u32,
        /// Average occupied bytes.
        avg: f64,
    },
    /// Variable-length text with a known average size.
    Text {
        /// Average size in bytes.
        avg: f64,
    },
}

impl ColumnType {
    /// Average on-disk size of one value of this type, in bytes.
    pub fn avg_value_bytes(&self) -> f64 {
        match self {
            ColumnType::Int32 => 4.0,
            ColumnType::Int64 => 8.0,
            ColumnType::Float64 => 8.0,
            ColumnType::Date => 10.0,
            ColumnType::Char { avg, .. } => *avg,
            ColumnType::Text { avg } => *avg,
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int32 => write!(f, "int32"),
            ColumnType::Int64 => write!(f, "int64"),
            ColumnType::Float64 => write!(f, "float64"),
            ColumnType::Date => write!(f, "date"),
            ColumnType::Char { width, .. } => write!(f, "char({width})"),
            ColumnType::Text { .. } => write!(f, "text"),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type (carries the average-size statistic).
    pub ty: ColumnType,
}

impl Column {
    /// Construct a column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns. Panics on duplicate column names.
    pub fn new(columns: Vec<Column>) -> Self {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate column name {:?}", a.name);
            }
        }
        Schema { columns }
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Average on-disk size of one full row, in bytes — the sum of the
    /// per-column averages (the paper's `RecSize` for the base table).
    pub fn avg_row_bytes(&self) -> f64 {
        self.columns.iter().map(|c| c.ty.avg_value_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("orderkey", ColumnType::Int32),
            Column::new("comment", ColumnType::Text { avg: 27.0 }),
            Column::new("commitdate", ColumnType::Date),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("comment"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.column("commitdate").unwrap().ty, ColumnType::Date);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn row_size_is_sum_of_column_sizes() {
        let s = sample();
        assert!((s.avg_row_bytes() - (4.0 + 27.0 + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn char_uses_average_not_width() {
        let ty = ColumnType::Char {
            width: 25,
            avg: 12.0,
        };
        assert!((ty.avg_value_bytes() - 12.0).abs() < 1e-12);
        assert_eq!(ty.to_string(), "char(25)");
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        let _ = Schema::new(vec![
            Column::new("a", ColumnType::Int32),
            Column::new("a", ColumnType::Int64),
        ]);
    }
}
