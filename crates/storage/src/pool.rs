//! Deterministic LRU buffer pool over a [`PageStore`].
//!
//! The pool is write-through: every [`BufferPool::write`] encodes the
//! page, persists it to the backing store, and caches the *decoded*
//! page; reads serve from the cache when possible and fall back to a
//! store read (decode + checksum verification) on a miss. Checksums
//! are therefore verified exactly once per store read — a hit is a
//! cheap clone of an already-verified frame, which is what keeps
//! indexed range scans ahead of raw column scans. Eviction is driven
//! by the byte-accounted [`LruCache`] with one frame per page, so
//! hit/miss/eviction order depends only on the access sequence —
//! never on hash iteration order or wall-clock time.
//!
//! Verification ([`BufferPool::check`]) deliberately bypasses the
//! cache: a recovery scan must judge what the *persistent* store
//! holds, because a crash loses buffered memory while leaving torn
//! bytes behind. A page that verifies clean is (re)cached so the
//! probes that follow a successful scan hit warm frames.
//!
//! All pool traffic is counted through `flowtune-obs` from this single
//! site (`storage.pool_hits` / `storage.pool_misses` /
//! `storage.pool_evictions` / `storage.page_reads` /
//! `storage.page_writes`), which is what lets the gain model consume
//! *measured* build/probe I/O instead of asserted constants.

use crate::cache::LruCache;
use crate::page::{Page, PageCheck, PageStore, PAGE_SIZE};
use flowtune_common::{FlowtuneError, PageId, Result};
use std::collections::BTreeMap;

/// Pool traffic counters (also mirrored into `flowtune-obs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Reads served from a cached frame.
    pub hits: u64,
    /// Reads that had to go to the backing store.
    pub misses: u64,
    /// Frames dropped by LRU capacity pressure.
    pub evictions: u64,
    /// Raw page reads issued to the backing store.
    pub page_reads: u64,
    /// Raw page writes issued to the backing store.
    pub page_writes: u64,
}

/// Write-through LRU buffer pool; see the module docs.
#[derive(Debug, Clone)]
pub struct BufferPool<S> {
    store: S,
    cache: LruCache<PageId>,
    frames: BTreeMap<PageId, Page>,
    stats: PoolStats,
}

impl<S: PageStore> BufferPool<S> {
    /// Create a pool holding at most `capacity_pages` cached frames.
    pub fn new(store: S, capacity_pages: usize) -> Self {
        BufferPool {
            store,
            cache: LruCache::new(capacity_pages as u64 * PAGE_SIZE as u64),
            frames: BTreeMap::new(),
            stats: PoolStats::default(),
        }
    }

    /// Allocate a fresh page id from the backing store.
    pub fn allocate(&mut self) -> PageId {
        self.store.allocate()
    }

    /// Encode `page`, persist it, and cache the decoded page.
    pub fn write(&mut self, id: PageId, page: &Page) {
        self.store.write(id, page.encode());
        self.stats.page_writes += 1;
        flowtune_obs::count("storage.page_writes", 1);
        self.cache_frame(id, page.clone());
    }

    /// Read and decode a page, serving from the cache when possible.
    /// A store read verifies the checksum; corrupt or missing pages
    /// yield [`FlowtuneError::Corrupt`] / [`FlowtuneError::NotFound`].
    pub fn read(&mut self, id: PageId) -> Result<Page> {
        if self.cache.get(&id) {
            self.stats.hits += 1;
            // flowtune-allow(obs-discipline): fires on the B+Tree probe path (flowtune-query measurements, --calibrate-io); the smoke service run only writes/verifies images and never probes through the pool
            flowtune_obs::count("storage.pool_hits", 1);
            let frame = self.frames.get(&id).ok_or_else(|| {
                FlowtuneError::storage(format!("cached page {id} lost its frame"))
            })?;
            return Ok(frame.clone());
        }
        self.stats.misses += 1;
        // flowtune-allow(obs-discipline): fires on the B+Tree probe path (flowtune-query measurements, --calibrate-io); the smoke service run only writes/verifies images and never probes through the pool
        flowtune_obs::count("storage.pool_misses", 1);
        self.stats.page_reads += 1;
        flowtune_obs::count("storage.page_reads", 1);
        let bytes = self
            .store
            .read(id)
            .ok_or_else(|| FlowtuneError::not_found(format!("page {id} is not in the store")))?;
        let page = Page::decode(bytes)?;
        self.cache_frame(id, page.clone());
        Ok(page)
    }

    /// Verify one page against `expected_epoch`, reading the backing
    /// store directly (never trusting buffered frames — see module
    /// docs). A clean page refreshes the cache.
    pub fn check(&mut self, id: PageId, expected_epoch: u32) -> PageCheck {
        self.stats.page_reads += 1;
        flowtune_obs::count("storage.page_reads", 1);
        let verdict = Page::check(self.store.read(id), expected_epoch);
        if verdict.is_clean() {
            if let Some(page) = self.store.read(id).and_then(|b| Page::decode(b).ok()) {
                self.cache_frame(id, page);
            }
        } else {
            self.evict(id);
        }
        verdict
    }

    /// Drop the cached frame for `id` without touching the store —
    /// the crash model: buffered memory is lost, persistent bytes
    /// (torn or not) survive.
    pub fn evict(&mut self, id: PageId) {
        self.cache.remove(&id);
        self.frames.remove(&id);
    }

    /// Drop the page from cache *and* backing store.
    pub fn free(&mut self, id: PageId) {
        self.evict(id);
        self.store.free(id);
    }

    /// Drop every cached frame (cold-cache measurement hook). The
    /// backing store and traffic counters are untouched; drops are
    /// not counted as evictions because no capacity pressure caused
    /// them.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        self.frames.clear();
    }

    /// Cached-frame insert, folding LRU pressure into eviction stats.
    /// Frames are accounted at [`PAGE_SIZE`] regardless of payload
    /// length — capacity is in pages, matching the backing store.
    fn cache_frame(&mut self, id: PageId, page: Page) {
        let evicted = self.cache.insert(id, PAGE_SIZE as u64);
        for victim in evicted {
            self.frames.remove(&victim);
            self.stats.evictions += 1;
            flowtune_obs::count("storage.pool_evictions", 1);
        }
        if self.cache.contains(&id) {
            self.frames.insert(id, page);
        }
    }

    /// The backing store (read-only).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The backing store (mutable — fault-injection hooks live here).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Traffic counters accumulated so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::MemPageStore;

    fn page(epoch: u32, fill: u8) -> Page {
        Page::new(1, epoch, vec![fill; 32]).unwrap()
    }

    #[test]
    fn write_then_read_hits_the_cache() {
        let mut pool = BufferPool::new(MemPageStore::new(), 8);
        let id = pool.allocate();
        pool.write(id, &page(1, 0xAA));
        assert_eq!(pool.read(id).unwrap(), page(1, 0xAA));
        let s = pool.stats();
        assert_eq!(
            (s.hits, s.misses, s.page_writes, s.page_reads),
            (1, 0, 1, 0)
        );
    }

    #[test]
    fn capacity_pressure_evicts_and_rereads_from_store() {
        let mut pool = BufferPool::new(MemPageStore::new(), 2);
        let ids: Vec<_> = (0..3)
            .map(|i| {
                let id = pool.allocate();
                pool.write(id, &page(1, i));
                id
            })
            .collect();
        // Pool holds 2 frames; writing the third evicted the first.
        assert_eq!(pool.stats().evictions, 1);
        let got = pool.read(ids[0]).unwrap();
        assert_eq!(got, page(1, 0));
        let s = pool.stats();
        assert_eq!((s.misses, s.page_reads), (1, 1));
        // Re-reading id0 evicted the then-LRU frame (id1).
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn check_bypasses_cached_frames() {
        let mut pool = BufferPool::new(MemPageStore::new(), 8);
        let id = pool.allocate();
        pool.write(id, &page(7, 0x01));
        // Corrupt the persistent bytes while the cached frame stays
        // clean: verification must see the store, not the cache.
        pool.store_mut().corrupt(id, 100);
        assert_eq!(pool.check(id, 7), PageCheck::ChecksumMismatch);
        // The corrupt page was evicted from the cache, so a normal
        // read now surfaces the corruption too.
        assert!(matches!(pool.read(id), Err(FlowtuneError::Corrupt(_))));
    }

    #[test]
    fn clean_check_warms_the_cache() {
        let mut pool = BufferPool::new(MemPageStore::new(), 8);
        let id = pool.allocate();
        pool.write(id, &page(3, 0x02));
        pool.evict(id);
        assert_eq!(pool.check(id, 3), PageCheck::Clean);
        let before = pool.stats();
        assert_eq!(pool.read(id).unwrap(), page(3, 0x02));
        let after = pool.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.page_reads, before.page_reads);
    }

    #[test]
    fn epoch_mismatch_is_detected() {
        let mut pool = BufferPool::new(MemPageStore::new(), 8);
        let id = pool.allocate();
        pool.write(id, &page(4, 0x03));
        assert_eq!(pool.check(id, 5), PageCheck::EpochMismatch);
        assert_eq!(pool.check(PageId(999), 5), PageCheck::Missing);
    }

    #[test]
    fn free_removes_from_store_and_cache() {
        let mut pool = BufferPool::new(MemPageStore::new(), 8);
        let id = pool.allocate();
        pool.write(id, &page(1, 0x04));
        pool.free(id);
        assert!(pool.read(id).is_err());
        assert_eq!(pool.store().page_count(), 0);
    }
}
