//! Sorting operators.
//!
//! No-index sorting is an `O(n log n)` comparison argsort; with a B+Tree
//! the rows come out of an in-order traversal in `O(n)` — the paper's
//! "Sorting" category.

use flowtune_index::BPlusTree;

/// Argsort: row ids ordered by `col` value (stable).
pub fn sort_scan(col: &[i64]) -> Vec<u32> {
    let mut rows: Vec<u32> = (0..col.len() as u32).collect();
    rows.sort_by_key(|&r| col[r as usize]);
    rows
}

/// Row ids in key order via B+Tree in-order traversal.
pub fn sort_index(index: &BPlusTree<i64>) -> Vec<u32> {
    index.iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Vec<i64>, BPlusTree<i64>) {
        let col: Vec<i64> = vec![50, 10, 40, 10, 30, 20];
        let mut pairs: Vec<(i64, u32)> = col
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, i as u32))
            .collect();
        pairs.sort_unstable();
        (col.clone(), BPlusTree::bulk_build(4, &pairs))
    }

    #[test]
    fn both_paths_produce_key_order() {
        let (col, bt) = fixture();
        for rows in [sort_scan(&col), sort_index(&bt)] {
            assert_eq!(rows.len(), col.len());
            let keys: Vec<i64> = rows.iter().map(|&r| col[r as usize]).collect();
            assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "not sorted: {keys:?}"
            );
        }
    }

    #[test]
    fn paths_agree_up_to_duplicate_ties() {
        let (col, bt) = fixture();
        let a: Vec<i64> = sort_scan(&col).iter().map(|&r| col[r as usize]).collect();
        let b: Vec<i64> = sort_index(&bt).iter().map(|&r| col[r as usize]).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        assert!(sort_scan(&[]).is_empty());
        let bt: BPlusTree<i64> = BPlusTree::bulk_build(4, &[]);
        assert!(sort_index(&bt).is_empty());
    }
}
