//! Cost-based access-path selection.
//!
//! A thin "what-if"-style planner in the spirit of the index advisors
//! the paper builds on ([16, 50] in its bibliography): given the table
//! cardinality, a predicate and which indexes exist, pick the cheapest
//! access path from a simple cost model — scan O(n), B+Tree lookup
//! O(log n) per probe plus the matching rows, B+Tree range O(log n + k).
//! The same model prices a *hypothetical* index, which is exactly the
//! what-if estimate an index advisor feeds to the paper's tuner.

use std::fmt;

/// The predicate of a single-column query.
///
/// `Eq`/`Hash`/`Ord` are total (fields are `i64`): observed predicate
/// sets dedupe through ordered collections before candidate
/// generation, so a repeated predicate cannot inflate a composite
/// candidate's modelled gain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Predicate {
    /// `col = key`.
    Equals(i64),
    /// `lo <= col <= hi`.
    Between(i64, i64),
    /// No filter: full ordered output (`ORDER BY col`).
    OrderBy,
}

/// Which physical plan to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Full scan (plus sort for `OrderBy`).
    Scan,
    /// B+Tree probe / range / in-order traversal.
    BTree,
    /// Hash probe (equality only).
    Hash,
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPath::Scan => write!(f, "scan"),
            AccessPath::BTree => write!(f, "btree"),
            AccessPath::Hash => write!(f, "hash"),
        }
    }
}

/// Which indexes exist on the column.
#[derive(Debug, Clone, Copy, Default)]
pub struct AvailableIndexes {
    /// A B+Tree exists.
    pub btree: bool,
    /// A hash index exists.
    pub hash: bool,
}

/// Table statistics the planner consults.
#[derive(Debug, Clone, Copy)]
pub struct TableStats {
    /// Row count.
    pub rows: u64,
    /// Distinct keys (drives equality selectivity).
    pub distinct_keys: u64,
}

impl TableStats {
    /// Estimated rows matching a predicate.
    pub fn estimated_matches(&self, predicate: Predicate) -> f64 {
        match predicate {
            Predicate::Equals(_) => self.rows as f64 / self.distinct_keys.max(1) as f64,
            Predicate::Between(lo, hi) => {
                // Uniform-key assumption over the key domain [0, distinct).
                let width = (hi - lo).max(0) as f64 + 1.0;
                let frac = (width / self.distinct_keys.max(1) as f64).min(1.0);
                self.rows as f64 * frac
            }
            Predicate::OrderBy => self.rows as f64,
        }
    }
}

/// Abstract cost of a plan, in per-row work units.
pub fn cost(path: AccessPath, predicate: Predicate, stats: &TableStats) -> f64 {
    let n = stats.rows.max(1) as f64;
    let k = stats.estimated_matches(predicate);
    let log_n = n.log2().max(1.0);
    match (path, predicate) {
        (AccessPath::Scan, Predicate::OrderBy) => n * log_n, // comparison sort
        (AccessPath::Scan, _) => n,                          // full scan
        (AccessPath::BTree, Predicate::OrderBy) => n,        // in-order traversal
        (AccessPath::BTree, _) => log_n + k,                 // descend + emit
        (AccessPath::Hash, Predicate::Equals(_)) => 1.0 + k, // probe + emit
        (AccessPath::Hash, _) => f64::INFINITY,              // unusable
    }
}

/// Pick the cheapest *available* access path.
pub fn choose(predicate: Predicate, stats: &TableStats, available: AvailableIndexes) -> AccessPath {
    let mut best = (AccessPath::Scan, cost(AccessPath::Scan, predicate, stats));
    if available.btree {
        let c = cost(AccessPath::BTree, predicate, stats);
        if c < best.1 {
            best = (AccessPath::BTree, c);
        }
    }
    if available.hash {
        let c = cost(AccessPath::Hash, predicate, stats);
        if c < best.1 {
            best = (AccessPath::Hash, c);
        }
    }
    best.0
}

/// What-if estimate: the speedup a *hypothetical* index would give this
/// predicate — the quantity an index advisor hands to the paper's
/// auto-tuner as a candidate's usefulness.
pub fn what_if_speedup(kind: AccessPath, predicate: Predicate, stats: &TableStats) -> f64 {
    let with = cost(kind, predicate, stats);
    let without = cost(AccessPath::Scan, predicate, stats);
    if with.is_finite() && with > 0.0 {
        without / with
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> TableStats {
        TableStats {
            rows: 12_000_000,
            distinct_keys: 3_000_000,
        }
    }

    #[test]
    fn equality_prefers_hash_then_btree_then_scan() {
        let s = stats();
        let p = Predicate::Equals(42);
        assert_eq!(
            choose(
                p,
                &s,
                AvailableIndexes {
                    btree: true,
                    hash: true
                }
            ),
            AccessPath::Hash
        );
        assert_eq!(
            choose(
                p,
                &s,
                AvailableIndexes {
                    btree: true,
                    hash: false
                }
            ),
            AccessPath::BTree
        );
        assert_eq!(choose(p, &s, AvailableIndexes::default()), AccessPath::Scan);
    }

    #[test]
    fn hash_is_useless_for_ranges() {
        let s = stats();
        let p = Predicate::Between(0, 1000);
        assert_eq!(
            choose(
                p,
                &s,
                AvailableIndexes {
                    btree: false,
                    hash: true
                }
            ),
            AccessPath::Scan
        );
        assert_eq!(
            choose(
                p,
                &s,
                AvailableIndexes {
                    btree: true,
                    hash: true
                }
            ),
            AccessPath::BTree
        );
    }

    #[test]
    fn huge_ranges_fall_back_to_scan() {
        // Selecting ~everything: scan beats log n + k ~ n only marginally;
        // with k == n the btree costs log n more.
        let s = stats();
        let p = Predicate::Between(0, 3_000_000);
        let scan = cost(AccessPath::Scan, p, &s);
        let btree = cost(AccessPath::BTree, p, &s);
        assert!(scan < btree);
        assert_eq!(
            choose(
                p,
                &s,
                AvailableIndexes {
                    btree: true,
                    hash: false
                }
            ),
            AccessPath::Scan
        );
    }

    #[test]
    fn order_by_uses_btree_traversal() {
        let s = stats();
        assert_eq!(
            choose(
                Predicate::OrderBy,
                &s,
                AvailableIndexes {
                    btree: true,
                    hash: true
                }
            ),
            AccessPath::BTree
        );
    }

    #[test]
    fn what_if_speedups_mirror_table6_selectivity_ordering() {
        // Table 6's selectivity ordering: lookup > small range > large
        // range, straight out of the cost model. (Order-by's relative
        // position depends on scan-vs-emit row costs, which an in-memory
        // model compresses — see EXPERIMENTS.md.)
        let s = stats();
        let lookup = what_if_speedup(AccessPath::BTree, Predicate::Equals(1), &s);
        let small = what_if_speedup(AccessPath::BTree, Predicate::Between(0, 2_500), &s);
        let large = what_if_speedup(AccessPath::BTree, Predicate::Between(0, 250_000), &s);
        let order = what_if_speedup(AccessPath::BTree, Predicate::OrderBy, &s);
        assert!(lookup > small, "lookup {lookup:.0} vs small {small:.0}");
        assert!(small > large, "small {small:.0} vs large {large:.0}");
        assert!(large > 1.0);
        assert!(order > 1.0);
    }

    #[test]
    fn selectivity_estimates() {
        let s = TableStats {
            rows: 1000,
            distinct_keys: 100,
        };
        assert!((s.estimated_matches(Predicate::Equals(5)) - 10.0).abs() < 1e-9);
        assert!((s.estimated_matches(Predicate::Between(0, 9)) - 100.0).abs() < 1e-9);
        assert_eq!(s.estimated_matches(Predicate::OrderBy), 1000.0);
        // Degenerate range.
        assert!(s.estimated_matches(Predicate::Between(9, 0)) <= 10.0);
    }
}
