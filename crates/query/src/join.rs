//! Equi-join operators.
//!
//! The paper's "Join" category: nested loops, hash join, sort-merge join,
//! and the indexed variant — a merge join reading both sides from B+Trees
//! in key order, `O(n + m)` when the inputs are (index-)sorted.

use flowtune_index::BPlusTree;
use std::collections::HashMap;

/// Nested-loops equi-join: `(left_row, right_row)` for equal keys.
/// O(n·m) — the baseline the paper's complexity table implies.
pub fn nested_loop_join(left: &[i64], right: &[i64]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            if a == b {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// Hash equi-join (build on the smaller side is the caller's choice;
/// this builds on `left`).
pub fn hash_join(left: &[i64], right: &[i64]) -> Vec<(u32, u32)> {
    let mut table: HashMap<i64, Vec<u32>> = HashMap::new();
    for (i, k) in left.iter().enumerate() {
        table.entry(*k).or_default().push(i as u32);
    }
    let mut out = Vec::new();
    for (j, k) in right.iter().enumerate() {
        if let Some(ls) = table.get(k) {
            for &i in ls {
                out.push((i, j as u32));
            }
        }
    }
    out
}

/// Sort-merge join: sorts both inputs, then merges. `O(n log n + m log m)`.
pub fn sort_merge_join(left: &[i64], right: &[i64]) -> Vec<(u32, u32)> {
    let mut l: Vec<(i64, u32)> = left
        .iter()
        .enumerate()
        .map(|(i, k)| (*k, i as u32))
        .collect();
    let mut r: Vec<(i64, u32)> = right
        .iter()
        .enumerate()
        .map(|(i, k)| (*k, i as u32))
        .collect();
    l.sort_unstable();
    r.sort_unstable();
    merge_sorted(&l, &r)
}

/// Merge join over two B+Trees: both sides stream out already sorted, so
/// the join is `O(n + m)` — the indexed fast path.
pub fn index_merge_join(left: &BPlusTree<i64>, right: &BPlusTree<i64>) -> Vec<(u32, u32)> {
    let l: Vec<(i64, u32)> = left.iter().collect();
    let r: Vec<(i64, u32)> = right.iter().collect();
    merge_sorted(&l, &r)
}

/// Merge two key-sorted `(key, row)` runs, emitting the cross product of
/// each equal-key group.
fn merge_sorted(l: &[(i64, u32)], r: &[(i64, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < l.len() && j < r.len() {
        match l[i].0.cmp(&r[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let key = l[i].0;
                let i_end = i + l[i..].iter().take_while(|(k, _)| *k == key).count();
                let j_end = j + r[j..].iter().take_while(|(k, _)| *k == key).count();
                for &(_, lr) in &l[i..i_end] {
                    for &(_, rr) in &r[j..j_end] {
                        out.push((lr, rr));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;

    fn btree_of(col: &[i64]) -> BPlusTree<i64> {
        let mut pairs: Vec<(i64, u32)> = col
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, i as u32))
            .collect();
        pairs.sort_unstable();
        BPlusTree::bulk_build(4, &pairs)
    }

    fn normalize(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn simple_join() {
        let l = [1i64, 2, 3];
        let r = [2i64, 3, 4, 3];
        let expect = normalize(vec![(1, 0), (2, 1), (2, 3)]);
        assert_eq!(normalize(nested_loop_join(&l, &r)), expect);
        assert_eq!(normalize(hash_join(&l, &r)), expect);
        assert_eq!(normalize(sort_merge_join(&l, &r)), expect);
        assert_eq!(
            normalize(index_merge_join(&btree_of(&l), &btree_of(&r))),
            expect
        );
    }

    #[test]
    fn duplicate_heavy_join_is_cross_product_per_key() {
        let l = [7i64, 7];
        let r = [7i64, 7, 7];
        assert_eq!(nested_loop_join(&l, &r).len(), 6);
        assert_eq!(hash_join(&l, &r).len(), 6);
        assert_eq!(sort_merge_join(&l, &r).len(), 6);
    }

    #[test]
    fn disjoint_inputs_produce_nothing() {
        let l = [1i64, 2];
        let r = [3i64, 4];
        assert!(nested_loop_join(&l, &r).is_empty());
        assert!(index_merge_join(&btree_of(&l), &btree_of(&r)).is_empty());
    }

    #[test]
    fn empty_sides() {
        assert!(hash_join(&[], &[1]).is_empty());
        assert!(sort_merge_join(&[1], &[]).is_empty());
    }

    #[test]
    fn all_join_algorithms_agree() {
        let mut rng = SimRng::seed_from_u64(0x101);
        for _ in 0..150 {
            let nl = rng.uniform_u64(0, 60) as usize;
            let nr = rng.uniform_u64(0, 60) as usize;
            let l: Vec<i64> = (0..nl).map(|_| rng.uniform_i64(0, 20)).collect();
            let r: Vec<i64> = (0..nr).map(|_| rng.uniform_i64(0, 20)).collect();
            let expect = normalize(nested_loop_join(&l, &r));
            assert_eq!(normalize(hash_join(&l, &r)), expect.clone());
            assert_eq!(normalize(sort_merge_join(&l, &r)), expect.clone());
            assert_eq!(
                normalize(index_merge_join(&btree_of(&l), &btree_of(&r))),
                expect
            );
        }
    }
}
