//! Multi-predicate planning over composite indexes.
//!
//! Extends the single-column what-if planner (`plan.rs`) to queries
//! that constrain several columns at once. An index over columns
//! `(a, b, c)` serves a predicate set by the **leftmost-prefix rule**
//! (the ESR shape every composite B-tree obeys): consume equality
//! predicates along the index's columns left to right, then at most
//! one trailing range, and everything left over is a *residual*
//! filter applied to the rows the index emits.
//!
//! A plan is *covering* when the index columns alone can produce the
//! query's output and evaluate its residual — no base-table fetch per
//! hit. The fetch penalty is what lets a covering plan beat an
//! equally-selective non-covering one, reproducing the classic
//! index-only-scan win.

use crate::plan::{AccessPath, Predicate};
use flowtune_index::IndexKind;
use std::collections::{BTreeMap, BTreeSet};

/// A predicate bound to a named column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColPredicate {
    /// Column the predicate constrains.
    pub column: String,
    /// The constraint itself.
    pub pred: Predicate,
}

impl ColPredicate {
    /// Convenience constructor.
    pub fn new(column: impl Into<String>, pred: Predicate) -> Self {
        ColPredicate {
            column: column.into(),
            pred,
        }
    }
}

/// A normalized multi-predicate query: predicates deduped and sorted
/// (column, then predicate order), plus the columns the query must
/// output — the covering check's input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    predicates: Vec<ColPredicate>,
    output: Vec<String>,
}

impl QuerySpec {
    /// Normalize a raw predicate list: exact duplicates collapse
    /// through a `BTreeSet` (deterministic order, no hashing), so the
    /// same observed predicate arriving twice cannot double-count in
    /// selectivity or candidate gain.
    pub fn new(predicates: Vec<ColPredicate>, output: Vec<String>) -> Self {
        let dedup: BTreeSet<ColPredicate> = predicates.into_iter().collect();
        QuerySpec {
            predicates: dedup.into_iter().collect(),
            output,
        }
    }

    /// The normalized predicates, sorted by (column, predicate).
    pub fn predicates(&self) -> &[ColPredicate] {
        &self.predicates
    }

    /// Columns the query outputs.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// The predicate on `column`, if any. Normalization keeps at most
    /// one useful predicate shape per column for planning purposes;
    /// with several, the first (lowest-ordered) is the one consulted.
    pub fn on(&self, column: &str) -> Option<&Predicate> {
        self.predicates
            .iter()
            .find(|p| p.column == column)
            .map(|p| &p.pred)
    }
}

/// An index the composite planner may pick, described structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Key columns, left to right.
    pub columns: Vec<String>,
    /// Physical shape.
    pub kind: IndexKind,
}

impl IndexDef {
    /// A B+Tree index over `columns`.
    pub fn btree(columns: &[&str]) -> Self {
        IndexDef {
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            kind: IndexKind::BTree,
        }
    }

    /// A hash index over `columns`.
    pub fn hash(columns: &[&str]) -> Self {
        IndexDef {
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            kind: IndexKind::Hash,
        }
    }
}

/// How much of a query one index can absorb under the leftmost-prefix
/// rule.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixMatch {
    /// Equality predicates consumed, one per leading index column.
    pub eq_cols: Vec<String>,
    /// The single trailing range consumed, if any.
    pub range: Option<ColPredicate>,
    /// Predicates the index cannot absorb; applied as a residual
    /// filter on emitted rows.
    pub residual: Vec<ColPredicate>,
}

impl PrefixMatch {
    /// True when the index absorbs nothing — a probe through it would
    /// be a full traversal, never cheaper than the scan it replaces.
    pub fn is_empty(&self) -> bool {
        self.eq_cols.is_empty() && self.range.is_none()
    }
}

/// Apply the leftmost-prefix rule: walk the index's columns left to
/// right, consuming an equality per column, then at most one range;
/// the first column with no usable predicate stops the walk.
///
/// Hash indexes have no key order, so they match only when *every*
/// index column gets an equality — a partial hash prefix addresses no
/// bucket.
pub fn prefix_match(index: &IndexDef, query: &QuerySpec) -> PrefixMatch {
    let mut eq_cols = Vec::new();
    let mut range = None;
    for col in &index.columns {
        match query.on(col) {
            Some(Predicate::Equals(_)) => eq_cols.push(col.clone()),
            Some(p @ (Predicate::Between(_, _) | Predicate::OrderBy))
                if index.kind == IndexKind::BTree =>
            {
                range = Some(ColPredicate::new(col.clone(), *p));
                break;
            }
            _ => break,
        }
    }
    if index.kind == IndexKind::Hash && eq_cols.len() != index.columns.len() {
        // Partial-prefix hash probes are impossible; nothing consumed.
        eq_cols.clear();
    }
    let consumed: BTreeSet<&String> = eq_cols
        .iter()
        .chain(range.iter().map(|r| &r.column))
        .collect();
    let residual = query
        .predicates()
        .iter()
        .filter(|p| !consumed.contains(&p.column))
        .cloned()
        .collect();
    PrefixMatch {
        eq_cols,
        range,
        residual,
    }
}

/// Per-column statistics for multi-predicate selectivity estimates.
#[derive(Debug, Clone)]
pub struct CompositeStats {
    /// Table row count.
    pub rows: u64,
    /// Distinct values per column (uniform-domain assumption, as in
    /// [`crate::plan::TableStats`]).
    pub distinct: BTreeMap<String, u64>,
}

impl CompositeStats {
    /// Selectivity of one predicate in `[0, 1]`, under the same
    /// uniform-key model the single-column planner uses.
    pub fn selectivity(&self, p: &ColPredicate) -> f64 {
        let d = self.distinct.get(&p.column).copied().unwrap_or(1).max(1) as f64;
        match p.pred {
            Predicate::Equals(_) => 1.0 / d,
            Predicate::Between(lo, hi) => (((hi - lo).max(0) as f64 + 1.0) / d).min(1.0),
            Predicate::OrderBy => 1.0,
        }
    }

    /// Estimated rows surviving all of `preds` (independence
    /// assumption across columns).
    pub fn estimated_matches<'a>(&self, preds: impl IntoIterator<Item = &'a ColPredicate>) -> f64 {
        let frac: f64 = preds.into_iter().map(|p| self.selectivity(p)).product();
        self.rows as f64 * frac
    }
}

/// Extra per-row work units a base-table fetch adds over emitting
/// straight from the index — the margin covering plans win by.
pub const FETCH_PENALTY: f64 = 4.0;

/// One costed candidate plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositePlan {
    /// Physical access path.
    pub path: AccessPath,
    /// Ordinal of the chosen index in the planner's input, `None` for
    /// the scan plan.
    pub index: Option<usize>,
    /// Whether the plan is index-only (no base-table fetches).
    pub covering: bool,
    /// Modelled work units (abstract rows touched, not money or time —
    /// hence no `flowtune-common` newtype).
    pub work: f64,
}

/// Cost one index for one query; `None` when the index serves nothing.
pub fn cost_with_index(
    index: &IndexDef,
    query: &QuerySpec,
    stats: &CompositeStats,
) -> Option<(PrefixMatch, bool, f64)> {
    let m = prefix_match(index, query);
    if m.is_empty() {
        return None;
    }
    let n = stats.rows.max(1) as f64;
    let log_n = n.log2().max(1.0);
    // Rows the index emits: only the consumed prefix narrows the scan.
    let consumed: Vec<ColPredicate> = m
        .eq_cols
        .iter()
        .map(|c| {
            #[allow(clippy::expect_used)]
            // flowtune-allow(panic-hygiene): eq_cols came from query.on(), the predicate exists
            let p = query.on(c).expect("consumed column has a predicate");
            ColPredicate::new(c.clone(), *p)
        })
        .chain(m.range.clone())
        .collect();
    let k_index = stats.estimated_matches(consumed.iter());
    let index_cols: BTreeSet<&String> = index.columns.iter().collect();
    let covering = index.kind == IndexKind::BTree
        && query.output().iter().all(|c| index_cols.contains(c))
        && m.residual.iter().all(|p| index_cols.contains(&p.column));
    let descend = match index.kind {
        IndexKind::BTree => log_n,
        IndexKind::Hash => 1.0,
    };
    let per_row = if covering { 1.0 } else { 1.0 + FETCH_PENALTY };
    Some((m, covering, descend + k_index * per_row))
}

/// Pick the cheapest plan for `query` among a full scan and every
/// index in `indexes`. Ties go to the earliest index, then to the
/// scan — deterministic for a fixed input order.
pub fn choose_composite(
    query: &QuerySpec,
    stats: &CompositeStats,
    indexes: &[IndexDef],
) -> CompositePlan {
    let n = stats.rows.max(1) as f64;
    let mut best = CompositePlan {
        path: AccessPath::Scan,
        index: None,
        covering: false,
        work: n,
    };
    for (i, def) in indexes.iter().enumerate() {
        if let Some((_, covering, cost)) = cost_with_index(def, query, stats) {
            if cost < best.work {
                best = CompositePlan {
                    path: match def.kind {
                        IndexKind::BTree => AccessPath::BTree,
                        IndexKind::Hash => AccessPath::Hash,
                    },
                    index: Some(i),
                    covering,
                    work: cost,
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> CompositeStats {
        CompositeStats {
            rows: 1_000_000,
            distinct: [
                ("quantity".to_owned(), 50),
                ("linenumber".to_owned(), 7),
                ("shipdate".to_owned(), 2500),
            ]
            .into_iter()
            .collect(),
        }
    }

    fn eq(col: &str, v: i64) -> ColPredicate {
        ColPredicate::new(col, Predicate::Equals(v))
    }

    fn between(col: &str, lo: i64, hi: i64) -> ColPredicate {
        ColPredicate::new(col, Predicate::Between(lo, hi))
    }

    #[test]
    fn query_spec_dedupes_deterministically() {
        let q = QuerySpec::new(vec![eq("b", 1), eq("a", 2), eq("b", 1), eq("a", 2)], vec![]);
        assert_eq!(q.predicates(), &[eq("a", 2), eq("b", 1)]);
    }

    #[test]
    fn leftmost_prefix_consumes_eq_then_one_range() {
        let idx = IndexDef::btree(&["quantity", "linenumber", "shipdate"]);
        let q = QuerySpec::new(
            vec![
                eq("quantity", 10),
                eq("linenumber", 3),
                between("shipdate", 0, 99),
            ],
            vec![],
        );
        let m = prefix_match(&idx, &q);
        assert_eq!(m.eq_cols, ["quantity", "linenumber"]);
        assert_eq!(m.range, Some(between("shipdate", 0, 99)));
        assert!(m.residual.is_empty());
    }

    #[test]
    fn gap_in_prefix_stops_the_walk() {
        // Predicates on (quantity, shipdate) against index
        // (quantity, linenumber, shipdate): the missing linenumber
        // equality leaves shipdate as residual — the leftmost rule.
        let idx = IndexDef::btree(&["quantity", "linenumber", "shipdate"]);
        let q = QuerySpec::new(vec![eq("quantity", 10), between("shipdate", 0, 99)], vec![]);
        let m = prefix_match(&idx, &q);
        assert_eq!(m.eq_cols, ["quantity"]);
        assert_eq!(m.range, None);
        assert_eq!(m.residual, vec![between("shipdate", 0, 99)]);
    }

    #[test]
    fn bare_range_on_second_column_matches_nothing() {
        let idx = IndexDef::btree(&["quantity", "shipdate"]);
        let q = QuerySpec::new(vec![between("shipdate", 0, 99)], vec![]);
        assert!(prefix_match(&idx, &q).is_empty());
    }

    #[test]
    fn hash_needs_full_key_equality() {
        let idx = IndexDef::hash(&["quantity", "linenumber"]);
        let full = QuerySpec::new(vec![eq("quantity", 1), eq("linenumber", 2)], vec![]);
        assert_eq!(prefix_match(&idx, &full).eq_cols.len(), 2);
        let partial = QuerySpec::new(vec![eq("quantity", 1)], vec![]);
        assert!(prefix_match(&idx, &partial).is_empty());
        let ranged = QuerySpec::new(vec![eq("quantity", 1), between("linenumber", 1, 3)], vec![]);
        assert!(prefix_match(&idx, &ranged).is_empty());
    }

    #[test]
    fn between_with_only_hash_available_falls_back_to_scan() {
        // The satellite regression: a range predicate cannot use a
        // hash index, whatever its arity — the planner must scan.
        let q = QuerySpec::new(vec![between("shipdate", 0, 99)], vec![]);
        let plan = choose_composite(&q, &stats(), &[IndexDef::hash(&["shipdate"])]);
        assert_eq!(plan.path, AccessPath::Scan);
        assert_eq!(plan.index, None);
    }

    #[test]
    fn composite_beats_single_on_multi_predicate() {
        let q = QuerySpec::new(
            vec![eq("quantity", 10), between("shipdate", 0, 99)],
            vec!["quantity".to_owned(), "shipdate".to_owned()],
        );
        let singles = [
            IndexDef::btree(&["quantity"]),
            IndexDef::btree(&["shipdate"]),
        ];
        let composite = [IndexDef::btree(&["quantity", "shipdate"])];
        let s = stats();
        let best_single = choose_composite(&q, &s, &singles);
        let best_composite = choose_composite(&q, &s, &composite);
        assert!(best_composite.work < best_single.work);
        assert!(best_composite.covering, "output is the index's columns");
    }

    #[test]
    fn covering_beats_fetching_at_equal_selectivity() {
        let s = stats();
        let idx = IndexDef::btree(&["quantity", "shipdate"]);
        let covered = QuerySpec::new(
            vec![eq("quantity", 10), between("shipdate", 0, 99)],
            vec!["shipdate".to_owned()],
        );
        let fetching = QuerySpec::new(
            vec![eq("quantity", 10), between("shipdate", 0, 99)],
            vec!["linenumber".to_owned()],
        );
        let (_, cov, cost_cov) = cost_with_index(&idx, &covered, &s).unwrap();
        let (_, fetch, cost_fetch) = cost_with_index(&idx, &fetching, &s).unwrap();
        assert!(cov && !fetch);
        assert!(cost_cov < cost_fetch);
    }

    #[test]
    fn selectivities_multiply_across_columns() {
        let s = stats();
        let k = s.estimated_matches([eq("quantity", 1), eq("linenumber", 2)].iter());
        assert!((k - 1_000_000.0 / 50.0 / 7.0).abs() < 1e-6);
        // Unknown column: selectivity 1 (no narrowing claimed).
        let k = s.estimated_matches([eq("mystery", 1)].iter());
        assert!((k - 1_000_000.0).abs() < 1e-6);
    }
}
