//! Grouping operators.
//!
//! The paper's "Grouping" category: grouping is "efficiently performed
//! using sorting". The no-index path sorts first; the indexed path reads
//! keys already ordered from the B+Tree; a hash-aggregation path is
//! included for comparison.

use flowtune_index::BPlusTree;
use std::collections::HashMap;

/// Group counts via sorting: `(key, count)` in key order.
pub fn group_count_sort(col: &[i64]) -> Vec<(i64, u64)> {
    let mut keys: Vec<i64> = col.to_vec();
    keys.sort_unstable();
    run_lengths(keys.into_iter())
}

/// Group counts via B+Tree in-order traversal: `(key, count)` in key
/// order, O(n) with no sort.
pub fn group_count_index(index: &BPlusTree<i64>) -> Vec<(i64, u64)> {
    run_lengths(index.iter().map(|(k, _)| k))
}

/// Group counts via hash aggregation, then sorted by key for a
/// deterministic result.
pub fn group_count_hash(col: &[i64]) -> Vec<(i64, u64)> {
    let mut counts: HashMap<i64, u64> = HashMap::new();
    for &k in col {
        *counts.entry(k).or_insert(0) += 1;
    }
    let mut out: Vec<(i64, u64)> = counts.into_iter().collect();
    out.sort_unstable();
    out
}

/// Collapse an ordered key stream into `(key, run length)` pairs.
fn run_lengths(keys: impl Iterator<Item = i64>) -> Vec<(i64, u64)> {
    let mut out: Vec<(i64, u64)> = Vec::new();
    for k in keys {
        match out.last_mut() {
            Some((prev, n)) if *prev == k => *n += 1,
            _ => out.push((k, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;

    fn btree_of(col: &[i64]) -> BPlusTree<i64> {
        let mut pairs: Vec<(i64, u32)> = col
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, i as u32))
            .collect();
        pairs.sort_unstable();
        BPlusTree::bulk_build(4, &pairs)
    }

    #[test]
    fn known_groups() {
        let col = [3i64, 1, 3, 2, 3, 1];
        let expect = vec![(1, 2), (2, 1), (3, 3)];
        assert_eq!(group_count_sort(&col), expect);
        assert_eq!(group_count_hash(&col), expect);
        assert_eq!(group_count_index(&btree_of(&col)), expect);
    }

    #[test]
    fn empty_input() {
        assert!(group_count_sort(&[]).is_empty());
        assert!(group_count_hash(&[]).is_empty());
    }

    #[test]
    fn all_paths_agree() {
        let mut rng = SimRng::seed_from_u64(0x6E0);
        for _ in 0..150 {
            let n = rng.uniform_u64(0, 300) as usize;
            let col: Vec<i64> = (0..n).map(|_| rng.uniform_i64(-50, 50)).collect();
            let a = group_count_sort(&col);
            let b = group_count_hash(&col);
            let c = group_count_index(&btree_of(&col));
            assert_eq!(&a, &b);
            assert_eq!(&a, &c);
            // Counts sum to input length.
            assert_eq!(a.iter().map(|(_, n)| n).sum::<u64>(), col.len() as u64);
        }
    }
}
