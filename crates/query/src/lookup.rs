//! Lookup and range-select operators.
//!
//! The no-index paths are O(n) full scans; the indexed paths are
//! O(log n) (B+Tree) or O(1) (hash) — the complexities the paper cites
//! for its "Lookup" and "Range select" operator categories.

use flowtune_index::{BPlusTree, HashIndex};

/// Full-scan equality lookup: all row ids where `col[row] == key`.
pub fn scan_eq(col: &[i64], key: i64) -> Vec<u32> {
    col.iter()
        .enumerate()
        .filter(|(_, v)| **v == key)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Full-scan range select: all row ids where `lo <= col[row] <= hi`.
pub fn scan_range(col: &[i64], lo: i64, hi: i64) -> Vec<u32> {
    col.iter()
        .enumerate()
        .filter(|(_, v)| (lo..=hi).contains(*v))
        .map(|(i, _)| i as u32)
        .collect()
}

/// B+Tree equality lookup.
pub fn btree_eq(index: &BPlusTree<i64>, key: i64) -> Vec<u32> {
    index.get(&key).collect()
}

/// Hash-index equality lookup.
pub fn hash_eq(index: &HashIndex<i64>, key: i64) -> Vec<u32> {
    index.get(&key).collect()
}

/// B+Tree range select: row ids with `lo <= key <= hi`, in key order.
pub fn btree_range(index: &BPlusTree<i64>, lo: i64, hi: i64) -> Vec<u32> {
    index.range(lo, hi).map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Vec<i64>, BPlusTree<i64>, HashIndex<i64>) {
        let col: Vec<i64> = vec![5, 3, 9, 3, 7, 1, 3, 9, 0, 4];
        let mut pairs: Vec<(i64, u32)> = col
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, i as u32))
            .collect();
        pairs.sort_unstable();
        let bt = BPlusTree::bulk_build(4, &pairs);
        let hash = HashIndex::build(col.iter().enumerate().map(|(i, k)| (*k, i as u32)));
        (col, bt, hash)
    }

    #[test]
    fn all_lookup_paths_agree() {
        let (col, bt, hash) = fixture();
        for key in -1..11 {
            let mut a = scan_eq(&col, key);
            let mut b = btree_eq(&bt, key);
            let mut c = hash_eq(&hash, key);
            a.sort_unstable();
            b.sort_unstable();
            c.sort_unstable();
            assert_eq!(a, b, "btree disagrees at {key}");
            assert_eq!(a, c, "hash disagrees at {key}");
        }
    }

    #[test]
    fn range_paths_agree() {
        let (col, bt, _) = fixture();
        for lo in -1..11 {
            for hi in lo..11 {
                let mut a = scan_range(&col, lo, hi);
                let mut b = btree_range(&bt, lo, hi);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "range [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn empty_results() {
        let (col, bt, hash) = fixture();
        assert!(scan_eq(&col, 42).is_empty());
        assert!(btree_eq(&bt, 42).is_empty());
        assert!(hash_eq(&hash, 42).is_empty());
        assert!(btree_range(&bt, 100, 200).is_empty());
    }

    #[test]
    fn btree_range_is_key_ordered() {
        let (col, bt, _) = fixture();
        let rows = btree_range(&bt, 0, 9);
        let keys: Vec<i64> = rows.iter().map(|&r| col[r as usize]).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(rows.len(), col.len());
    }
}
