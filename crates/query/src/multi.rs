//! Executors for multi-predicate queries: the full-scan baseline and
//! composite-index prefix scans, both with deterministic work
//! accounting.
//!
//! The planner (`composite.rs`) *models* costs; these executors
//! *measure* them, in two currencies: wall time (the experiment
//! binaries time them) and touched-row counts ([`ExecCounts`]), which
//! are exactly reproducible and therefore what golden tests pin. The
//! counts mirror the cost model's terms — rows scanned, index entries
//! emitted, base-table fetches — so a modelled win and a measured win
//! can be compared line by line.

use crate::composite::{prefix_match, IndexDef, QuerySpec};
use crate::plan::Predicate;
use flowtune_index::{BPlusTree, TupleKey};
use std::collections::BTreeSet;

/// A small column-store table: named `i64` columns of equal length.
#[derive(Debug, Clone)]
pub struct MultiTable {
    columns: Vec<(String, Vec<i64>)>,
    rows: usize,
}

impl MultiTable {
    /// Build from named columns; all must have the same length.
    pub fn new(columns: Vec<(String, Vec<i64>)>) -> Self {
        let rows = columns.first().map_or(0, |(_, v)| v.len());
        assert!(
            columns.iter().all(|(_, v)| v.len() == rows),
            "all columns must have equal length"
        );
        MultiTable { columns, rows }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// A column's values by name.
    pub fn column(&self, name: &str) -> Option<&[i64]> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    fn value(&self, column: &str, row: u32) -> Option<i64> {
        self.column(column).map(|c| c[row as usize])
    }
}

/// Deterministic work counters for one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounts {
    /// Base-table rows examined by a scan.
    pub scanned: u64,
    /// Index entries emitted by a prefix range scan.
    pub index_entries: u64,
    /// Base-table row fetches (zero for covering plans).
    pub fetches: u64,
}

impl ExecCounts {
    /// Total row touches — the scalar the speedup matrix compares.
    pub fn touched(&self) -> u64 {
        self.scanned + self.index_entries + self.fetches
    }
}

/// Result rows plus the work it took to produce them.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Matching row ids.
    pub rows: Vec<u32>,
    /// Work counters.
    pub counts: ExecCounts,
}

fn satisfies(pred: &Predicate, v: i64) -> bool {
    match pred {
        Predicate::Equals(k) => v == *k,
        Predicate::Between(lo, hi) => (*lo..=*hi).contains(&v),
        Predicate::OrderBy => true,
    }
}

/// Full-scan baseline: test every predicate against every row.
pub fn scan_multi(table: &MultiTable, query: &QuerySpec) -> ExecResult {
    let preds: Vec<(&[i64], &Predicate)> = query
        .predicates()
        .iter()
        .filter_map(|p| table.column(&p.column).map(|c| (c, &p.pred)))
        .collect();
    let rows = (0..table.rows() as u32)
        .filter(|&r| preds.iter().all(|(c, p)| satisfies(p, c[r as usize])))
        .collect();
    ExecResult {
        rows,
        counts: ExecCounts {
            scanned: table.rows() as u64,
            ..ExecCounts::default()
        },
    }
}

/// Bulk-build a composite B+Tree over the named columns of `table`,
/// keys in column-list order.
///
/// Panics if a column is missing — index definitions come from the
/// catalog, which only names real columns.
pub fn build_composite(
    table: &MultiTable,
    columns: &[String],
    order: usize,
) -> BPlusTree<TupleKey> {
    let cols: Vec<&[i64]> = columns
        .iter()
        .map(|c| {
            #[allow(clippy::expect_used)]
            // flowtune-allow(panic-hygiene): catalog-declared index columns exist in the table by construction
            table.column(c).expect("index column exists in table")
        })
        .collect();
    let mut pairs: Vec<(TupleKey, u32)> = (0..table.rows() as u32)
        .map(|r| {
            let vals: Vec<i64> = cols.iter().map(|c| c[r as usize]).collect();
            (TupleKey::vals(&vals), r)
        })
        .collect();
    pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    BPlusTree::bulk_build(order, &pairs)
}

/// Execute `query` through a composite index: derive the leftmost
/// prefix, scan the matching key range, evaluate residual predicates
/// from the key when possible and the base table otherwise.
///
/// Returns `None` when the index serves no prefix of the query (the
/// planner would never have picked it).
pub fn composite_select(
    tree: &BPlusTree<TupleKey>,
    index: &IndexDef,
    query: &QuerySpec,
    table: &MultiTable,
) -> Option<ExecResult> {
    let m = prefix_match(index, query);
    if m.is_empty() {
        return None;
    }
    let arity = index.columns.len();
    let prefix: Vec<i64> = m
        .eq_cols
        .iter()
        .map(|c| match query.on(c) {
            Some(Predicate::Equals(v)) => *v,
            _ => unreachable!("eq prefix columns carry equality predicates"),
        })
        .collect();
    let (lo, hi) = match m.range.as_ref().map(|r| r.pred) {
        Some(Predicate::Between(lo, hi)) => (
            TupleKey::range_lo(&prefix, lo, arity),
            TupleKey::range_hi(&prefix, hi, arity),
        ),
        // OrderBy consumes the column for ordering, not narrowing —
        // and an empty prefix degenerates to the full key domain.
        Some(Predicate::OrderBy | Predicate::Equals(_)) | None => (
            TupleKey::prefix_lo(&prefix, arity),
            TupleKey::prefix_hi(&prefix, arity),
        ),
    };
    let index_cols: BTreeSet<&String> = index.columns.iter().collect();
    let covering = query.output().iter().all(|c| index_cols.contains(c))
        && m.residual.iter().all(|p| index_cols.contains(&p.column));
    let col_pos = |name: &String| index.columns.iter().position(|c| c == name);

    let mut rows = Vec::new();
    let mut counts = ExecCounts::default();
    for (key, row) in tree.range(lo, hi) {
        counts.index_entries += 1;
        if !covering {
            counts.fetches += 1;
        }
        let ok = m.residual.iter().all(|p| {
            let v = col_pos(&p.column)
                .and_then(|i| key.component(i))
                .or_else(|| table.value(&p.column, row));
            #[allow(clippy::expect_used)]
            // flowtune-allow(panic-hygiene): residual columns exist in the table or the key
            let v = v.expect("residual column resolvable");
            satisfies(&p.pred, v)
        });
        if ok {
            rows.push(row);
        }
    }
    Some(ExecResult { rows, counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::ColPredicate;
    use flowtune_common::SimRng;

    fn table(seed: u64, n: usize) -> MultiTable {
        let mut rng = SimRng::seed_from_u64(seed);
        let a: Vec<i64> = (0..n).map(|_| rng.uniform_i64(0, 8)).collect();
        let b: Vec<i64> = (0..n).map(|_| rng.uniform_i64(0, 5)).collect();
        let c: Vec<i64> = (0..n).map(|_| rng.uniform_i64(0, 100)).collect();
        MultiTable::new(vec![
            ("a".to_owned(), a),
            ("b".to_owned(), b),
            ("c".to_owned(), c),
        ])
    }

    fn eq(col: &str, v: i64) -> ColPredicate {
        ColPredicate::new(col, Predicate::Equals(v))
    }

    fn between(col: &str, lo: i64, hi: i64) -> ColPredicate {
        ColPredicate::new(col, Predicate::Between(lo, hi))
    }

    #[test]
    fn composite_select_matches_scan_across_query_shapes() {
        let t = table(0xD1, 4000);
        let idx = IndexDef::btree(&["a", "b", "c"]);
        let tree = build_composite(&t, &idx.columns, 16);
        let queries = [
            QuerySpec::new(vec![eq("a", 3)], vec![]),
            QuerySpec::new(vec![eq("a", 3), eq("b", 2)], vec![]),
            QuerySpec::new(vec![eq("a", 3), eq("b", 2), between("c", 10, 60)], vec![]),
            // Residual: b skipped, c filtered post-scan.
            QuerySpec::new(vec![eq("a", 3), between("c", 10, 60)], vec![]),
            QuerySpec::new(vec![eq("a", 0), between("b", 0, 2)], vec![]),
        ];
        for q in &queries {
            let via_scan = scan_multi(&t, q);
            let via_index = composite_select(&tree, &idx, q, &t).unwrap();
            let mut a = via_scan.rows.clone();
            let mut b = via_index.rows.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q:?}");
            assert_eq!(via_scan.counts.scanned, 4000);
            assert!(via_index.counts.index_entries <= 4000);
        }
    }

    #[test]
    fn covering_scan_does_no_fetches() {
        let t = table(0xD2, 1000);
        let idx = IndexDef::btree(&["a", "c"]);
        let tree = build_composite(&t, &idx.columns, 16);
        let covered = QuerySpec::new(vec![eq("a", 1), between("c", 0, 50)], vec!["c".to_owned()]);
        let r = composite_select(&tree, &idx, &covered, &t).unwrap();
        assert_eq!(r.counts.fetches, 0, "covering plan fetches nothing");
        assert!(r.counts.index_entries > 0);
        let fetching = QuerySpec::new(vec![eq("a", 1), between("c", 0, 50)], vec!["b".to_owned()]);
        let r = composite_select(&tree, &idx, &fetching, &t).unwrap();
        assert_eq!(r.counts.fetches, r.counts.index_entries);
    }

    #[test]
    fn unusable_index_returns_none() {
        let t = table(0xD3, 100);
        let idx = IndexDef::btree(&["a", "b"]);
        let tree = build_composite(&t, &idx.columns, 8);
        let q = QuerySpec::new(vec![between("c", 0, 10)], vec![]);
        assert!(composite_select(&tree, &idx, &q, &t).is_none());
    }

    #[test]
    fn residual_filter_resolves_from_key_when_covered() {
        // Residual on a *later* index column (gap in the prefix): the
        // value comes from the key itself, so even with no relevant
        // table column... the table has it here, but fetches stay 0
        // because the plan is covering.
        let t = table(0xD4, 2000);
        let idx = IndexDef::btree(&["a", "b", "c"]);
        let tree = build_composite(&t, &idx.columns, 16);
        let q = QuerySpec::new(vec![eq("a", 2), between("c", 20, 40)], vec!["a".to_owned()]);
        let r = composite_select(&tree, &idx, &q, &t).unwrap();
        assert_eq!(r.counts.fetches, 0);
        let mut want = scan_multi(&t, &q).rows;
        let mut got = r.rows.clone();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn touched_counts_favor_the_composite() {
        let t = table(0xD5, 8000);
        let q = QuerySpec::new(vec![eq("a", 3), between("c", 10, 30)], vec![]);
        let single = IndexDef::btree(&["a"]);
        let comp = IndexDef::btree(&["a", "c"]);
        let t_single = build_composite(&t, &single.columns, 16);
        let t_comp = build_composite(&t, &comp.columns, 16);
        let r_single = composite_select(&t_single, &single, &q, &t).unwrap();
        let r_comp = composite_select(&t_comp, &comp, &q, &t).unwrap();
        assert!(
            r_comp.counts.touched() < r_single.counts.touched(),
            "composite {} vs single {}",
            r_comp.counts.touched(),
            r_single.counts.touched()
        );
    }
}
