//! Table 6 reproduction: measured index speedups.
//!
//! The paper runs four SQL queries over `lineitem.orderkey` with and
//! without a B+Tree index:
//!
//! | Query               | No-Index | Index    | Speedup |
//! |---------------------|----------|----------|---------|
//! | Order by            | 44.730 s | 6.010 s  | 7.44×   |
//! | Select range (large)| 5.103 s  | 0.054 s  | 94.44×  |
//! | Select range (small)| 4.921 s  | 0.016 s  | 307.50× |
//! | Lookup              | 4.393 s  | 0.007 s  | 627.14× |
//!
//! This module measures the same four query classes over the synthetic
//! `lineitem`. Absolute times differ (different hardware and engine), but
//! the *ordering* (lookup ≫ small range ≫ large range ≫ order-by) and the
//! orders of magnitude reproduce.

use std::time::Duration;

use flowtune_index::BPlusTree;
use flowtune_storage::{LineitemGenerator, LineitemParams};

use crate::lookup::{btree_eq, btree_range, scan_eq, scan_range};
use crate::sort::{sort_index, sort_scan};
use crate::timer::time_median;

/// One measured row of Table 6.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Query-class name as the paper prints it.
    pub query: &'static str,
    /// Median wall time without an index.
    pub no_index: Duration,
    /// Median wall time with the B+Tree index.
    pub with_index: Duration,
}

impl SpeedupRow {
    /// The speedup factor (no-index time / indexed time).
    pub fn speedup(&self) -> f64 {
        self.no_index.as_secs_f64() / self.with_index.as_secs_f64().max(1e-9)
    }
}

/// Measure the four Table 6 query classes over a synthetic `lineitem`
/// of `rows` rows; `runs` repetitions per measurement (median taken).
///
/// Selectivities mirror the paper at SF 2 (12 M rows, orderkeys to
/// ~3 M): the large range covers 1/12 of the key domain, the small range
/// 1/1200, the lookup a single key.
pub fn measure_table6(rows: usize, seed: u64, runs: usize) -> Vec<SpeedupRow> {
    let gen = LineitemGenerator::new(LineitemParams {
        rows,
        seed,
        lines_per_order: 4,
    });
    let data = gen.generate_columns(&["orderkey"]);
    #[allow(clippy::expect_used)]
    // flowtune-allow(panic-hygiene): the lineitem schema types orderkey as i64
    let col = data.column(0).as_i64().expect("orderkey is i64").to_vec();

    let mut pairs: Vec<(i64, u32)> = col
        .iter()
        .enumerate()
        .map(|(i, k)| (*k, i as u32))
        .collect();
    pairs.sort_unstable();
    // Pack nodes to the 4 KiB page: an i64 leaf holds 6 + 12·order
    // payload bytes, so order 256 fills the page instead of leaving it
    // ~80% empty at the default order — fewer page loads per scan.
    let index = BPlusTree::bulk_build(256, &pairs);

    #[allow(clippy::expect_used)]
    // flowtune-allow(panic-hygiene): rows >= 1 is the documented contract of measure_table6
    let max_key = *col.iter().max().expect("non-empty table");
    let large = (max_key / 12, max_key / 6);
    let small_width = (max_key / 1200).max(1);
    let small = (max_key / 120, max_key / 120 + small_width);
    let probe = max_key / 12;

    vec![
        SpeedupRow {
            query: "Order by",
            no_index: time_median(runs, || sort_scan(&col).len()),
            with_index: time_median(runs, || sort_index(&index).len()),
        },
        SpeedupRow {
            query: "Select range (large)",
            no_index: time_median(runs, || scan_range(&col, large.0, large.1).len()),
            with_index: time_median(runs, || btree_range(&index, large.0, large.1).len()),
        },
        SpeedupRow {
            query: "Select range (small)",
            no_index: time_median(runs, || scan_range(&col, small.0, small.1).len()),
            with_index: time_median(runs, || btree_range(&index, small.0, small.1).len()),
        },
        SpeedupRow {
            query: "Lookup",
            no_index: time_median(runs, || scan_eq(&col, probe).len()),
            with_index: time_median(runs, || btree_eq(&index, probe).len()),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_complete_and_labelled() {
        let rows = measure_table6(20_000, 1, 1);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].query, "Order by");
        assert_eq!(rows[3].query, "Lookup");
    }

    #[test]
    fn indexed_paths_win_at_scale() {
        // Even at a modest 200k rows the indexed range/lookup paths must
        // already beat full scans, and lookup must beat the large range.
        let rows = measure_table6(200_000, 2, 3);
        let by_name = |n: &str| rows.iter().find(|r| r.query == n).unwrap();
        assert!(
            by_name("Select range (small)").speedup() > 1.0,
            "small-range speedup {}",
            by_name("Select range (small)").speedup()
        );
        assert!(
            by_name("Lookup").speedup() > 1.0,
            "lookup speedup {}",
            by_name("Lookup").speedup()
        );
    }
}
