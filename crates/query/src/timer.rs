//! Wall-clock measurement helpers for the speedup experiments.

use std::time::{Duration, Instant};

/// Time one execution of `f`, returning its result and the elapsed wall
/// time. The result passes through [`std::hint::black_box`] so the work
/// cannot be optimised away.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = std::hint::black_box(f());
    (out, start.elapsed())
}

/// Run `f` `runs` times and return the median elapsed time (robust to a
/// cold first run).
pub fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(runs > 0, "need at least one run");
    let mut times: Vec<Duration> = (0..runs).map(|_| time_once(&mut f).1).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_result_and_positive_time() {
        let (out, t) = time_once(|| (0..10_000u64).sum::<u64>());
        assert_eq!(out, 49_995_000);
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn median_is_one_of_the_samples() {
        let t = time_median(5, || std::hint::black_box(1 + 1));
        assert!(t.as_nanos() < 1_000_000_000);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let _ = time_median(0, || ());
    }
}
