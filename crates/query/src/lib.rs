//! # flowtune-query
//!
//! Physical query operators executed against real data, with and without
//! indexes. The paper grounds its index-speedup model in four measured
//! query classes on TPC-H `lineitem` (Table 6: order-by 7.44×, large
//! range 94×, small range 307×, lookup 627×); this crate reproduces those
//! measurements on the synthetic `lineitem` of `flowtune-storage` and the
//! B+Tree/hash indexes of `flowtune-index`.
//!
//! The five operator categories of the paper's §1 are covered:
//!
//! | Category     | No-index path              | Indexed path                  |
//! |--------------|----------------------------|-------------------------------|
//! | Lookup       | full scan                  | B+Tree / hash probe           |
//! | Range select | full scan with predicate   | B+Tree range scan             |
//! | Sorting      | comparison argsort         | B+Tree in-order traversal     |
//! | Grouping     | sort-based grouping        | B+Tree ordered grouping       |
//! | Join         | nested loops / sort-merge  | merge join over two B+Trees   |

//!
//! Multi-predicate queries ride on composite indexes: `composite`
//! plans them (leftmost-prefix rule, covering detection), `multi`
//! executes them with deterministic touched-row accounting.

pub mod composite;
pub mod group;
pub mod join;
pub mod lookup;
pub mod multi;
pub mod plan;
pub mod sort;
pub mod table6;
pub mod timer;

pub use composite::{
    choose_composite, prefix_match, ColPredicate, CompositePlan, CompositeStats, IndexDef,
    QuerySpec,
};
pub use multi::{
    build_composite, composite_select, scan_multi, ExecCounts, ExecResult, MultiTable,
};
pub use plan::{choose, what_if_speedup, AccessPath, AvailableIndexes, Predicate, TableStats};
pub use table6::{measure_table6, SpeedupRow};
