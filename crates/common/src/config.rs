//! Configuration for the cloud model, the tuner and the experiments.
//!
//! Defaults reproduce Table 3 of the paper.

use crate::money::Money;
use crate::time::SimDuration;

/// Cloud provider model: container capacity and pricing.
///
/// Containers are homogeneous (one CPU, one disk), as the paper assumes.
/// Pricing is pluggable: the scheduler and tuner only ever read
/// `vm_price_per_quantum` and `storage_price_per_mb_quantum`, so a
/// different provider model is a matter of constructing a different
/// `CloudConfig`.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudConfig {
    /// Billing quantum `Q` (default 60 s).
    pub quantum: SimDuration,
    /// Price `Mc` of one container for one quantum (default $0.1).
    pub vm_price_per_quantum: Money,
    /// Price `Mst` of storing one MB for one quantum (default $1e-4).
    pub storage_price_per_mb_quantum: Money,
    /// Maximum number of containers the service may lease (default 100).
    pub max_containers: u32,
    /// Capacity of each container's local disk cache in bytes
    /// (default 100 GB).
    pub disk_capacity_bytes: u64,
    /// Local disk sequential bandwidth in bytes/second (default 250 MB/s,
    /// a typical SSD per the paper).
    pub disk_bandwidth: f64,
    /// Network bandwidth between containers and the storage service in
    /// bytes/second (default 1 Gbps = 125 MB/s).
    pub network_bandwidth: f64,
    /// Container memory capacity, normalised to 1.0; operator memory
    /// requirements are fractions of this.
    pub memory_capacity: f64,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            quantum: SimDuration::from_secs(60),
            vm_price_per_quantum: Money::from_dollars(0.1),
            storage_price_per_mb_quantum: Money::from_dollars(1e-4),
            max_containers: 100,
            disk_capacity_bytes: 100 * 1024 * 1024 * 1024,
            disk_bandwidth: 250.0 * 1024.0 * 1024.0,
            network_bandwidth: 1e9 / 8.0,
            memory_capacity: 1.0,
        }
    }
}

impl CloudConfig {
    /// Seconds needed to move `bytes` over the network.
    pub fn network_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.network_bandwidth)
    }

    /// Seconds needed to read/write `bytes` on the local disk.
    pub fn disk_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.disk_bandwidth)
    }
}

/// Online auto-tuner parameters (§4–5).
#[derive(Debug, Clone, PartialEq)]
pub struct TunerConfig {
    /// Time–money trade-off `α ∈ [0,1]`; large α favours time (default 0.5).
    pub alpha: f64,
    /// Gain fading controller `D` in quanta: `dc(t) = e^{-t/D}`
    /// (default 1 quantum).
    pub fading_d: f64,
    /// Sliding-window size `W` in quanta over which historical dataflows
    /// contribute gain when evaluating an index (default 120 quanta —
    /// long enough that an index reused every several dataflows survives
    /// between uses in a saturated service, short enough that a phase
    /// change still retires the previous phase's index set; the paper
    /// leaves its experimental `W` unstated).
    pub window_w: f64,
    /// Horizon in quanta over which `st(idx, W)` charges storage in the
    /// money gain (default 4, the paper's "e.g., two quanta" ballpark).
    /// Decoupled from `window_w`: an online policy re-decides every few
    /// quanta, so its marginal storage commitment is short even when its
    /// memory of past usefulness is long.
    pub storage_window_w: f64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            alpha: 0.5,
            fading_d: 1.0,
            window_w: 120.0,
            storage_window_w: 4.0,
        }
    }
}

impl TunerConfig {
    /// Validate parameter ranges.
    pub fn validate(&self) -> crate::Result<()> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(crate::FlowtuneError::config(format!(
                "alpha must be in [0,1], got {}",
                self.alpha
            )));
        }
        if self.fading_d <= 0.0 {
            return Err(crate::FlowtuneError::config(format!(
                "fading D must be positive, got {}",
                self.fading_d
            )));
        }
        if self.window_w <= 0.0 {
            return Err(crate::FlowtuneError::config(format!(
                "window W must be positive, got {}",
                self.window_w
            )));
        }
        if self.storage_window_w <= 0.0 {
            return Err(crate::FlowtuneError::config(format!(
                "storage window must be positive, got {}",
                self.storage_window_w
            )));
        }
        Ok(())
    }
}

/// Full experiment parameter set (Table 3 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentParams {
    /// Cloud model.
    pub cloud: CloudConfig,
    /// Tuner model.
    pub tuner: TunerConfig,
    /// Number of operators per generated dataflow (default 100).
    pub ops_per_dataflow: usize,
    /// Mean inter-arrival of dataflows, in quanta (Poisson λ, default 1).
    pub poisson_lambda_quanta: f64,
    /// Total simulated horizon in quanta (default 720).
    pub total_quanta: u64,
    /// Seed for all workload randomness.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            cloud: CloudConfig::default(),
            tuner: TunerConfig::default(),
            ops_per_dataflow: 100,
            poisson_lambda_quanta: 1.0,
            total_quanta: 720,
            seed: 0x00F1_077E,
        }
    }
}

impl ExperimentParams {
    /// The simulated horizon as a duration.
    pub fn horizon(&self) -> SimDuration {
        self.cloud.quantum * self.total_quanta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let p = ExperimentParams::default();
        assert_eq!(p.cloud.quantum, SimDuration::from_secs(60));
        assert_eq!(p.cloud.vm_price_per_quantum, Money::from_dollars(0.1));
        assert_eq!(
            p.cloud.storage_price_per_mb_quantum,
            Money::from_dollars(1e-4)
        );
        assert_eq!(p.cloud.max_containers, 100);
        assert_eq!(p.ops_per_dataflow, 100);
        assert!((p.tuner.alpha - 0.5).abs() < 1e-12);
        assert!((p.tuner.fading_d - 1.0).abs() < 1e-12);
        assert!((p.poisson_lambda_quanta - 1.0).abs() < 1e-12);
        assert_eq!(p.total_quanta, 720);
        assert_eq!(p.horizon(), SimDuration::from_secs(60 * 720));
    }

    #[test]
    fn transfer_times() {
        let c = CloudConfig::default();
        // 125 MB over 1 Gbps (125 MB/s) ≈ 1.048576 s (MB here is 2^20).
        let t = c.network_transfer(125 * 1024 * 1024);
        assert!((t.as_secs_f64() - 125.0 * 1024.0 * 1024.0 / (1e9 / 8.0)).abs() < 1e-3);
        // 250 MB at 250 MB/s = 1 s.
        let d = c.disk_transfer(250 * 1024 * 1024);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tuner_validation() {
        assert!(TunerConfig::default().validate().is_ok());
        assert!(TunerConfig {
            alpha: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TunerConfig {
            fading_d: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TunerConfig {
            window_w: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
