//! # flowtune-common
//!
//! Foundational types shared by every crate in the flowtune workspace:
//! simulation time, money, identifiers, pricing formulas, deterministic
//! random number generation, descriptive statistics and configuration.
//!
//! The workspace reproduces *"Automated Management of Indexes for Dataflow
//! Processing Engines in IaaS Clouds"* (EDBT 2020). All quantities follow the
//! paper's units: time is ultimately reported in *quanta* (the VM billing
//! granularity, 60 s by default) and money in dollars, but internally time is
//! kept as integer milliseconds and money as integer micro-dollars so that
//! simulations are exactly reproducible across runs and platforms.

pub mod config;
pub mod error;
pub mod histogram;
pub mod ids;
pub mod money;
pub mod pricing;
pub mod rng;
pub mod stats;
pub mod time;

pub use config::{CloudConfig, ExperimentParams, TunerConfig};
pub use error::{FlowtuneError, Result};
pub use histogram::Histogram;
pub use ids::{
    BuildOpId, ContainerId, DataflowId, FileId, IndexId, OpId, PageId, PartitionId, TableId,
};
pub use money::Money;
pub use rng::SimRng;
pub use stats::OnlineStats;
pub use time::{Quanta, SimDuration, SimTime};
