//! Strongly-typed identifiers.
//!
//! Every entity in the system (containers, operators, dataflows, tables,
//! files, partitions, indexes, build operators) gets its own id newtype so
//! the compiler rejects cross-entity mix-ups that plain `u32`s would allow.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw numeric value.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a `usize` index (panics on overflow).
            pub fn from_index(i: usize) -> Self {
                // flowtune-allow(panic-hygiene): documented contract: entity counts in the simulation fit in u32
                $name(u32::try_from(i).expect("id overflow"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// A compute container (VM) leased from the cloud provider.
    ContainerId,
    "c"
);
define_id!(
    /// A dataflow operator within a single dataflow DAG.
    OpId,
    "op"
);
define_id!(
    /// A dataflow instance issued to the QaaS service.
    DataflowId,
    "df"
);
define_id!(
    /// A table in the catalog.
    TableId,
    "t"
);
define_id!(
    /// A file in the file database the dataflows read.
    FileId,
    "f"
);
define_id!(
    /// An index (over one column of one table/file); consists of one index
    /// partition per table/file partition.
    IndexId,
    "idx"
);
define_id!(
    /// A build-index operator: builds one index partition.
    BuildOpId,
    "b"
);
define_id!(
    /// A fixed-size page in a page store (the unit of checksumming,
    /// caching, and torn-write detection).
    PageId,
    "p"
);

/// A partition of a table or file: `(file, part)` where `part` is the
/// ordinal of the partition within the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId {
    /// The file (or table) this partition belongs to.
    pub file: FileId,
    /// Ordinal of the partition within the file.
    pub part: u32,
}

impl PartitionId {
    /// Construct a partition id.
    pub const fn new(file: FileId, part: u32) -> Self {
        PartitionId { file, part }
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.file, self.part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_formats() {
        assert_eq!(ContainerId(3).to_string(), "c3");
        assert_eq!(OpId(0).to_string(), "op0");
        assert_eq!(PartitionId::new(FileId(7), 2).to_string(), "f7.2");
    }

    #[test]
    fn index_round_trip() {
        let id = DataflowId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, DataflowId(42));
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(IndexId(1));
        set.insert(IndexId(1));
        set.insert(IndexId(2));
        assert_eq!(set.len(), 2);
        assert!(PartitionId::new(FileId(1), 0) < PartitionId::new(FileId(1), 1));
        assert!(PartitionId::new(FileId(1), 9) < PartitionId::new(FileId(2), 0));
    }
}
