//! Monetary amounts.
//!
//! Money is stored as integer **micro-dollars** (1 µ$ = 10⁻⁶ $). Integer
//! arithmetic makes cost accounting exact: the experiments accumulate many
//! small storage charges (the default storage price is $10⁻⁴ per MB per
//! quantum) and floating-point summation would make run totals depend on
//! accumulation order.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed monetary amount in micro-dollars.
///
/// Signed because the paper's *gain* quantities (Eq. 3–5) are differences
/// that are frequently negative (an index that costs more than it saves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Money(i64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// Construct from whole micro-dollars.
    pub const fn from_micros(micros: i64) -> Self {
        Money(micros)
    }

    /// Construct from a dollar amount, rounding to the nearest micro-dollar.
    pub fn from_dollars(dollars: f64) -> Self {
        Money((dollars * 1e6).round() as i64)
    }

    /// Whole micro-dollars.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Dollar amount.
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Money expressed in *quanta of VM cost*: the paper normalises money
    /// by the per-quantum VM price so time and money share a unit.
    pub fn as_quanta(self, vm_price_per_quantum: Money) -> f64 {
        debug_assert!(vm_price_per_quantum.0 > 0, "VM price must be positive");
        self.0 as f64 / vm_price_per_quantum.0 as f64
    }

    /// Scale by a factor, rounding to the nearest micro-dollar.
    pub fn mul_f64(self, factor: f64) -> Money {
        Money((self.0 as f64 * factor).round() as i64)
    }

    /// True if strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// True if zero or negative.
    pub const fn is_non_positive(self) -> bool {
        self.0 <= 0
    }

    /// Smaller of two amounts.
    pub fn min(self, other: Money) -> Money {
        Money(self.0.min(other.0))
    }

    /// Larger of two amounts.
    pub fn max(self, other: Money) -> Money {
        Money(self.0.max(other.0))
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<i64> for Money {
    type Output = Money;
    fn mul(self, rhs: i64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Div<i64> for Money {
    type Output = Money;
    fn div(self, rhs: i64) -> Money {
        Money(self.0 / rhs)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.6}", self.as_dollars())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dollars_round_trip() {
        let m = Money::from_dollars(0.1);
        assert_eq!(m.as_micros(), 100_000);
        assert!((m.as_dollars() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn storage_price_is_exact() {
        // $1e-4 per MB per quantum must be exactly representable.
        let mst = Money::from_dollars(1e-4);
        assert_eq!(mst.as_micros(), 100);
        // Charging 713 partitions of 128 MB for one quantum is exact.
        let total = mst * (713 * 128);
        assert_eq!(total.as_micros(), 100 * 713 * 128);
    }

    #[test]
    fn quanta_normalisation() {
        let mc = Money::from_dollars(0.1);
        let spend = Money::from_dollars(0.25);
        assert!((spend.as_quanta(mc) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Money::from_micros(5);
        let b = Money::from_micros(3);
        assert_eq!(a + b, Money::from_micros(8));
        assert_eq!(a - b, Money::from_micros(2));
        assert_eq!(-(a - b), Money::from_micros(-2));
        assert!(b < a);
        assert!(Money::from_micros(-1).is_non_positive());
        assert!(a.is_positive());
        let total: Money = [a, b, b].into_iter().sum();
        assert_eq!(total, Money::from_micros(11));
    }

    #[test]
    fn scaling() {
        assert_eq!(
            Money::from_micros(100).mul_f64(0.25),
            Money::from_micros(25)
        );
        assert_eq!(Money::from_micros(100) * 3, Money::from_micros(300));
        assert_eq!(Money::from_micros(100) / 4, Money::from_micros(25));
    }
}
