//! Cloud pricing formulas.
//!
//! The paper's cloud model (§3, "Cloud Model") charges compute per VM per
//! time quantum and storage per GB per month. The helper here converts the
//! provider's monthly storage price into the per-quantum price `Mst` the
//! scheduler and tuner operate on, using the paper's own formula:
//!
//! ```text
//! Mst = (MC · 12 · Q) / (365.25 · 24 · 60)      (Q in minutes)
//! ```
//!
//! Pricing is pluggable: all downstream code reads prices from
//! [`crate::config::CloudConfig`], never from constants, so alternative
//! models (e.g. per-second billing) are a config change.

use crate::money::Money;
use crate::time::SimDuration;

/// Minutes in an average Gregorian year (365.25 days), the constant the
/// paper uses to convert monthly storage pricing to per-quantum pricing.
const MINUTES_PER_YEAR: f64 = 365.25 * 24.0 * 60.0;

/// Convert a *per GB per month* storage price into a *per GB per quantum*
/// price using the paper's formula.
pub fn storage_price_per_gb_quantum(per_gb_month: Money, quantum: SimDuration) -> Money {
    let q_minutes = quantum.as_secs_f64() / 60.0;
    per_gb_month.mul_f64(12.0 * q_minutes / MINUTES_PER_YEAR)
}

/// Storage cost of holding `bytes` for `quanta` billing quanta at a
/// *per MB per quantum* price.
///
/// Sizes are charged pro-rata by byte (the paper counts bytes transferred
/// and "charges appropriately over time").
pub fn storage_cost(bytes: u64, quanta: f64, price_per_mb_quantum: Money) -> Money {
    let mb = bytes as f64 / (1024.0 * 1024.0);
    price_per_mb_quantum.mul_f64(mb * quanta)
}

/// Compute cost of leasing `quanta` whole quanta at the per-quantum VM
/// price.
pub fn compute_cost(quanta: u64, vm_price_per_quantum: Money) -> Money {
    vm_price_per_quantum * quanta as i64
}

/// Number of whole quanta needed to cover a duration (billing rounds up:
/// resources are prepaid for whole quanta).
pub fn quanta_to_cover(duration: SimDuration, quantum: SimDuration) -> u64 {
    debug_assert!(quantum.as_millis() > 0, "quantum must be positive");
    duration.as_millis().div_ceil(quantum.as_millis())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monthly_to_quantum_conversion_matches_paper_formula() {
        // $0.10 per GB per month, 60 s quantum (1 minute).
        let per_month = Money::from_dollars(0.10);
        let q = SimDuration::from_secs(60);
        let got = storage_price_per_gb_quantum(per_month, q);
        let expect = 0.10 * 12.0 * 1.0 / (365.25 * 24.0 * 60.0);
        // Money has micro-dollar granularity, so the result is exact up to
        // half a micro-dollar of rounding.
        assert!((got.as_dollars() - expect).abs() <= 5e-7);
    }

    #[test]
    fn storage_cost_scales_linearly() {
        let price = Money::from_dollars(1e-4); // per MB per quantum
        let one_mb_one_q = storage_cost(1024 * 1024, 1.0, price);
        assert_eq!(one_mb_one_q, Money::from_dollars(1e-4));
        let ten_mb_half_q = storage_cost(10 * 1024 * 1024, 0.5, price);
        assert_eq!(ten_mb_half_q, Money::from_dollars(5e-4));
    }

    #[test]
    fn quanta_round_up() {
        let q = SimDuration::from_secs(60);
        assert_eq!(quanta_to_cover(SimDuration::ZERO, q), 0);
        assert_eq!(quanta_to_cover(SimDuration::from_secs(1), q), 1);
        assert_eq!(quanta_to_cover(SimDuration::from_secs(60), q), 1);
        assert_eq!(quanta_to_cover(SimDuration::from_secs(61), q), 2);
    }

    #[test]
    fn compute_cost_is_price_times_quanta() {
        let mc = Money::from_dollars(0.1);
        assert_eq!(compute_cost(7, mc), Money::from_dollars(0.7));
    }
}
