//! Error type shared across the workspace.

use std::fmt;

/// Convenient alias used by all flowtune crates.
pub type Result<T> = std::result::Result<T, FlowtuneError>;

/// Errors produced anywhere in the flowtune workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowtuneError {
    /// Invalid configuration value.
    Config(String),
    /// A dataflow DAG is malformed (cycle, dangling edge, ...).
    InvalidDag(String),
    /// A schedule violates a constraint (overlap, dependency order, ...).
    InvalidSchedule(String),
    /// An entity lookup failed.
    NotFound(String),
    /// A storage-layer failure (partition missing, cache misuse, ...).
    Storage(String),
    /// On-disk state failed verification (checksum mismatch, stale
    /// epoch, truncated image, structural invariant violation).
    Corrupt(String),
}

impl FlowtuneError {
    /// Build a [`FlowtuneError::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        FlowtuneError::Config(msg.into())
    }

    /// Build a [`FlowtuneError::InvalidDag`].
    pub fn invalid_dag(msg: impl Into<String>) -> Self {
        FlowtuneError::InvalidDag(msg.into())
    }

    /// Build a [`FlowtuneError::InvalidSchedule`].
    pub fn invalid_schedule(msg: impl Into<String>) -> Self {
        FlowtuneError::InvalidSchedule(msg.into())
    }

    /// Build a [`FlowtuneError::NotFound`].
    pub fn not_found(msg: impl Into<String>) -> Self {
        FlowtuneError::NotFound(msg.into())
    }

    /// Build a [`FlowtuneError::Storage`].
    pub fn storage(msg: impl Into<String>) -> Self {
        FlowtuneError::Storage(msg.into())
    }

    /// Build a [`FlowtuneError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        FlowtuneError::Corrupt(msg.into())
    }
}

impl fmt::Display for FlowtuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowtuneError::Config(m) => write!(f, "configuration error: {m}"),
            FlowtuneError::InvalidDag(m) => write!(f, "invalid dataflow DAG: {m}"),
            FlowtuneError::InvalidSchedule(m) => write!(f, "invalid schedule: {m}"),
            FlowtuneError::NotFound(m) => write!(f, "not found: {m}"),
            FlowtuneError::Storage(m) => write!(f, "storage error: {m}"),
            FlowtuneError::Corrupt(m) => write!(f, "corrupt state: {m}"),
        }
    }
}

impl std::error::Error for FlowtuneError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = FlowtuneError::invalid_dag("cycle at op3");
        assert_eq!(e.to_string(), "invalid dataflow DAG: cycle at op3");
        let e = FlowtuneError::config("bad alpha");
        assert!(e.to_string().contains("configuration"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FlowtuneError::not_found("idx9"));
    }
}
