//! Fixed-width histogram used for experiment reporting (e.g. the idle-slot
//! and build-operator duration histograms of Fig. 10).

/// A histogram over `[lo, hi)` with equally sized buckets; samples outside
/// the range are clamped into the first/last bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    nan_count: u64,
}

impl Histogram {
    /// Create a histogram with `buckets` equal-width buckets over
    /// `[lo, hi)`. Requires `lo < hi` and `buckets > 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            total: 0,
            nan_count: 0,
        }
    }

    /// Record one sample. NaN is tallied separately (`NaN as usize`
    /// is 0, which used to silently corrupt bucket 0) and excluded
    /// from `total()`.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            self.nan_count += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / width).floor();
        let idx = (idx.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total non-NaN samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of NaN samples rejected by [`Histogram::record`].
    pub fn nan_count(&self) -> u64 {
        self.nan_count
    }

    /// The `[start, end)` range of bucket `i`.
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Iterate `(bucket_start, bucket_end, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.counts.len()).map(move |i| {
            let (s, e) = self.bucket_range(i);
            (s, e, self.counts[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.99);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(42.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 1);
    }

    #[test]
    fn nan_is_counted_separately_not_in_bucket_zero() {
        // Regression: `NaN as usize == 0`, so NaN samples used to be
        // recorded as bucket-0 hits and inflate total().
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(f64::NAN);
        h.record(f64::NAN);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.nan_count(), 2);
        h.record(0.1);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.total(), 1);
        assert_eq!(h.nan_count(), 2);
    }

    #[test]
    fn bucket_ranges_tile_the_domain() {
        let h = Histogram::new(2.0, 6.0, 4);
        let ranges: Vec<_> = h.iter().map(|(s, e, _)| (s, e)).collect();
        assert_eq!(ranges[0], (2.0, 3.0));
        assert_eq!(ranges[3], (5.0, 6.0));
        for w in ranges.windows(2) {
            assert!((w[0].1 - w[1].0).abs() < 1e-12);
        }
    }
}
