//! Descriptive statistics.
//!
//! [`OnlineStats`] implements Welford's single-pass algorithm for mean and
//! variance; it is used both to report workload characteristics (Table 4)
//! and to aggregate experiment measurements.

/// Single-pass min/max/mean/standard-deviation accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    /// Same as [`OnlineStats::new`]. A derived `Default` would zero
    /// `min`/`max`, so the first `push(x)` could never raise `min`
    /// above `0.0` — `default()` must match `new()` exactly.
    fn default() -> Self {
        OnlineStats::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stdev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineStats {
    /// Build from an iterator of samples.
    fn from_iter<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut s = OnlineStats::new();
        for v in values {
            s.push(v);
        }
        s
    }
}

/// Percentile of a *sorted* slice using linear interpolation.
///
/// `q` is in `[0, 1]`. Returns `None` on an empty slice so report
/// paths never panic on a run that produced no samples.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    debug_assert!((0.0..=1.0).contains(&q), "quantile out of range");
    match sorted {
        [] => None,
        [only] => Some(*only),
        _ => {
            let pos = q * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn known_values() {
        let s = OnlineStats::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stdev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&v, 0.0), Some(1.0));
        assert_eq!(percentile_sorted(&v, 1.0), Some(4.0));
        assert!((percentile_sorted(&v, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(percentile_sorted(&[7.0], 0.4), Some(7.0));
    }

    #[test]
    fn percentile_of_empty_slice_is_none() {
        assert_eq!(percentile_sorted(&[], 0.5), None);
        assert_eq!(percentile_sorted(&[], 0.0), None);
    }

    #[test]
    fn default_matches_new() {
        // Regression: a derived Default zeroed min/max, so pushing 5.0
        // into a default() accumulator reported min = 0.0.
        let mut s = OnlineStats::default();
        s.push(5.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(OnlineStats::default(), OnlineStats::new());
    }

    fn random_vec(rng: &mut SimRng, max_len: u64, lo: f64, hi: f64) -> Vec<f64> {
        let n = rng.uniform_u64(0, max_len) as usize;
        (0..n).map(|_| rng.uniform_range(lo, hi)).collect()
    }

    #[test]
    fn merge_equals_sequential() {
        let mut rng = SimRng::seed_from_u64(0xC0FFEE);
        for _ in 0..200 {
            let a = random_vec(&mut rng, 50, -1e6, 1e6);
            let b = random_vec(&mut rng, 50, -1e6, 1e6);
            let mut merged = OnlineStats::from_iter(a.iter().copied());
            merged.merge(&OnlineStats::from_iter(b.iter().copied()));
            let seq = OnlineStats::from_iter(a.iter().chain(b.iter()).copied());
            assert_eq!(merged.count(), seq.count());
            assert!((merged.mean() - seq.mean()).abs() < 1e-6);
            assert!((merged.variance() - seq.variance()).abs() < 1e-3);
        }
    }

    #[test]
    fn stdev_is_nonnegative_and_bounded() {
        let mut rng = SimRng::seed_from_u64(0xBEEF);
        for _ in 0..200 {
            let mut v = random_vec(&mut rng, 99, -1e3, 1e3);
            if v.is_empty() {
                v.push(rng.uniform_range(-1e3, 1e3));
            }
            let s = OnlineStats::from_iter(v.iter().copied());
            assert!(s.stdev() >= 0.0);
            assert!(s.min() <= s.mean() + 1e-9);
            assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}
