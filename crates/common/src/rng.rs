//! Deterministic random number generation for workload synthesis.
//!
//! All experiment randomness flows through [`SimRng`], a thin wrapper over
//! a seeded [`rand::rngs::StdRng`] that adds the distributions the paper's
//! workload generators need (exponential inter-arrivals for the Poisson
//! client, truncated log-normal operator runtimes, categorical choice).
//! Normal variates are produced with Box–Muller so no extra distribution
//! crate is required.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Seeded RNG with simulation-oriented helpers.
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create from a 64-bit seed. Equal seeds produce identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derive an independent child generator; used to give each workload
    /// component its own stream so adding draws in one place does not
    /// perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.random::<u64>())
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform in `[lo, hi)`. Requires `lo < hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty uniform range");
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`. Requires `lo < hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty integer range");
        self.inner.random_range(lo..hi)
    }

    /// Uniform i64 in `[lo, hi)`. Requires `lo < hi`.
    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty integer range");
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponential variate with the given mean — the inter-arrival time of
    /// a Poisson process with rate `1/mean`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse CDF; 1-u avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Standard normal variate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.uniform(); // (0, 1]
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, stdev: f64) -> f64 {
        debug_assert!(stdev >= 0.0, "stdev must be non-negative");
        mean + stdev * self.standard_normal()
    }

    /// Log-normal variate parameterised by the *target* mean and standard
    /// deviation of the resulting distribution (not of the underlying
    /// normal), clamped to `[min, max]`.
    ///
    /// This is how operator runtimes are sampled to match the published
    /// per-application statistics (Table 4): heavy-tailed like real
    /// workflow tasks but bounded by the observed extremes.
    pub fn lognormal_clamped(&mut self, mean: f64, stdev: f64, min: f64, max: f64) -> f64 {
        debug_assert!(mean > 0.0 && min <= max, "invalid lognormal parameters");
        if stdev <= 0.0 {
            return mean.clamp(min, max);
        }
        let variance = stdev * stdev;
        let mu = (mean * mean / (variance + mean * mean).sqrt()).ln();
        let sigma = (1.0 + variance / (mean * mean)).ln().sqrt();
        let x = (mu + sigma * self.standard_normal()).exp();
        x.clamp(min, max)
    }

    /// Pick one element of a non-empty slice uniformly at random.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.uniform_u64(0, items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_u64(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Raw access for callers needing the full [`Rng`] API.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn forked_streams_are_independent_of_later_draws() {
        let mut a = SimRng::seed_from_u64(7);
        let mut fork1 = a.fork();
        let first = fork1.uniform();
        // Re-derive: same parent seed, same fork point -> same child stream.
        let mut a2 = SimRng::seed_from_u64(7);
        let mut fork2 = a2.fork();
        assert_eq!(first.to_bits(), fork2.uniform().to_bits());
    }

    #[test]
    fn exponential_has_requested_mean() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(60.0)).sum::<f64>() / n as f64;
        assert!((mean - 60.0).abs() < 2.0, "sample mean {mean}");
    }

    #[test]
    fn lognormal_matches_target_moments() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 40_000;
        let xs: Vec<f64> =
            (0..n).map(|_| rng.lognormal_clamped(22.97, 25.08, 0.0, f64::INFINITY)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 22.97).abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 25.08).abs() < 3.0, "stdev {}", var.sqrt());
    }

    #[test]
    fn lognormal_respects_clamp() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.lognormal_clamped(10.0, 30.0, 2.0, 50.0);
            assert!((2.0..=50.0).contains(&x));
        }
    }

    #[test]
    fn choose_and_shuffle_cover_all_elements() {
        let mut rng = SimRng::seed_from_u64(9);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*rng.choose(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);

        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 20 elements should permute");
    }
}
