//! Deterministic random number generation for workload synthesis.
//!
//! All experiment randomness flows through [`SimRng`], a seeded
//! xoshiro256** generator (Blackman & Vigna) implemented in-repo so the
//! workspace builds with **zero external dependencies** and fully
//! offline. The 64-bit seed is expanded into the 256-bit state with
//! SplitMix64, exactly as the reference implementation recommends, so
//! equal seeds produce identical streams on every platform and toolchain.
//! On top of the raw generator sit the distributions the paper's workload
//! generators need (exponential inter-arrivals for the Poisson client,
//! truncated log-normal operator runtimes, categorical choice). Normal
//! variates are produced with Box–Muller so no distribution crate is
//! required.
//!
//! The byte-exact output stream is a compatibility surface: experiment
//! figures are reproduced from seeds, so changing the generator or the
//! seeding procedure invalidates published numbers. The golden-stream
//! test at the bottom of this file pins the first draws of the stream and
//! must only be updated together with a deliberate, documented generator
//! change.

/// Seeded RNG with simulation-oriented helpers.
///
/// Internally a xoshiro256** generator: 256 bits of state, period
/// `2^256 - 1`, passes BigCrush, and needs only shifts/rotates/adds —
/// ideal for a dependency-free deterministic simulator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
///
/// This is the seeding procedure recommended by the xoshiro authors: it
/// guarantees the expanded state is never all-zero (xoshiro's single
/// forbidden state) and decorrelates nearby seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a 64-bit seed. Equal seeds produce identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit draw (xoshiro256** scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derive an independent child generator; used to give each workload
    /// component its own stream so adding draws in one place does not
    /// perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Uniform in `[0, 1)`: the top 53 bits of a draw scaled by 2⁻⁵³.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Requires `lo < hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty uniform range");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[lo, hi)`. Requires `lo < hi`.
    ///
    /// Unbiased: draws are rejected from the tail zone where the modulus
    /// would over-represent small residues.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty integer range");
        let span = hi - lo;
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Uniform i64 in `[lo, hi)`. Requires `lo < hi`.
    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty integer range");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.uniform_u64(0, span) as i64)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponential variate with the given mean — the inter-arrival time of
    /// a Poisson process with rate `1/mean`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse CDF; 1-u avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Standard normal variate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.uniform(); // (0, 1]
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, stdev: f64) -> f64 {
        debug_assert!(stdev >= 0.0, "stdev must be non-negative");
        mean + stdev * self.standard_normal()
    }

    /// Log-normal variate parameterised by the *target* mean and standard
    /// deviation of the resulting distribution (not of the underlying
    /// normal), clamped to `[min, max]`.
    ///
    /// This is how operator runtimes are sampled to match the published
    /// per-application statistics (Table 4): heavy-tailed like real
    /// workflow tasks but bounded by the observed extremes.
    pub fn lognormal_clamped(&mut self, mean: f64, stdev: f64, min: f64, max: f64) -> f64 {
        debug_assert!(mean > 0.0 && min <= max, "invalid lognormal parameters");
        if stdev <= 0.0 {
            return mean.clamp(min, max);
        }
        let variance = stdev * stdev;
        let mu = (mean * mean / (variance + mean * mean).sqrt()).ln();
        let sigma = (1.0 + variance / (mean * mean)).ln().sqrt();
        let x = (mu + sigma * self.standard_normal()).exp();
        x.clamp(min, max)
    }

    /// Pick one element of a non-empty slice uniformly at random.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.uniform_u64(0, items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_u64(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin the raw generator against the xoshiro256** reference: seeding
    /// state with SplitMix64(seed=0) and scrambling must reproduce the
    /// published algorithm exactly. These values were produced by this
    /// implementation and cross-checked against the reference C code's
    /// seeding procedure; they must never change silently — every
    /// experiment figure is reproduced from seeds through this stream.
    #[test]
    fn golden_stream_raw_u64() {
        let mut rng = SimRng::seed_from_u64(0);
        let expected: [u64; 8] = [
            11091344671253066420,
            13793997310169335082,
            1900383378846508768,
            7684712102626143532,
            13521403990117723737,
            18442103541295991498,
            7788427924976520344,
            9881088229871127103,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    /// Golden stream for the distribution helpers at the experiment seed.
    #[test]
    fn golden_stream_distributions() {
        let mut rng = SimRng::seed_from_u64(42);
        let u: Vec<u64> = (0..4).map(|_| rng.uniform().to_bits()).collect();
        let expected: [u64; 4] = [
            4590707384586612416,
            4600498721180566606,
            4604300506050280595,
            4606504113153275500,
        ];
        assert_eq!(u, expected);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn forked_streams_are_independent_of_later_draws() {
        let mut a = SimRng::seed_from_u64(7);
        let mut fork1 = a.fork();
        let first = fork1.uniform();
        // Re-derive: same parent seed, same fork point -> same child stream.
        let mut a2 = SimRng::seed_from_u64(7);
        let mut fork2 = a2.fork();
        assert_eq!(first.to_bits(), fork2.uniform().to_bits());
    }

    #[test]
    fn uniform_u64_is_in_range_and_covers() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.uniform_u64(3, 10);
            assert!((3..10).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert_eq!(seen, [true; 7]);
        for _ in 0..500 {
            let v = rng.uniform_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn exponential_has_requested_mean() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(60.0)).sum::<f64>() / n as f64;
        assert!((mean - 60.0).abs() < 2.0, "sample mean {mean}");
    }

    #[test]
    fn lognormal_matches_target_moments() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 40_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| rng.lognormal_clamped(22.97, 25.08, 0.0, f64::INFINITY))
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 22.97).abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 25.08).abs() < 3.0, "stdev {}", var.sqrt());
    }

    #[test]
    fn lognormal_respects_clamp() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.lognormal_clamped(10.0, 30.0, 2.0, 50.0);
            assert!((2.0..=50.0).contains(&x));
        }
    }

    #[test]
    fn choose_and_shuffle_cover_all_elements() {
        let mut rng = SimRng::seed_from_u64(9);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*rng.choose(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);

        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 20 elements should permute");
    }
}
