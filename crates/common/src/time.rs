//! Simulation time.
//!
//! Time is stored as integer **milliseconds** so that schedules and
//! simulations are exactly reproducible (no floating-point drift when
//! summing operator runtimes). The paper reports time in *quanta*; the
//! conversion happens at the reporting boundary via
//! [`SimDuration::as_quanta`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in milliseconds since the start of
/// the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1000.0).round().max(0.0) as u64)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The duration elapsed since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Time expressed in billing quanta (fractional).
    pub fn as_quanta(self, quantum: SimDuration) -> f64 {
        self.0 as f64 / quantum.0 as f64
    }

    /// The index of the billing quantum that contains this instant
    /// (quantum boundaries are aligned at multiples of `quantum` from time
    /// zero).
    pub fn quantum_index(self, quantum: SimDuration) -> u64 {
        debug_assert!(quantum.0 > 0, "quantum must be positive");
        self.0 / quantum.0
    }

    /// The start of the quantum that contains this instant.
    pub fn quantum_floor(self, quantum: SimDuration) -> SimTime {
        SimTime(self.quantum_index(quantum) * quantum.0)
    }

    /// The first quantum boundary at or after this instant.
    pub fn quantum_ceil(self, quantum: SimDuration) -> SimTime {
        debug_assert!(quantum.0 > 0, "quantum must be positive");
        SimTime(self.0.div_ceil(quantum.0) * quantum.0)
    }

    /// Smaller of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Larger of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1000.0).round().max(0.0) as u64)
    }

    /// Milliseconds in this duration.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration expressed in billing quanta (fractional), the unit the
    /// paper reports both time *and* money in.
    pub fn as_quanta(self, quantum: SimDuration) -> f64 {
        self.0 as f64 / quantum.0 as f64
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Difference that saturates at zero instead of underflowing.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest millisecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration scale must be non-negative");
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// Smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

/// A (possibly fractional) count of billing quanta — the unit the paper
/// reports both time and compute cost in. Unlike [`SimDuration`] this is
/// a *derived*, floating-point quantity produced at the reporting and
/// gain-model boundary; keeping it as a distinct type stops raw `f64`
/// quanta from mixing silently with dollars or milliseconds
/// (DESIGN §7 newtype discipline, enforced by `flowtune-analyze`).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Quanta(f64);

impl Quanta {
    /// Zero quanta.
    pub const ZERO: Quanta = Quanta(0.0);

    /// Construct from a raw quanta count.
    pub const fn new(q: f64) -> Self {
        Quanta(q)
    }

    /// The raw quanta count.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The duration this many quanta span.
    pub fn to_duration(self, quantum: SimDuration) -> SimDuration {
        quantum.mul_f64(self.0.max(0.0))
    }
}

impl From<f64> for Quanta {
    fn from(q: f64) -> Self {
        Quanta(q)
    }
}

impl Add for Quanta {
    type Output = Quanta;
    fn add(self, rhs: Quanta) -> Quanta {
        Quanta(self.0 + rhs.0)
    }
}

impl AddAssign for Quanta {
    fn add_assign(&mut self, rhs: Quanta) {
        self.0 += rhs.0;
    }
}

impl Sub for Quanta {
    type Output = Quanta;
    fn sub(self, rhs: Quanta) -> Quanta {
        Quanta(self.0 - rhs.0)
    }
}

impl Mul<f64> for Quanta {
    type Output = Quanta;
    fn mul(self, rhs: f64) -> Quanta {
        Quanta(self.0 * rhs)
    }
}

impl Sum for Quanta {
    fn sum<I: Iterator<Item = Quanta>>(iter: I) -> Quanta {
        iter.fold(Quanta::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Quanta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}q", self.0)
    }
}

impl SimTime {
    /// Time since simulation start as a [`Quanta`] count.
    pub fn quanta(self, quantum: SimDuration) -> Quanta {
        Quanta(self.as_quanta(quantum))
    }
}

impl SimDuration {
    /// This duration as a [`Quanta`] count.
    pub fn quanta(self, quantum: SimDuration) -> Quanta {
        Quanta(self.as_quanta(quantum))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: SimDuration = SimDuration::from_secs(60);

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert!((SimDuration::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn quantum_arithmetic() {
        let t = SimTime::from_secs(61);
        assert_eq!(t.quantum_index(Q), 1);
        assert_eq!(t.quantum_floor(Q), SimTime::from_secs(60));
        assert_eq!(t.quantum_ceil(Q), SimTime::from_secs(120));
        assert_eq!(
            SimTime::from_secs(60).quantum_ceil(Q),
            SimTime::from_secs(60)
        );
        assert_eq!(SimTime::ZERO.quantum_ceil(Q), SimTime::ZERO);
    }

    #[test]
    fn quanta_conversion_matches_paper_units() {
        // 90 seconds = 1.5 quanta of 60 s.
        assert!((SimDuration::from_secs(90).as_quanta(Q) - 1.5).abs() < 1e-12);
        assert!((SimTime::from_secs(30).as_quanta(Q) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_and_duration_arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(
            SimTime::from_secs(3).saturating_since(SimTime::from_secs(9)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(4).mul_f64(2.5),
            SimDuration::from_secs(10)
        );
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn quanta_newtype_arithmetic() {
        let q = SimDuration::from_secs(90).quanta(Q) + SimTime::from_secs(30).quanta(Q);
        assert!((q.get() - 2.0).abs() < 1e-12);
        assert!((q - Quanta::new(0.5)).get() - 1.5 < 1e-12);
        assert!(((q * 2.0).get() - 4.0).abs() < 1e-12);
        let sum: Quanta = [Quanta::new(1.0), Quanta::new(2.5)].into_iter().sum();
        assert!((sum.get() - 3.5).abs() < 1e-12);
        assert_eq!(Quanta::new(1.5).to_duration(Q), SimDuration::from_secs(90));
        assert_eq!(format!("{}", Quanta::new(1.25)), "1.250q");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn debug_subtraction_underflow_panics() {
        let _ = SimDuration::from_secs(1) - SimDuration::from_secs(2);
    }
}
