//! Determinism of the fault-injection layer at the simulator level:
//! the execution report is a pure function of `(workload seed, fault
//! seed)`, and a fault rate of 0 is byte-identical to the plain
//! (pre-fault) simulator.

use std::collections::BTreeMap;

use flowtune_cloud::{FaultConfig, FaultPlan, IndexAvailability, Simulator};
use flowtune_common::{CloudConfig, DataflowId, SimRng, SimTime};
use flowtune_dataflow::{App, Dataflow, DataflowFactory, FileDatabase};
use flowtune_sched::{Schedule, SchedulerConfig, SkylineScheduler};

fn workload(seed: u64) -> (FileDatabase, Dataflow, Schedule) {
    let mut rng = SimRng::seed_from_u64(seed);
    let db = FileDatabase::generate(&mut rng);
    let mut factory = DataflowFactory::new(db.clone(), 60, rng);
    let df = factory.make(DataflowId(0), App::Cybershake, SimTime::ZERO);
    let schedule = SkylineScheduler::new(SchedulerConfig {
        max_skyline: 4,
        ..Default::default()
    })
    .schedule(&df.dag)
    .remove(0);
    (db, df, schedule)
}

fn faulted_run(workload_seed: u64, fault_rate: f64, fault_seed: u64) -> String {
    let (db, df, schedule) = workload(workload_seed);
    let sim = Simulator::new(CloudConfig::default(), &db);
    let plan = FaultPlan::new(FaultConfig::with_rate(fault_rate, fault_seed));
    let mut injector = plan.injector(0, 0);
    #[allow(clippy::expect_used)]
    let report = sim
        .execute_with_faults(
            &df.dag,
            &schedule,
            &df.index_uses,
            &IndexAvailability::new(),
            &BTreeMap::new(),
            &mut injector,
        )
        .expect("simulation failed");
    format!("{report:?}")
}

#[test]
fn same_seed_pair_gives_identical_reports() {
    for workload_seed in [3, 17, 99] {
        for fault_seed in [1, 0xFA_0175] {
            let a = faulted_run(workload_seed, 0.4, fault_seed);
            let b = faulted_run(workload_seed, 0.4, fault_seed);
            assert_eq!(a, b, "seeds ({workload_seed}, {fault_seed}) diverged");
        }
    }
}

#[test]
fn different_fault_seeds_change_the_fault_pattern() {
    // Not guaranteed for any single seed pair, so check that at least
    // one of several fault seeds diverges from the baseline.
    let base = faulted_run(3, 0.6, 1);
    let diverged = (2..8u64).any(|fs| faulted_run(3, 0.6, fs) != base);
    assert!(diverged, "fault seed never affected the fault pattern");
}

#[test]
fn rate_zero_is_byte_identical_to_the_plain_simulator() {
    for workload_seed in [3, 17, 99] {
        let (db, df, schedule) = workload(workload_seed);
        let sim = Simulator::new(CloudConfig::default(), &db);
        let plain = sim
            .execute(
                &df.dag,
                &schedule,
                &df.index_uses,
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .expect("simulation failed");
        // Any fault seed: at rate 0 the injector must never draw.
        let faulted = faulted_run(workload_seed, 0.0, 0xDEAD_BEEF);
        assert_eq!(format!("{plain:?}"), faulted);
        assert!(plain.completed());
        assert!(plain.killed_ops.is_empty());
        assert!(plain.revoked_containers.is_empty());
        assert_eq!(plain.storage_faults, 0);
        assert_eq!(plain.straggler_ops, 0);
    }
}

#[test]
fn faults_only_ever_add_kills_and_waste() {
    // Under any fault rate, conservation holds: every dataflow op is
    // executed or killed, every build lands in exactly one bucket.
    for rate in [0.1, 0.5, 1.0] {
        let (db, df, schedule) = workload(17);
        let sim = Simulator::new(CloudConfig::default(), &db);
        let plan = FaultPlan::new(FaultConfig::with_rate(rate, 7));
        let mut injector = plan.injector(0, 0);
        let r = sim
            .execute_with_faults(
                &df.dag,
                &schedule,
                &df.index_uses,
                &IndexAvailability::new(),
                &BTreeMap::new(),
                &mut injector,
            )
            .expect("simulation failed");
        assert_eq!(r.dataflow_ops + r.killed_ops.len(), df.dag.len());
        assert_eq!(
            r.build_ops_attempted(),
            schedule.build_assignments().count()
        );
    }
}
