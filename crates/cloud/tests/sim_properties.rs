//! Property tests over the execution simulator: conservation laws that
//! must hold for any dataflow, schedule and perturbation.
//!
//! Inputs are generated from seeded `SimRng` streams, so every case is
//! reproducible from its seed.

use std::collections::BTreeMap;

use flowtune_cloud::{perturb_dag, IndexAvailability, Simulator};
use flowtune_common::{BuildOpId, CloudConfig, DataflowId, IndexId, SimDuration, SimRng, SimTime};
use flowtune_dataflow::{App, DataflowFactory, FileDatabase};
use flowtune_interleave::{BuildOp, LpInterleaver};
use flowtune_sched::{BuildRef, SchedulerConfig, SkylineScheduler};

const Q: SimDuration = SimDuration::from_secs(60);

fn setup(seed: u64) -> (FileDatabase, DataflowFactory) {
    let mut rng = SimRng::seed_from_u64(seed);
    let db = FileDatabase::generate(&mut rng);
    let factory = DataflowFactory::new(db.clone(), 60, rng);
    (db, factory)
}

fn pending(n: u32) -> Vec<BuildOp> {
    (0..n)
        .map(|i| BuildOp {
            id: BuildOpId(i),
            build: BuildRef {
                index: IndexId(i / 3),
                part: i % 3,
            },
            duration: SimDuration::from_secs(2 + (i as u64 * 5) % 15),
            gain: 0.1 + (i as f64 * 0.17) % 2.0,
        })
        .collect()
}

#[test]
fn conservation_laws_hold_under_perturbation() {
    let mut meta = SimRng::seed_from_u64(0xC10D);
    for _ in 0..16 {
        let seed = meta.uniform_u64(0, 500);
        let time_err = meta.uniform_u64(0, 60) as f64 / 100.0;
        let data_err = meta.uniform_u64(0, 60) as f64 / 100.0;
        let (db, mut factory) = setup(seed);
        let mut rng = SimRng::seed_from_u64(seed ^ 0xABCD);
        let app = *rng.choose(&App::ALL);
        let df = factory.make(DataflowId(0), app, SimTime::ZERO);
        let scheduler = SkylineScheduler::new(SchedulerConfig {
            max_skyline: 4,
            ..Default::default()
        });
        let mut schedule = scheduler.schedule(&df.dag).remove(0);
        LpInterleaver::new(Q).interleave(&mut schedule, &pending(30));
        let actual = perturb_dag(&df.dag, time_err, data_err, &mut rng);
        let sim = Simulator::new(CloudConfig::default(), &db);
        let report = sim
            .execute(
                &actual,
                &schedule,
                &df.index_uses,
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .unwrap();
        // Every dataflow operator ran exactly once.
        assert_eq!(report.dataflow_ops, df.dag.len());
        // Every scheduled build either completed or was killed.
        assert_eq!(
            report.build_ops_attempted(),
            schedule.build_assignments().count()
        );
        // Time/billing sanity.
        assert!(report.makespan > SimDuration::ZERO);
        assert!(report.leased_quanta > 0);
        assert_eq!(
            report.compute_cost,
            CloudConfig::default().vm_price_per_quantum * report.leased_quanta as i64
        );
        // Caches: every partition read is either a hit or a miss.
        let reads: u64 = df.dag.ops().iter().map(|o| o.reads.len() as u64).sum();
        assert_eq!(report.cache_hits + report.cache_misses, reads);
        assert_eq!(report.accelerated_reads + report.plain_reads, reads);
        // Without indexes nothing is accelerated.
        assert_eq!(report.accelerated_reads, 0);
    }
}

#[test]
fn full_index_availability_never_slows_execution() {
    for seed in (0u64..300).step_by(20) {
        let (db, mut factory) = setup(seed);
        let mut rng = SimRng::seed_from_u64(seed ^ 0x1234);
        let app = *rng.choose(&App::ALL);
        let df = factory.make(DataflowId(0), app, SimTime::ZERO);
        let scheduler = SkylineScheduler::new(SchedulerConfig {
            max_skyline: 4,
            ..Default::default()
        });
        let schedule = scheduler.schedule(&df.dag).remove(0);
        let sim = Simulator::new(CloudConfig::default(), &db);
        let none = sim
            .execute(
                &df.dag,
                &schedule,
                &df.index_uses,
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .unwrap();
        let mut avail = IndexAvailability::new();
        for u in &df.index_uses {
            for p in &db.file(u.file).partitions {
                avail.add(u.index, p.id.part, p.bytes / 8);
            }
        }
        let full = sim
            .execute(&df.dag, &schedule, &df.index_uses, &avail, &BTreeMap::new())
            .unwrap();
        assert!(
            full.makespan <= none.makespan,
            "indexes slowed execution: {} -> {}",
            none.makespan,
            full.makespan
        );
        assert!(full.compute_cost <= none.compute_cost);
        assert!(full.bytes_from_storage <= none.bytes_from_storage);
        // Everything was accelerated.
        assert_eq!(full.plain_reads, 0);
    }
}

#[test]
fn zero_perturbation_is_deterministic() {
    for seed in (0u64..300).step_by(20) {
        let (db, mut factory) = setup(seed);
        let df = factory.make(DataflowId(0), App::Montage, SimTime::ZERO);
        let scheduler = SkylineScheduler::new(SchedulerConfig {
            max_skyline: 4,
            ..Default::default()
        });
        let schedule = scheduler.schedule(&df.dag).remove(0);
        let sim = Simulator::new(CloudConfig::default(), &db);
        let run = || {
            sim.execute(
                &df.dag,
                &schedule,
                &df.index_uses,
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.leased_quanta, b.leased_quanta);
        assert_eq!(a.fragmentation, b.fragmentation);
    }
}
