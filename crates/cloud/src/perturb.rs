//! Estimation-error injection (§6.2).
//!
//! "The runtime of operators and the data sizes they generate are
//! randomly varied within a certain percentage": for an error level `e`,
//! each actual value is the estimate scaled by a uniform factor in
//! `[1−e, 1+e]`.

use flowtune_common::SimRng;
use flowtune_dataflow::{Dag, Edge};

/// Produce the *actual* DAG from the *estimated* one: operator runtimes
/// scaled by `1 ± time_error`, edge byte counts by `1 ± data_error`.
/// Errors are fractions (0.1 = 10 %).
// flowtune-allow(newtype-discipline): time_error is a dimensionless error fraction, not a time
pub fn perturb_dag(dag: &Dag, time_error: f64, data_error: f64, rng: &mut SimRng) -> Dag {
    assert!(
        (0.0..1.0).contains(&time_error),
        "time error must be in [0,1)"
    );
    assert!(
        (0.0..1.0).contains(&data_error),
        "data error must be in [0,1)"
    );
    let ops = dag
        .ops()
        .iter()
        .map(|op| {
            let mut actual = op.clone();
            if time_error > 0.0 {
                let f = rng.uniform_range(1.0 - time_error, 1.0 + time_error);
                actual.runtime = op.runtime.mul_f64(f);
            }
            actual
        })
        .collect();
    let edges = dag
        .edges()
        .iter()
        .map(|e| {
            let bytes = if data_error > 0.0 {
                let f = rng.uniform_range(1.0 - data_error, 1.0 + data_error);
                (e.bytes as f64 * f).round() as u64
            } else {
                e.bytes
            };
            Edge {
                from: e.from,
                to: e.to,
                bytes,
            }
        })
        .collect();
    #[allow(clippy::expect_used)]
    // flowtune-allow(panic-hygiene): ops and edges are copied one-for-one from a Dag that already validated
    Dag::new(ops, edges).expect("perturbation preserves DAG structure")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;
    use flowtune_dataflow::App;

    #[test]
    fn zero_error_is_identity() {
        let mut rng = SimRng::seed_from_u64(1);
        let dag = App::Montage.generate(50, &[], &mut rng);
        let same = perturb_dag(&dag, 0.0, 0.0, &mut rng);
        assert_eq!(dag.ops(), same.ops());
        assert_eq!(dag.edges(), same.edges());
    }

    #[test]
    fn errors_stay_within_bounds() {
        let mut rng = SimRng::seed_from_u64(2);
        let dag = App::Ligo.generate(60, &[], &mut rng);
        let actual = perturb_dag(&dag, 0.2, 0.5, &mut rng);
        for (est, act) in dag.ops().iter().zip(actual.ops()) {
            let ratio = act.runtime.as_secs_f64() / est.runtime.as_secs_f64();
            assert!((0.8..=1.2001).contains(&ratio), "runtime ratio {ratio}");
        }
        for (est, act) in dag.edges().iter().zip(actual.edges()) {
            if est.bytes > 1000 {
                let ratio = act.bytes as f64 / est.bytes as f64;
                assert!((0.499..=1.501).contains(&ratio), "bytes ratio {ratio}");
            }
        }
    }

    #[test]
    fn structure_is_preserved() {
        let mut rng = SimRng::seed_from_u64(3);
        let dag = App::Cybershake.generate(40, &[], &mut rng);
        let actual = perturb_dag(&dag, 0.3, 0.3, &mut rng);
        assert_eq!(dag.len(), actual.len());
        assert_eq!(dag.edges().len(), actual.edges().len());
        for (a, b) in dag.edges().iter().zip(actual.edges()) {
            assert_eq!((a.from, a.to), (b.from, b.to));
        }
        // Reads are untouched.
        for (a, b) in dag.ops().iter().zip(actual.ops()) {
            assert_eq!(a.reads, b.reads);
        }
    }
}
