//! # flowtune-cloud
//!
//! The cloud execution simulator (§6.1). Executes an interleaved
//! schedule against *actual* operator runtimes and data sizes (possibly
//! different from the estimates the schedule was planned with) and
//! reports what really happened:
//!
//! * dataflow operators run in plan order per container, waiting for
//!   their inputs (network transfers, unless cached on the container's
//!   local disk) and their dependencies;
//! * build-index operators have priority −1: they backfill idle time and
//!   are **stopped** when a dataflow operator arrives at the container
//!   or the container's lease expires (Table 7 counts these kills);
//! * containers are charged per whole leased quantum; an idle container
//!   is deleted when its quantum expires, losing its local cache;
//! * operators reading partitions with a built & beneficial index run
//!   faster (the dataflow's sampled speedup) but first read the index
//!   from the storage service.
//!
//! [`perturb`] injects the runtime/data-size estimation errors of §6.2.
//!
//! [`fault`] adds a deterministic fault-injection layer on top: seeded
//! container revocations, transient storage faults, stragglers and
//! index-build failures, all drawn from a dedicated [`fault::FaultPlan`]
//! stream so fault-free runs stay byte-identical.

pub mod fault;
pub mod perturb;
pub mod report;
pub mod sim;

pub use fault::{FaultConfig, FaultInjector, FaultPlan};
pub use perturb::perturb_dag;
pub use report::{CompletedBuild, CrashedBuild, ExecutionReport};
pub use sim::{IndexAvailability, Simulator};
