//! Deterministic fault injection for the execution simulator.
//!
//! Real IaaS clouds revoke spot instances, throttle storage and
//! straggle; the paper evaluates on a cloud that never fails. This
//! module makes those failures representable without giving up
//! reproducibility: every fault decision is drawn from a **dedicated**
//! [`SimRng`] stream derived from `(fault seed, dataflow, attempt)`, so
//! the fault pattern of a run is a pure function of the seed pair
//! `(workload seed, fault seed)` — independent of execution order,
//! retry count of *other* dataflows, and of how many draws the workload
//! generators consume.
//!
//! Six fault classes are modelled (each gated by a share of the master
//! `rate`):
//!
//! * **container revocation** — the provider takes a container back
//!   mid-quantum; every operator on it at or after the revocation
//!   instant is killed;
//! * **transient storage faults** — a read from the storage service
//!   fails and must be reissued, paying the transfer again;
//! * **stragglers** — an operator's actual runtime is inflated ×k;
//! * **build failures** — a build-index operator runs to completion but
//!   produces a corrupt partition, which must be invalidated rather
//!   than marked available;
//! * **crash during build** — the build dies partway through, leaving a
//!   partial page image whose tail pages were never flushed; the time
//!   already spent is wasted compute;
//! * **torn page writes** — the build completes but its last page image
//!   write was torn mid-page, which only a post-crash checksum scan can
//!   detect.
//!
//! A `rate` of zero is the *exact* pre-fault simulator: an inactive
//! injector never draws from its stream and every fault branch is
//! skipped, so reports are byte-identical to a run without the layer.
//! The two crash-consistency classes additionally guard on their own
//! probability, so configs predating them (share 0) replay their fault
//! streams byte-identically too.

use flowtune_common::{FlowtuneError, Result, SimRng, SimTime};

/// Fault model knobs. The master `rate` scales every class; the
/// per-class `*_share` factors set the relative frequency of each class
/// (probability = `rate × share`, clamped to `[0, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Master fault rate in `[0, 1]`; `0.0` disables the layer entirely.
    pub rate: f64,
    /// Seed of the dedicated fault stream (independent of the workload
    /// seed).
    pub seed: u64,
    /// Per-container revocation probability share (per execution).
    pub revocation_share: f64,
    /// Per-read transient storage-fault probability share.
    pub storage_share: f64,
    /// Per-operator straggler probability share.
    pub straggler_share: f64,
    /// Per-completed-build corruption probability share.
    pub build_failure_share: f64,
    /// Per-build crash-during-build probability share. Defaults to 0 so
    /// pre-existing fault streams replay byte-identically.
    pub crash_build_share: f64,
    /// Per-completed-build torn-page-write probability share. Defaults
    /// to 0 so pre-existing fault streams replay byte-identically.
    pub torn_write_share: f64,
    /// Runtime inflation factor for straggling operators (≥ 1).
    pub straggler_factor: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            rate: 0.0,
            seed: 0xFA_0175,
            revocation_share: 0.5,
            storage_share: 0.25,
            straggler_share: 0.25,
            build_failure_share: 0.5,
            crash_build_share: 0.0,
            torn_write_share: 0.0,
            straggler_factor: 3.0,
        }
    }
}

impl FaultConfig {
    /// A config with the given master rate and fault seed, default
    /// shares.
    pub fn with_rate(rate: f64, seed: u64) -> Self {
        FaultConfig {
            rate,
            seed,
            ..Default::default()
        }
    }

    /// True when any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.rate) {
            return Err(FlowtuneError::config(format!(
                "fault rate must be in [0,1], got {}",
                self.rate
            )));
        }
        for (name, share) in [
            ("revocation_share", self.revocation_share),
            ("storage_share", self.storage_share),
            ("straggler_share", self.straggler_share),
            ("build_failure_share", self.build_failure_share),
            ("crash_build_share", self.crash_build_share),
            ("torn_write_share", self.torn_write_share),
        ] {
            if !(0.0..=1.0).contains(&share) {
                return Err(FlowtuneError::config(format!(
                    "fault {name} must be in [0,1], got {share}"
                )));
            }
        }
        if self.straggler_factor < 1.0 {
            return Err(FlowtuneError::config(format!(
                "straggler factor must be >= 1, got {}",
                self.straggler_factor
            )));
        }
        Ok(())
    }

    fn probability(&self, share: f64) -> f64 {
        (self.rate * share).clamp(0.0, 1.0)
    }
}

/// Derives one [`FaultInjector`] per `(dataflow, attempt)` pair so every
/// execution attempt sees an independent, reproducible fault stream.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// A plan over the given fault model.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config }
    }

    /// A plan that never injects anything.
    pub fn none() -> Self {
        FaultPlan {
            config: FaultConfig::default(),
        }
    }

    /// The fault model in use.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True when any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.config.is_active()
    }

    /// The injector for one execution attempt of one dataflow. The
    /// stream depends only on `(seed, dataflow, attempt)`: re-running
    /// the same attempt replays the same faults, and no attempt's draws
    /// perturb any other's.
    pub fn injector(&self, dataflow: u32, attempt: u32) -> FaultInjector {
        // SplitMix64-style mixing keeps nearby (dataflow, attempt)
        // pairs decorrelated; seed_from_u64 expands the result further.
        let mixed = self
            .config
            .seed
            .wrapping_add((dataflow as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((attempt as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        FaultInjector {
            config: self.config.clone(),
            rng: SimRng::seed_from_u64(mixed),
        }
    }
}

/// Draws the fault decisions for one execution attempt.
///
/// Every method checks [`FaultConfig::is_active`] *before* touching the
/// stream, so an inactive injector performs zero draws — the property
/// the rate-0 byte-identity golden tests rely on.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SimRng,
}

impl FaultInjector {
    /// An injector that never fires and never draws.
    pub fn none() -> Self {
        FaultInjector {
            config: FaultConfig::default(),
            rng: SimRng::seed_from_u64(0),
        }
    }

    /// True when any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.config.is_active()
    }

    /// Decide whether (and when) the container whose planned activity
    /// spans `[start, end)` is revoked. Returns the revocation instant,
    /// strictly inside the span.
    pub fn revocation_in(&mut self, start: SimTime, end: SimTime) -> Option<SimTime> {
        if !self.is_active() || end <= start {
            return None;
        }
        if !self
            .rng
            .chance(self.config.probability(self.config.revocation_share))
        {
            return None;
        }
        let span_ms = (end - start).as_millis();
        let offset = self.rng.uniform_u64(0, span_ms.max(1));
        Some(start + flowtune_common::SimDuration::from_millis(offset))
    }

    /// Number of times a storage read must be reissued before it
    /// succeeds (0 almost always; bounded so a run cannot livelock).
    pub fn storage_retries(&mut self) -> u32 {
        if !self.is_active() {
            return 0;
        }
        let p = self.config.probability(self.config.storage_share);
        let mut retries = 0;
        while retries < 2 && self.rng.chance(p) {
            retries += 1;
        }
        retries
    }

    /// Runtime inflation factor for one operator (1.0 = no straggling).
    pub fn straggler_factor(&mut self) -> f64 {
        if !self.is_active() {
            return 1.0;
        }
        if self
            .rng
            .chance(self.config.probability(self.config.straggler_share))
        {
            self.config.straggler_factor
        } else {
            1.0
        }
    }

    /// Whether a build that ran to completion actually produced a
    /// corrupt partition.
    pub fn build_failure(&mut self) -> bool {
        if !self.is_active() {
            return false;
        }
        self.rng
            .chance(self.config.probability(self.config.build_failure_share))
    }

    /// Whether the build crashes partway through; returns the fraction
    /// of its runtime (and of its page image) completed before the
    /// crash, strictly inside `(0, 1)`. Guards on its own probability
    /// *before* drawing, so configs with `crash_build_share == 0`
    /// consume nothing from the stream and replay pre-existing fault
    /// patterns byte-identically.
    pub fn crash_during_build(&mut self) -> Option<f64> {
        if !self.is_active() {
            return None;
        }
        let p = self.config.probability(self.config.crash_build_share);
        if p <= 0.0 || !self.rng.chance(p) {
            return None;
        }
        Some(self.rng.uniform_range(0.05, 0.95))
    }

    /// Whether a build that ran to completion tore its final page
    /// write. Same own-probability guard as
    /// [`FaultInjector::crash_during_build`].
    pub fn torn_page_write(&mut self) -> bool {
        if !self.is_active() {
            return false;
        }
        let p = self.config.probability(self.config.torn_write_share);
        p > 0.0 && self.rng.chance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_injector_never_fires_and_never_draws() {
        let mut a = FaultInjector::none();
        let mut b = FaultInjector::none();
        for _ in 0..10 {
            assert_eq!(
                a.revocation_in(SimTime::ZERO, SimTime::from_secs(600)),
                None
            );
            assert_eq!(a.storage_retries(), 0);
            assert_eq!(a.straggler_factor(), 1.0);
            assert!(!a.build_failure());
            assert_eq!(a.crash_during_build(), None);
            assert!(!a.torn_page_write());
        }
        // The stream was never advanced: both injectors still agree on
        // the next raw draw of their (identical) seeds.
        assert_eq!(a.rng.next_u64(), b.rng.next_u64());
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::new(FaultConfig::with_rate(0.8, 99));
        let decide = |mut inj: FaultInjector| {
            let mut out = Vec::new();
            for _ in 0..50 {
                out.push((
                    inj.revocation_in(SimTime::ZERO, SimTime::from_secs(300)),
                    inj.storage_retries(),
                    inj.straggler_factor().to_bits(),
                    inj.build_failure(),
                ));
            }
            out
        };
        assert_eq!(decide(plan.injector(3, 0)), decide(plan.injector(3, 0)));
        assert_ne!(decide(plan.injector(3, 0)), decide(plan.injector(3, 1)));
        assert_ne!(decide(plan.injector(4, 0)), decide(plan.injector(3, 0)));
    }

    #[test]
    fn zero_share_crash_and_torn_draws_preserve_the_stream() {
        // The crash-consistency classes guard on their own probability,
        // so a config predating them (shares 0) must replay the exact
        // same fault pattern even when the new draw sites are visited.
        let plan = FaultPlan::new(FaultConfig::with_rate(0.8, 99));
        let mut plain = plan.injector(5, 0);
        let mut interleaved = plan.injector(5, 0);
        for _ in 0..50 {
            assert_eq!(interleaved.crash_during_build(), None);
            assert!(!interleaved.torn_page_write());
            assert_eq!(plain.build_failure(), interleaved.build_failure());
            assert_eq!(plain.storage_retries(), interleaved.storage_retries());
        }
    }

    #[test]
    fn crash_fraction_is_strictly_partial() {
        let config = FaultConfig {
            rate: 1.0,
            crash_build_share: 1.0,
            torn_write_share: 1.0,
            ..Default::default()
        };
        let mut inj = FaultPlan::new(config).injector(0, 0);
        let mut crashed = 0;
        let mut torn = 0;
        for _ in 0..100 {
            if let Some(f) = inj.crash_during_build() {
                assert!((0.05..0.95).contains(&f), "crash fraction {f}");
                crashed += 1;
            }
            if inj.torn_page_write() {
                torn += 1;
            }
        }
        assert_eq!(crashed, 100, "share-1.0 crashes always fire");
        assert_eq!(torn, 100, "share-1.0 torn writes always fire");
    }

    #[test]
    fn revocation_lands_inside_the_span() {
        let plan = FaultPlan::new(FaultConfig::with_rate(1.0, 7));
        let mut inj = plan.injector(0, 0);
        let (s, e) = (SimTime::from_secs(60), SimTime::from_secs(180));
        let mut fired = 0;
        for _ in 0..100 {
            if let Some(t) = inj.revocation_in(s, e) {
                assert!(t >= s && t < e, "revocation {t} outside [{s}, {e})");
                fired += 1;
            }
        }
        assert!(fired > 0, "rate-1.0 revocations never fired");
        assert_eq!(inj.revocation_in(s, s), None, "empty span cannot revoke");
    }

    #[test]
    fn straggler_factor_is_config_or_one() {
        let config = FaultConfig {
            rate: 1.0,
            straggler_share: 1.0,
            straggler_factor: 4.5,
            ..Default::default()
        };
        let mut inj = FaultPlan::new(config).injector(0, 0);
        assert_eq!(inj.straggler_factor(), 4.5);
    }

    #[test]
    fn storage_retries_are_bounded() {
        let config = FaultConfig {
            rate: 1.0,
            storage_share: 1.0,
            ..Default::default()
        };
        let mut inj = FaultPlan::new(config).injector(0, 0);
        for _ in 0..20 {
            assert!(inj.storage_retries() <= 2);
        }
    }

    #[test]
    fn config_validation_rejects_bad_ranges() {
        assert!(FaultConfig::default().validate().is_ok());
        assert!(FaultConfig::with_rate(1.5, 0).validate().is_err());
        assert!(FaultConfig {
            straggler_factor: 0.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            storage_share: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            crash_build_share: 1.2,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            torn_write_share: -0.5,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
