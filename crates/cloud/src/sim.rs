//! Schedule execution.
//!
//! The simulator replays a (possibly interleaved) schedule against the
//! *actual* DAG. Dataflow operators keep their planned container and
//! per-container order but their times are recomputed from actual
//! runtimes, dependency completion and input transfers. Build operators
//! backfill whatever idle time really materialises and are killed by the
//! next dataflow operator or by lease expiry — they can never delay the
//! dataflow (priority −1).
//!
//! Execution is optionally subjected to a deterministic
//! [`FaultInjector`] (see [`crate::fault`]): containers can be revoked
//! mid-quantum (killing the operators on them), storage reads can fail
//! transiently and be reissued, operators can straggle, and completed
//! builds can turn out corrupt. An inactive injector is a strict no-op,
//! so fault-free runs are byte-identical to the pre-fault simulator.

use std::collections::{BTreeMap, BTreeSet};

use flowtune_common::{
    pricing, CloudConfig, ContainerId, FlowtuneError, IndexId, OpId, PartitionId, Result,
    SimDuration, SimTime,
};
use flowtune_dataflow::{Dag, FileDatabase, IndexUse};
use flowtune_sched::{Assignment, BuildRef, Schedule};
use flowtune_storage::LruCache;

use crate::fault::FaultInjector;
use crate::report::{CompletedBuild, CrashedBuild, ExecutionReport};

/// Which index partitions exist (and their sizes) at execution time.
#[derive(Debug, Clone, Default)]
pub struct IndexAvailability {
    built: BTreeMap<(IndexId, u32), u64>,
}

impl IndexAvailability {
    /// Nothing built.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that partition `part` of `index` is built with the given
    /// size.
    pub fn add(&mut self, index: IndexId, part: u32, bytes: u64) {
        self.built.insert((index, part), bytes);
    }

    /// Size of a built index partition, `None` when not built.
    pub fn bytes(&self, index: IndexId, part: u32) -> Option<u64> {
        self.built.get(&(index, part)).copied()
    }

    /// True when the index partition is built.
    pub fn is_built(&self, index: IndexId, part: u32) -> bool {
        self.built.contains_key(&(index, part))
    }

    /// Remove a partition (revoked or invalidated by a failed build).
    /// Returns the recorded size when it was present.
    pub fn remove(&mut self, index: IndexId, part: u32) -> Option<u64> {
        self.built.remove(&(index, part))
    }

    /// Number of built index partitions.
    pub fn len(&self) -> usize {
        self.built.len()
    }

    /// True when nothing is built.
    pub fn is_empty(&self) -> bool {
        self.built.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum CacheKey {
    Partition(PartitionId),
    IndexPart(IndexId, u32),
}

/// The execution simulator.
#[derive(Debug)]
pub struct Simulator<'a> {
    config: CloudConfig,
    filedb: &'a FileDatabase,
}

impl<'a> Simulator<'a> {
    /// Create a simulator over a cloud model and file database.
    pub fn new(config: CloudConfig, filedb: &'a FileDatabase) -> Self {
        Simulator { config, filedb }
    }

    /// The cloud configuration in use.
    pub fn config(&self) -> &CloudConfig {
        &self.config
    }

    /// Execute a schedule without fault injection.
    ///
    /// * `actual` — the DAG with actual runtimes/data sizes (use
    ///   [`crate::perturb_dag`] to derive it from the estimated DAG).
    /// * `schedule` — the planned, possibly interleaved schedule.
    /// * `index_uses` — the dataflow's usable indexes with speedups.
    /// * `availability` — which index partitions exist right now.
    /// * `build_durations` — actual build times per build ref (planned
    ///   duration assumed when absent).
    ///
    /// Errors with [`FlowtuneError::InvalidSchedule`] when the schedule
    /// executes an operator before a predecessor it depends on.
    pub fn execute(
        &self,
        actual: &Dag,
        schedule: &Schedule,
        index_uses: &[IndexUse],
        availability: &IndexAvailability,
        build_durations: &BTreeMap<BuildRef, SimDuration>,
    ) -> Result<ExecutionReport> {
        self.execute_with_faults(
            actual,
            schedule,
            index_uses,
            availability,
            build_durations,
            &mut FaultInjector::none(),
        )
    }

    /// Execute a schedule under a fault injector (see [`crate::fault`]).
    ///
    /// An inactive injector makes this identical to [`Self::execute`].
    /// With faults active, operators on a revoked container at or after
    /// the revocation instant are killed (recorded in
    /// [`ExecutionReport::killed_ops`], transitively through killed
    /// predecessors); storage reads may be reissued; runtimes may be
    /// inflated; completed builds may turn out corrupt
    /// ([`ExecutionReport::failed_builds`]).
    pub fn execute_with_faults(
        &self,
        actual: &Dag,
        schedule: &Schedule,
        index_uses: &[IndexUse],
        availability: &IndexAvailability,
        build_durations: &BTreeMap<BuildRef, SimDuration>,
        faults: &mut FaultInjector,
    ) -> Result<ExecutionReport> {
        let mut report = ExecutionReport::default();
        let quantum = self.config.quantum;

        // Best usable index per file for this dataflow.
        let mut best_index: BTreeMap<flowtune_common::FileId, IndexUse> = BTreeMap::new();
        for u in index_uses {
            let entry = best_index.entry(u.file).or_insert(*u);
            if u.speedup > entry.speedup {
                *entry = *u;
            }
        }

        // Revocation instants, drawn upfront per container from the
        // *planned* activity spans in container order — deterministic
        // regardless of how actual execution drifts.
        let mut revocations: BTreeMap<ContainerId, SimTime> = BTreeMap::new();
        if faults.is_active() {
            let mut planned_spans: BTreeMap<ContainerId, (SimTime, SimTime)> = BTreeMap::new();
            for a in schedule.assignments() {
                let span = planned_spans
                    .entry(a.container)
                    .or_insert((SimTime::MAX, SimTime::ZERO));
                span.0 = span.0.min(a.start);
                span.1 = span.1.max(a.end);
            }
            for (&c, &(s, e)) in &planned_spans {
                // Pad by one quantum: actual execution drifts past the
                // plan and a revocation can land in that drift too.
                if let Some(t) = faults.revocation_in(s, e + quantum) {
                    flowtune_obs::obs_event!(
                        "cloud.revocation",
                        container = c.0,
                        revoke_at_ms = t.as_millis(),
                    );
                    // flowtune-allow(obs-discipline): fires only with spot revocations enabled; the smoke run is on-demand
                    flowtune_obs::count("cloud.revocations", 1);
                    revocations.insert(c, t);
                    report.revoked_containers.push(c);
                }
            }
        }

        // Per-container state.
        let mut caches: BTreeMap<ContainerId, LruCache<CacheKey>> = BTreeMap::new();
        let mut container_free: BTreeMap<ContainerId, SimTime> = BTreeMap::new();
        let mut actual_df: BTreeMap<OpId, (ContainerId, SimTime, SimTime)> = BTreeMap::new();
        let mut killed: BTreeSet<OpId> = BTreeSet::new();

        // Dataflow ops in planned order (valid: planned starts respect
        // both dependency and per-container order).
        let mut df_assignments: Vec<Assignment> =
            schedule.dataflow_assignments().copied().collect();
        df_assignments.sort_by_key(|a| (a.start, a.end, a.op));

        for a in &df_assignments {
            // An operator downstream of a killed one can never run.
            if actual.preds(a.op).iter().any(|p| killed.contains(p)) {
                killed.insert(a.op);
                report.killed_ops.push(a.op);
                continue;
            }
            let op = actual.op(a.op);
            let cache = caches
                .entry(a.container)
                .or_insert_with(|| LruCache::new(self.config.disk_capacity_bytes));
            // Dependency readiness with cross-container transfer.
            let mut ready = SimTime::ZERO;
            for &p in actual.preds(a.op) {
                let &(pc, _, pend) = actual_df.get(&p).ok_or_else(|| {
                    FlowtuneError::invalid_schedule(format!(
                        "{} is scheduled before its predecessor {}",
                        a.op, p
                    ))
                })?;
                let mut t = pend;
                if pc != a.container {
                    t += self.config.network_transfer(actual.edge_bytes(p, a.op));
                }
                ready = ready.max(t);
            }
            let free = container_free
                .get(&a.container)
                .copied()
                .unwrap_or(SimTime::ZERO);
            let start = ready.max(free);
            let revoke_at = revocations.get(&a.container).copied();
            if revoke_at.is_some_and(|t| start >= t) {
                // The container is gone before the operator can start.
                killed.insert(a.op);
                report.killed_ops.push(a.op);
                continue;
            }
            // Input transfers and index acceleration.
            let mut transfer_in = SimDuration::ZERO;
            let mut inv_speed_sum = 0.0f64;
            for pid in &op.reads {
                let key = CacheKey::Partition(*pid);
                let bytes = self.filedb.partition(*pid).bytes;
                // The indexed path reads the index partition instead of
                // scanning the whole input partition.
                let idx = best_index
                    .get(&pid.file)
                    .and_then(|u| availability.bytes(u.index, pid.part).map(|b| (*u, b)));
                match idx {
                    Some((u, idx_bytes)) => {
                        report.accelerated_reads += 1;
                        inv_speed_sum += 1.0 / u.speedup;
                        let ikey = CacheKey::IndexPart(u.index, pid.part);
                        if cache.get(&ikey) {
                            report.cache_hits += 1;
                        } else {
                            report.cache_misses += 1;
                            // A transient storage fault forces the read
                            // to be reissued, paying the transfer again.
                            let issues = 1 + faults.storage_retries() as u64;
                            report.storage_faults += issues - 1;
                            report.bytes_from_storage += idx_bytes * issues;
                            transfer_in += self
                                .config
                                .network_transfer(idx_bytes)
                                .mul_f64(issues as f64);
                            cache.insert(ikey, idx_bytes);
                        }
                    }
                    None => {
                        report.plain_reads += 1;
                        inv_speed_sum += 1.0;
                        if cache.get(&key) {
                            report.cache_hits += 1;
                        } else {
                            report.cache_misses += 1;
                            let issues = 1 + faults.storage_retries() as u64;
                            report.storage_faults += issues - 1;
                            report.bytes_from_storage += bytes * issues;
                            transfer_in +=
                                self.config.network_transfer(bytes).mul_f64(issues as f64);
                            cache.insert(key, bytes);
                        }
                    }
                }
            }
            let mut eff_runtime = if op.reads.is_empty() {
                op.runtime
            } else {
                op.runtime.mul_f64(inv_speed_sum / op.reads.len() as f64)
            };
            let straggle = faults.straggler_factor();
            if straggle > 1.0 {
                report.straggler_ops += 1;
                eff_runtime = eff_runtime.mul_f64(straggle);
            }
            let end = start + transfer_in + eff_runtime;
            if let Some(t) = revoke_at {
                if end > t {
                    // Started before the revocation, died mid-flight:
                    // the partial work is wasted.
                    report.wasted_compute += t - start;
                    killed.insert(a.op);
                    report.killed_ops.push(a.op);
                    continue;
                }
            }
            container_free.insert(a.container, end);
            actual_df.insert(a.op, (a.container, start, end));
            report.dataflow_ops += 1;
        }

        // Actual makespan and billing.
        let (mut first, mut last) = (SimTime::MAX, SimTime::ZERO);
        let mut spans: BTreeMap<ContainerId, (SimTime, SimTime)> = BTreeMap::new();
        for &(c, s, e) in actual_df.values() {
            first = first.min(s);
            last = last.max(e);
            let span = spans.entry(c).or_insert((SimTime::MAX, SimTime::ZERO));
            span.0 = span.0.min(s);
            span.1 = span.1.max(e);
        }
        report.makespan = if first == SimTime::MAX {
            SimDuration::ZERO
        } else {
            last - first
        };
        let mut busy: BTreeMap<ContainerId, SimDuration> = BTreeMap::new();
        for &(c, s, e) in actual_df.values() {
            *busy.entry(c).or_insert(SimDuration::ZERO) += e - s;
        }
        let mut leases: BTreeMap<ContainerId, (SimTime, SimTime)> = BTreeMap::new();
        for (&c, &(s, e)) in &spans {
            let ls = s.quantum_floor(quantum);
            let le = e.quantum_ceil(quantum).max(ls + quantum);
            leases.insert(c, (ls, le));
            report.leased_quanta += (le - ls).as_millis() / quantum.as_millis();
        }
        report.compute_cost =
            pricing::compute_cost(report.leased_quanta, self.config.vm_price_per_quantum);

        // Build operators: backfill real idle time in planned order.
        let mut per_container: BTreeMap<ContainerId, Vec<Assignment>> = BTreeMap::new();
        for a in schedule.assignments() {
            per_container.entry(a.container).or_default().push(*a);
        }
        for (c, mut assignments) in per_container {
            let revoke_at = revocations.get(&c).copied().unwrap_or(SimTime::MAX);
            let Some(&(lease_start, lease_end)) = leases.get(&c) else {
                // Container ran no dataflow op (never leased, or revoked
                // before anything survived): planned builds there never
                // run.
                for a in assignments.iter() {
                    if let Some(build) = a.build {
                        if revoke_at == SimTime::MAX {
                            report.killed_builds.push(build);
                        } else {
                            report.fault_killed_builds.push(build);
                        }
                    }
                }
                continue;
            };
            assignments.sort_by_key(|a| (a.start, a.end, a.op));
            let mut cursor = lease_start;
            for (i, a) in assignments.iter().enumerate() {
                match a.build {
                    None => {
                        match actual_df.get(&a.op) {
                            Some(&(_, _, e)) => cursor = cursor.max(e),
                            // A killed operator never arrived; it
                            // occupies no time on the container.
                            None if killed.contains(&a.op) => {}
                            None => {
                                return Err(FlowtuneError::invalid_schedule(format!(
                                    "assignment for {} references an operator the \
                                     dataflow pass never executed",
                                    a.op
                                )))
                            }
                        }
                    }
                    Some(build) => {
                        if cursor >= revoke_at {
                            // The container is gone; the build never
                            // starts.
                            report.fault_killed_builds.push(build);
                            continue;
                        }
                        // Window: from the cursor to the next dataflow
                        // op's actual start (preemption) or lease expiry.
                        let next_df_start = assignments[i + 1..]
                            .iter()
                            .filter(|b| !b.is_optional())
                            .filter_map(|b| actual_df.get(&b.op))
                            .map(|&(_, s, _)| s)
                            .next()
                            .unwrap_or(lease_end)
                            .min(lease_end);
                        let start = cursor;
                        let dur = build_durations.get(&build).copied().unwrap_or(a.duration());
                        let end = start + dur;
                        if end <= next_df_start && start < lease_end && end <= revoke_at {
                            // The slot fits — but the build can still
                            // crash mid-run, corrupt its artifact, or
                            // tear its final page write.
                            if let Some(fraction) = faults.crash_during_build() {
                                // Died partway: the prefix of its page
                                // image is flushed, the time is wasted,
                                // and the slot frees up at the crash
                                // instant.
                                let ran = dur.mul_f64(fraction);
                                report.crashed_builds.push(CrashedBuild { build, fraction });
                                report.wasted_compute += ran;
                                *busy.entry(c).or_insert(SimDuration::ZERO) += ran;
                                cursor = start + ran;
                                continue;
                            }
                            if faults.build_failure() {
                                report.failed_builds.push(build);
                            } else {
                                report.completed_builds.push(CompletedBuild {
                                    build,
                                    finished_at: end,
                                });
                                if faults.torn_page_write() {
                                    // Completed from the build's point
                                    // of view — only the recovery scan
                                    // can tell the image is torn.
                                    report.torn_builds.push(build);
                                }
                            }
                            *busy.entry(c).or_insert(SimDuration::ZERO) += dur;
                            cursor = end;
                        } else {
                            // Stopped early: by revocation, by the next
                            // dataflow op, or by lease expiry.
                            let stopped = next_df_start.min(revoke_at).max(start);
                            if revoke_at < end && revoke_at <= next_df_start {
                                report.fault_killed_builds.push(build);
                                report.wasted_compute += stopped - start;
                            } else {
                                report.killed_builds.push(build);
                            }
                            *busy.entry(c).or_insert(SimDuration::ZERO) += stopped - start;
                            cursor = stopped;
                        }
                    }
                }
            }
        }

        // Actual fragmentation: leased minus busy per container.
        for (&c, &(ls, le)) in &leases {
            let b = busy.get(&c).copied().unwrap_or(SimDuration::ZERO);
            let leased = le - ls;
            let waste = leased.saturating_sub(b);
            report.fragmentation += waste;
            flowtune_obs::obs_event!(
                "cloud.container",
                container = c.0,
                leased_ms = leased.as_millis(),
                busy_ms = b.as_millis(),
                waste_ms = waste.as_millis(),
                utilization = b.as_millis() as f64 / leased.as_millis().max(1) as f64,
            );
            flowtune_obs::observe(
                "cloud.utilization",
                b.as_millis() as f64 / leased.as_millis().max(1) as f64,
            );
            flowtune_obs::observe("cloud.quantum_waste_ms", waste.as_millis() as f64);
        }
        flowtune_obs::obs_event!(
            "cloud.exec",
            dataflow_ops = report.dataflow_ops,
            killed_ops = report.killed_ops.len(),
            completed_builds = report.completed_builds.len(),
            killed_builds = report.killed_builds.len(),
            failed_builds = report.failed_builds.len(),
            fault_killed_builds = report.fault_killed_builds.len(),
            leased_quanta = report.leased_quanta,
            makespan_ms = report.makespan.as_millis(),
            fragmentation_ms = report.fragmentation.as_millis(),
            storage_faults = report.storage_faults,
            straggler_ops = report.straggler_ops,
        );
        flowtune_obs::count("cloud.executions", 1);
        flowtune_obs::count("cloud.storage_faults", report.storage_faults);
        flowtune_obs::count("cloud.straggler_ops", report.straggler_ops);
        flowtune_obs::count("cloud.killed_ops", report.killed_ops.len() as u64);
        flowtune_obs::count("cloud.leased_quanta", report.leased_quanta);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::{BuildOpId, DataflowId};
    use flowtune_common::{OpId, SimRng};
    use flowtune_dataflow::{App, Dataflow, DataflowFactory, Edge, OpSpec};
    use flowtune_interleave::{BuildOp, LpInterleaver};
    use flowtune_sched::{SchedulerConfig, SkylineScheduler};

    fn filedb() -> FileDatabase {
        FileDatabase::generate(&mut SimRng::seed_from_u64(42))
    }

    fn cfg() -> CloudConfig {
        CloudConfig::default()
    }

    const Q: SimDuration = SimDuration::from_secs(60);

    /// A real dependency stall: `a` [0,10) on c0, `x` [0,40) on c1,
    /// `b` depends on both and runs on c0 — c0 idles in [10,40). A build
    /// op of `build_secs` is planned into that gap.
    fn stalled_with_build(build_secs: u64) -> (Dag, Schedule) {
        let dag = Dag::new(
            vec![
                OpSpec::new(OpId(0), "a", SimDuration::from_secs(10)),
                OpSpec::new(OpId(1), "x", SimDuration::from_secs(40)),
                OpSpec::new(OpId(2), "b", SimDuration::from_secs(10)),
            ],
            vec![
                Edge {
                    from: OpId(0),
                    to: OpId(2),
                    bytes: 0,
                },
                Edge {
                    from: OpId(1),
                    to: OpId(2),
                    bytes: 0,
                },
            ],
        )
        .unwrap();
        let mut schedule = Schedule::from_assignments(vec![
            Assignment {
                op: OpId(0),
                container: ContainerId(0),
                start: SimTime::ZERO,
                end: SimTime::from_secs(10),
                build: None,
            },
            Assignment {
                op: OpId(1),
                container: ContainerId(1),
                start: SimTime::ZERO,
                end: SimTime::from_secs(40),
                build: None,
            },
            Assignment {
                op: OpId(2),
                container: ContainerId(0),
                start: SimTime::from_secs(40),
                end: SimTime::from_secs(50),
                build: None,
            },
        ]);
        schedule
            .try_insert_build(
                ContainerId(0),
                SimTime::from_secs(10),
                SimTime::from_secs(10 + build_secs),
                OpId(1_000_000),
                BuildRef {
                    index: IndexId(0),
                    part: 0,
                },
                Q,
            )
            .unwrap();
        (dag, schedule)
    }

    #[test]
    fn build_completes_in_gap() {
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        let (dag, schedule) = stalled_with_build(20);
        let r = sim
            .execute(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .unwrap();
        assert_eq!(r.completed_builds.len(), 1);
        assert!(r.killed_builds.is_empty());
        assert_eq!(r.dataflow_ops, 3);
        // Build backfills the dependency stall: runs [10,30).
        assert_eq!(r.completed_builds[0].finished_at, SimTime::from_secs(30));
    }

    #[test]
    fn build_killed_by_preemption() {
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        // Planned 30 s into the [10,40) gap, but the build actually needs
        // 35 s: dataflow op b arrives at 40 and stops it.
        let (dag, schedule) = stalled_with_build(30);
        let durations: BTreeMap<BuildRef, SimDuration> = BTreeMap::from([(
            BuildRef {
                index: IndexId(0),
                part: 0,
            },
            SimDuration::from_secs(35),
        )]);
        let r = sim
            .execute(&dag, &schedule, &[], &IndexAvailability::new(), &durations)
            .unwrap();
        assert!(r.completed_builds.is_empty());
        assert_eq!(r.killed_builds.len(), 1);
        // The dataflow itself is unaffected by the kill.
        assert_eq!(r.makespan, SimDuration::from_secs(50));
    }

    #[test]
    fn build_killed_by_lease_expiry() {
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        // Single op [0,10); lease ends at 60. A 55 s build planned after
        // it cannot finish before expiry.
        let dag = Dag::new(
            vec![OpSpec::new(OpId(0), "a", SimDuration::from_secs(10))],
            vec![],
        )
        .unwrap();
        let mut schedule = Schedule::from_assignments(vec![Assignment {
            op: OpId(0),
            container: ContainerId(0),
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
            build: None,
        }]);
        schedule
            .try_insert_build(
                ContainerId(0),
                SimTime::from_secs(10),
                SimTime::from_secs(40),
                OpId(1_000_000),
                BuildRef {
                    index: IndexId(3),
                    part: 1,
                },
                Q,
            )
            .unwrap();
        let durations: BTreeMap<BuildRef, SimDuration> = BTreeMap::from([(
            BuildRef {
                index: IndexId(3),
                part: 1,
            },
            SimDuration::from_secs(55),
        )]);
        let r = sim
            .execute(&dag, &schedule, &[], &IndexAvailability::new(), &durations)
            .unwrap();
        assert!(r.completed_builds.is_empty());
        assert_eq!(r.killed_builds.len(), 1);
        assert_eq!(r.leased_quanta, 1);
    }

    #[test]
    fn makespan_reflects_actual_runtimes_not_planned() {
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        let (dag, schedule) = stalled_with_build(5);
        let r = sim
            .execute(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .unwrap();
        // Actual: a [0,10) c0, x [0,40) c1, b [40,50) c0.
        assert_eq!(r.makespan, SimDuration::from_secs(50));
        assert_eq!(r.leased_quanta, 2);
    }

    #[test]
    fn index_speedup_shrinks_runtime_and_reads_index() {
        let mut rng = SimRng::seed_from_u64(9);
        let db = FileDatabase::generate(&mut rng);
        let mut factory = DataflowFactory::new(db, 60, rng);
        // CyberShake: large files, many partitions -> indexes matter.
        let df: Dataflow = factory.make(DataflowId(0), App::Cybershake, SimTime::ZERO);
        let db = factory.filedb();
        let sim = Simulator::new(cfg(), db);
        let scheduler = SkylineScheduler::new(SchedulerConfig::default());
        let schedule = scheduler.schedule(&df.dag).remove(0);

        // No indexes.
        let none = sim
            .execute(
                &df.dag,
                &schedule,
                &df.index_uses,
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .unwrap();
        // All of this dataflow's indexes fully built.
        let mut avail = IndexAvailability::new();
        for u in &df.index_uses {
            for p in &db.file(u.file).partitions {
                // Index partitions are smaller than the data partitions.
                avail.add(u.index, p.id.part, p.bytes / 8);
            }
        }
        let with = sim
            .execute(&df.dag, &schedule, &df.index_uses, &avail, &BTreeMap::new())
            .unwrap();
        assert!(
            with.makespan < none.makespan,
            "indexes must speed up execution: {} vs {}",
            with.makespan,
            none.makespan
        );
        assert!(with.bytes_from_storage < none.bytes_from_storage);
    }

    #[test]
    fn repeated_reads_hit_the_cache() {
        // Two ops on one container reading the same partition.
        let mut rng = SimRng::seed_from_u64(10);
        let db = FileDatabase::generate(&mut rng);
        let pid = db.files()[0].partitions[0].id;
        let dag = Dag::new(
            vec![
                OpSpec::new(OpId(0), "r1", SimDuration::from_secs(5)).with_reads(vec![pid]),
                OpSpec::new(OpId(1), "r2", SimDuration::from_secs(5)).with_reads(vec![pid]),
            ],
            vec![Edge {
                from: OpId(0),
                to: OpId(1),
                bytes: 0,
            }],
        )
        .unwrap();
        let schedule = Schedule::from_assignments(vec![
            Assignment {
                op: OpId(0),
                container: ContainerId(0),
                start: SimTime::ZERO,
                end: SimTime::from_secs(5),
                build: None,
            },
            Assignment {
                op: OpId(1),
                container: ContainerId(0),
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(10),
                build: None,
            },
        ]);
        let sim = Simulator::new(cfg(), &db);
        let r = sim
            .execute(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .unwrap();
        assert_eq!(r.cache_hits, 1);
        assert_eq!(r.cache_misses, 1);
    }

    #[test]
    fn availability_remove_supports_invalidate_and_rebuild() {
        let mut avail = IndexAvailability::new();
        // build -> fail -> invalidate -> rebuild lifecycle.
        avail.add(IndexId(4), 2, 1024);
        assert!(avail.is_built(IndexId(4), 2));
        assert_eq!(avail.remove(IndexId(4), 2), Some(1024));
        assert!(!avail.is_built(IndexId(4), 2));
        assert_eq!(avail.bytes(IndexId(4), 2), None);
        assert_eq!(avail.remove(IndexId(4), 2), None, "already invalidated");
        assert!(avail.is_empty());
        avail.add(IndexId(4), 2, 2048);
        assert_eq!(avail.bytes(IndexId(4), 2), Some(2048));
        assert_eq!(avail.len(), 1);
    }

    /// An always-firing injector whose revocation lands inside c0's
    /// span kills ops there (directly or transitively) while c1's
    /// operator can still finish.
    #[test]
    fn revocation_kills_ops_and_is_accounted() {
        use crate::fault::{FaultConfig, FaultPlan};
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        let (dag, schedule) = stalled_with_build(20);
        let config = FaultConfig {
            rate: 1.0,
            revocation_share: 1.0,
            storage_share: 0.0,
            straggler_share: 0.0,
            build_failure_share: 0.0,
            ..Default::default()
        };
        let mut inj = FaultPlan::new(config).injector(0, 0);
        let r = sim
            .execute_with_faults(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
                &mut inj,
            )
            .unwrap();
        // Both containers are revoked at rate 1.0; every op is either
        // executed or killed, and every build is accounted somewhere.
        assert_eq!(r.revoked_containers.len(), 2);
        assert_eq!(r.dataflow_ops + r.killed_ops.len(), dag.len());
        assert!(!r.killed_ops.is_empty(), "rate-1.0 revocation killed no op");
        assert!(!r.completed());
        assert_eq!(
            r.build_ops_attempted(),
            schedule.build_assignments().count()
        );
    }

    #[test]
    fn build_failure_is_reported_not_completed() {
        use crate::fault::{FaultConfig, FaultPlan};
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        let (dag, schedule) = stalled_with_build(20);
        let config = FaultConfig {
            rate: 1.0,
            revocation_share: 0.0,
            storage_share: 0.0,
            straggler_share: 0.0,
            build_failure_share: 1.0,
            ..Default::default()
        };
        let mut inj = FaultPlan::new(config).injector(0, 0);
        let r = sim
            .execute_with_faults(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
                &mut inj,
            )
            .unwrap();
        // The build runs to completion in the gap but the artifact is
        // corrupt: reported as failed, never as completed.
        assert!(r.completed_builds.is_empty());
        assert_eq!(r.failed_builds.len(), 1);
        assert!(r.completed(), "build failure must not kill the dataflow");
        assert_eq!(r.makespan, SimDuration::from_secs(50));
    }

    #[test]
    fn crash_during_build_wastes_partial_compute() {
        use crate::fault::{FaultConfig, FaultPlan};
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        let (dag, schedule) = stalled_with_build(20);
        let config = FaultConfig {
            rate: 1.0,
            revocation_share: 0.0,
            storage_share: 0.0,
            straggler_share: 0.0,
            build_failure_share: 0.0,
            crash_build_share: 1.0,
            ..Default::default()
        };
        let mut inj = FaultPlan::new(config).injector(0, 0);
        let r = sim
            .execute_with_faults(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
                &mut inj,
            )
            .unwrap();
        // The build dies partway: never completed, its partial runtime
        // is wasted compute, and the dataflow itself is unharmed.
        assert!(r.completed_builds.is_empty());
        assert!(r.failed_builds.is_empty());
        assert_eq!(r.crashed_builds.len(), 1);
        let crash = r.crashed_builds[0];
        assert!((0.05..0.95).contains(&crash.fraction));
        let expect = SimDuration::from_secs(20).mul_f64(crash.fraction);
        assert_eq!(r.wasted_compute, expect);
        assert!(r.completed(), "build crash must not kill the dataflow");
        assert_eq!(r.build_ops_attempted(), 1);
    }

    #[test]
    fn torn_write_still_counts_as_completed() {
        use crate::fault::{FaultConfig, FaultPlan};
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        let (dag, schedule) = stalled_with_build(20);
        let config = FaultConfig {
            rate: 1.0,
            revocation_share: 0.0,
            storage_share: 0.0,
            straggler_share: 0.0,
            build_failure_share: 0.0,
            torn_write_share: 1.0,
            ..Default::default()
        };
        let mut inj = FaultPlan::new(config).injector(0, 0);
        let r = sim
            .execute_with_faults(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
                &mut inj,
            )
            .unwrap();
        // A torn build looks successful to the executor — the tear is
        // only visible to the recovery scan.
        assert_eq!(r.completed_builds.len(), 1);
        assert_eq!(r.torn_builds, vec![r.completed_builds[0].build]);
        assert_eq!(r.build_ops_attempted(), 1);
        assert_eq!(r.wasted_compute, SimDuration::ZERO);
    }

    #[test]
    fn stragglers_inflate_the_makespan() {
        use crate::fault::{FaultConfig, FaultPlan};
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        let (dag, schedule) = stalled_with_build(20);
        let config = FaultConfig {
            rate: 1.0,
            revocation_share: 0.0,
            storage_share: 0.0,
            straggler_share: 1.0,
            build_failure_share: 0.0,
            straggler_factor: 2.0,
            ..Default::default()
        };
        let mut inj = FaultPlan::new(config).injector(0, 0);
        let r = sim
            .execute_with_faults(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
                &mut inj,
            )
            .unwrap();
        // Everything straggles ×2: a 0-10/0-40/40-50 plan becomes
        // 0-20/0-80/80-100.
        assert_eq!(r.straggler_ops, 3);
        assert_eq!(r.makespan, SimDuration::from_secs(100));
        assert!(r.completed());
    }

    #[test]
    fn inactive_injector_matches_plain_execute() {
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        let (dag, schedule) = stalled_with_build(20);
        let plain = sim
            .execute(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .unwrap();
        let mut inj = FaultInjector::none();
        let with = sim
            .execute_with_faults(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
                &mut inj,
            )
            .unwrap();
        assert_eq!(format!("{plain:?}"), format!("{with:?}"));
    }

    #[test]
    fn out_of_order_schedule_is_a_typed_error() {
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        let dag = Dag::new(
            vec![
                OpSpec::new(OpId(0), "a", SimDuration::from_secs(10)),
                OpSpec::new(OpId(1), "b", SimDuration::from_secs(10)),
            ],
            vec![Edge {
                from: OpId(0),
                to: OpId(1),
                bytes: 0,
            }],
        )
        .unwrap();
        // The successor is planned *before* its predecessor.
        let schedule = Schedule::from_assignments(vec![
            Assignment {
                op: OpId(1),
                container: ContainerId(0),
                start: SimTime::ZERO,
                end: SimTime::from_secs(10),
                build: None,
            },
            Assignment {
                op: OpId(0),
                container: ContainerId(0),
                start: SimTime::from_secs(10),
                end: SimTime::from_secs(20),
                build: None,
            },
        ]);
        let err = sim
            .execute(
                &dag,
                &schedule,
                &[],
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("predecessor"), "{err}");
    }

    #[test]
    fn end_to_end_interleaved_scientific_run() {
        let mut rng = SimRng::seed_from_u64(11);
        let db = FileDatabase::generate(&mut rng);
        let mut factory = DataflowFactory::new(db, 100, rng);
        let df = factory.make(DataflowId(0), App::Cybershake, SimTime::ZERO);
        let db = factory.filedb();
        let scheduler = SkylineScheduler::new(SchedulerConfig::default());
        let mut schedule = scheduler.schedule(&df.dag).remove(0);
        let pending: Vec<BuildOp> = (0..40)
            .map(|i| BuildOp {
                id: BuildOpId(i),
                build: BuildRef {
                    index: IndexId(i),
                    part: 0,
                },
                duration: SimDuration::from_secs(5 + (i as u64 % 17)),
                gain: 1.0 + i as f64,
            })
            .collect();
        LpInterleaver::new(Q).interleave(&mut schedule, &pending);
        let sim = Simulator::new(cfg(), db);
        let r = sim
            .execute(
                &df.dag,
                &schedule,
                &df.index_uses,
                &IndexAvailability::new(),
                &BTreeMap::new(),
            )
            .unwrap();
        assert_eq!(r.dataflow_ops, df.dag.len());
        assert!(r.makespan > SimDuration::ZERO);
        assert!(r.leased_quanta > 0);
        // Everything scheduled was either completed or killed.
        assert_eq!(
            r.build_ops_attempted(),
            schedule.build_assignments().count()
        );
        assert!(r.fragmentation > SimDuration::ZERO || r.completed_builds.is_empty());
    }
}
