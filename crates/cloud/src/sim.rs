//! Schedule execution.
//!
//! The simulator replays a (possibly interleaved) schedule against the
//! *actual* DAG. Dataflow operators keep their planned container and
//! per-container order but their times are recomputed from actual
//! runtimes, dependency completion and input transfers. Build operators
//! backfill whatever idle time really materialises and are killed by the
//! next dataflow operator or by lease expiry — they can never delay the
//! dataflow (priority −1).

use std::collections::BTreeMap;

use flowtune_common::{
    pricing, CloudConfig, ContainerId, IndexId, PartitionId, SimDuration, SimTime,
};
use flowtune_dataflow::{Dag, FileDatabase, IndexUse};
use flowtune_sched::{Assignment, BuildRef, Schedule};
use flowtune_storage::LruCache;

use crate::report::{CompletedBuild, ExecutionReport};

/// Which index partitions exist (and their sizes) at execution time.
#[derive(Debug, Clone, Default)]
pub struct IndexAvailability {
    built: BTreeMap<(IndexId, u32), u64>,
}

impl IndexAvailability {
    /// Nothing built.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that partition `part` of `index` is built with the given
    /// size.
    pub fn add(&mut self, index: IndexId, part: u32, bytes: u64) {
        self.built.insert((index, part), bytes);
    }

    /// Size of a built index partition, `None` when not built.
    pub fn bytes(&self, index: IndexId, part: u32) -> Option<u64> {
        self.built.get(&(index, part)).copied()
    }

    /// True when the index partition is built.
    pub fn is_built(&self, index: IndexId, part: u32) -> bool {
        self.built.contains_key(&(index, part))
    }

    /// Number of built index partitions.
    pub fn len(&self) -> usize {
        self.built.len()
    }

    /// True when nothing is built.
    pub fn is_empty(&self) -> bool {
        self.built.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CacheKey {
    Partition(PartitionId),
    IndexPart(IndexId, u32),
}

/// The execution simulator.
#[derive(Debug)]
pub struct Simulator<'a> {
    config: CloudConfig,
    filedb: &'a FileDatabase,
}

impl<'a> Simulator<'a> {
    /// Create a simulator over a cloud model and file database.
    pub fn new(config: CloudConfig, filedb: &'a FileDatabase) -> Self {
        Simulator { config, filedb }
    }

    /// The cloud configuration in use.
    pub fn config(&self) -> &CloudConfig {
        &self.config
    }

    /// Execute a schedule.
    ///
    /// * `actual` — the DAG with actual runtimes/data sizes (use
    ///   [`crate::perturb_dag`] to derive it from the estimated DAG).
    /// * `schedule` — the planned, possibly interleaved schedule.
    /// * `index_uses` — the dataflow's usable indexes with speedups.
    /// * `availability` — which index partitions exist right now.
    /// * `build_durations` — actual build times per build ref (planned
    ///   duration assumed when absent).
    pub fn execute(
        &self,
        actual: &Dag,
        schedule: &Schedule,
        index_uses: &[IndexUse],
        availability: &IndexAvailability,
        build_durations: &BTreeMap<BuildRef, SimDuration>,
    ) -> ExecutionReport {
        let mut report = ExecutionReport::default();
        let quantum = self.config.quantum;

        // Best usable index per file for this dataflow.
        let mut best_index: BTreeMap<flowtune_common::FileId, IndexUse> = BTreeMap::new();
        for u in index_uses {
            let entry = best_index.entry(u.file).or_insert(*u);
            if u.speedup > entry.speedup {
                *entry = *u;
            }
        }

        // Per-container state.
        let mut caches: BTreeMap<ContainerId, LruCache<CacheKey>> = BTreeMap::new();
        let mut container_free: BTreeMap<ContainerId, SimTime> = BTreeMap::new();
        let mut actual_df: BTreeMap<flowtune_common::OpId, (ContainerId, SimTime, SimTime)> =
            BTreeMap::new();

        // Dataflow ops in planned order (valid: planned starts respect
        // both dependency and per-container order).
        let mut df_assignments: Vec<Assignment> =
            schedule.dataflow_assignments().copied().collect();
        df_assignments.sort_by_key(|a| (a.start, a.end, a.op));

        for a in &df_assignments {
            let op = actual.op(a.op);
            let cache = caches
                .entry(a.container)
                .or_insert_with(|| LruCache::new(self.config.disk_capacity_bytes));
            // Dependency readiness with cross-container transfer.
            let mut ready = SimTime::ZERO;
            for &p in actual.preds(a.op) {
                let &(pc, _, pend) = actual_df
                    .get(&p)
                    // flowtune-allow(panic-hygiene): Schedule::validate guarantees predecessors precede successors in planned order
                    .expect("planned order must process predecessors first");
                let mut t = pend;
                if pc != a.container {
                    t += self.config.network_transfer(actual.edge_bytes(p, a.op));
                }
                ready = ready.max(t);
            }
            let free = container_free
                .get(&a.container)
                .copied()
                .unwrap_or(SimTime::ZERO);
            let start = ready.max(free);
            // Input transfers and index acceleration.
            let mut transfer_in = SimDuration::ZERO;
            let mut inv_speed_sum = 0.0f64;
            for pid in &op.reads {
                let key = CacheKey::Partition(*pid);
                let bytes = self.filedb.partition(*pid).bytes;
                // The indexed path reads the index partition instead of
                // scanning the whole input partition.
                let idx = best_index
                    .get(&pid.file)
                    .and_then(|u| availability.bytes(u.index, pid.part).map(|b| (*u, b)));
                match idx {
                    Some((u, idx_bytes)) => {
                        report.accelerated_reads += 1;
                        inv_speed_sum += 1.0 / u.speedup;
                        let ikey = CacheKey::IndexPart(u.index, pid.part);
                        if cache.get(&ikey) {
                            report.cache_hits += 1;
                        } else {
                            report.cache_misses += 1;
                            report.bytes_from_storage += idx_bytes;
                            transfer_in += self.config.network_transfer(idx_bytes);
                            cache.insert(ikey, idx_bytes);
                        }
                    }
                    None => {
                        report.plain_reads += 1;
                        inv_speed_sum += 1.0;
                        if cache.get(&key) {
                            report.cache_hits += 1;
                        } else {
                            report.cache_misses += 1;
                            report.bytes_from_storage += bytes;
                            transfer_in += self.config.network_transfer(bytes);
                            cache.insert(key, bytes);
                        }
                    }
                }
            }
            let eff_runtime = if op.reads.is_empty() {
                op.runtime
            } else {
                op.runtime.mul_f64(inv_speed_sum / op.reads.len() as f64)
            };
            let end = start + transfer_in + eff_runtime;
            container_free.insert(a.container, end);
            actual_df.insert(a.op, (a.container, start, end));
            report.dataflow_ops += 1;
        }

        // Actual makespan and billing.
        let (mut first, mut last) = (SimTime::MAX, SimTime::ZERO);
        let mut spans: BTreeMap<ContainerId, (SimTime, SimTime)> = BTreeMap::new();
        for &(c, s, e) in actual_df.values() {
            first = first.min(s);
            last = last.max(e);
            let span = spans.entry(c).or_insert((SimTime::MAX, SimTime::ZERO));
            span.0 = span.0.min(s);
            span.1 = span.1.max(e);
        }
        report.makespan = if first == SimTime::MAX {
            SimDuration::ZERO
        } else {
            last - first
        };
        let mut busy: BTreeMap<ContainerId, SimDuration> = BTreeMap::new();
        for &(c, s, e) in actual_df.values() {
            *busy.entry(c).or_insert(SimDuration::ZERO) += e - s;
        }
        let mut leases: BTreeMap<ContainerId, (SimTime, SimTime)> = BTreeMap::new();
        for (&c, &(s, e)) in &spans {
            let ls = s.quantum_floor(quantum);
            let le = e.quantum_ceil(quantum).max(ls + quantum);
            leases.insert(c, (ls, le));
            report.leased_quanta += (le - ls).as_millis() / quantum.as_millis();
        }
        report.compute_cost =
            pricing::compute_cost(report.leased_quanta, self.config.vm_price_per_quantum);

        // Build operators: backfill real idle time in planned order.
        let mut per_container: BTreeMap<ContainerId, Vec<Assignment>> = BTreeMap::new();
        for a in schedule.assignments() {
            per_container.entry(a.container).or_default().push(*a);
        }
        for (c, mut assignments) in per_container {
            let Some(&(lease_start, lease_end)) = leases.get(&c) else {
                // Container has no dataflow ops -> never leased; any
                // planned builds there are killed outright.
                for a in assignments.iter().filter(|a| a.is_optional()) {
                    report
                        .killed_builds
                        // flowtune-allow(panic-hygiene): is_optional() is defined as build.is_some()
                        .push(a.build.expect("optional has build"));
                }
                continue;
            };
            assignments.sort_by_key(|a| (a.start, a.end, a.op));
            let mut cursor = lease_start;
            for (i, a) in assignments.iter().enumerate() {
                match a.build {
                    None => {
                        // flowtune-allow(panic-hygiene): every dataflow assignment was executed in the first pass above
                        let &(_, _, e) = actual_df.get(&a.op).expect("df op executed");
                        cursor = cursor.max(e);
                    }
                    Some(build) => {
                        // Window: from the cursor to the next dataflow
                        // op's actual start (preemption) or lease expiry.
                        let next_df_start = assignments[i + 1..]
                            .iter()
                            .filter(|b| !b.is_optional())
                            // flowtune-allow(panic-hygiene): every dataflow assignment was executed in the first pass above
                            .map(|b| actual_df.get(&b.op).expect("df op executed").1)
                            .next()
                            .unwrap_or(lease_end)
                            .min(lease_end);
                        let start = cursor;
                        let dur = build_durations.get(&build).copied().unwrap_or(a.duration());
                        let end = start + dur;
                        if end <= next_df_start && start < lease_end {
                            report.completed_builds.push(CompletedBuild {
                                build,
                                finished_at: end,
                            });
                            *busy.entry(c).or_insert(SimDuration::ZERO) += dur;
                            cursor = end;
                        } else {
                            report.killed_builds.push(build);
                            let stopped = next_df_start.max(start);
                            *busy.entry(c).or_insert(SimDuration::ZERO) +=
                                stopped - start.min(stopped);
                            cursor = stopped;
                        }
                    }
                }
            }
        }

        // Actual fragmentation: leased minus busy per container.
        for (&c, &(ls, le)) in &leases {
            let b = busy.get(&c).copied().unwrap_or(SimDuration::ZERO);
            report.fragmentation += (le - ls).saturating_sub(b);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::{BuildOpId, DataflowId};
    use flowtune_common::{OpId, SimRng};
    use flowtune_dataflow::{App, Dataflow, DataflowFactory, Edge, OpSpec};
    use flowtune_interleave::{BuildOp, LpInterleaver};
    use flowtune_sched::{SchedulerConfig, SkylineScheduler};

    fn filedb() -> FileDatabase {
        FileDatabase::generate(&mut SimRng::seed_from_u64(42))
    }

    fn cfg() -> CloudConfig {
        CloudConfig::default()
    }

    const Q: SimDuration = SimDuration::from_secs(60);

    /// A real dependency stall: `a` [0,10) on c0, `x` [0,40) on c1,
    /// `b` depends on both and runs on c0 — c0 idles in [10,40). A build
    /// op of `build_secs` is planned into that gap.
    fn stalled_with_build(build_secs: u64) -> (Dag, Schedule) {
        let dag = Dag::new(
            vec![
                OpSpec::new(OpId(0), "a", SimDuration::from_secs(10)),
                OpSpec::new(OpId(1), "x", SimDuration::from_secs(40)),
                OpSpec::new(OpId(2), "b", SimDuration::from_secs(10)),
            ],
            vec![
                Edge {
                    from: OpId(0),
                    to: OpId(2),
                    bytes: 0,
                },
                Edge {
                    from: OpId(1),
                    to: OpId(2),
                    bytes: 0,
                },
            ],
        )
        .unwrap();
        let mut schedule = Schedule::from_assignments(vec![
            Assignment {
                op: OpId(0),
                container: ContainerId(0),
                start: SimTime::ZERO,
                end: SimTime::from_secs(10),
                build: None,
            },
            Assignment {
                op: OpId(1),
                container: ContainerId(1),
                start: SimTime::ZERO,
                end: SimTime::from_secs(40),
                build: None,
            },
            Assignment {
                op: OpId(2),
                container: ContainerId(0),
                start: SimTime::from_secs(40),
                end: SimTime::from_secs(50),
                build: None,
            },
        ]);
        schedule
            .try_insert_build(
                ContainerId(0),
                SimTime::from_secs(10),
                SimTime::from_secs(10 + build_secs),
                OpId(1_000_000),
                BuildRef {
                    index: IndexId(0),
                    part: 0,
                },
                Q,
            )
            .unwrap();
        (dag, schedule)
    }

    #[test]
    fn build_completes_in_gap() {
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        let (dag, schedule) = stalled_with_build(20);
        let r = sim.execute(
            &dag,
            &schedule,
            &[],
            &IndexAvailability::new(),
            &BTreeMap::new(),
        );
        assert_eq!(r.completed_builds.len(), 1);
        assert!(r.killed_builds.is_empty());
        assert_eq!(r.dataflow_ops, 3);
        // Build backfills the dependency stall: runs [10,30).
        assert_eq!(r.completed_builds[0].finished_at, SimTime::from_secs(30));
    }

    #[test]
    fn build_killed_by_preemption() {
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        // Planned 30 s into the [10,40) gap, but the build actually needs
        // 35 s: dataflow op b arrives at 40 and stops it.
        let (dag, schedule) = stalled_with_build(30);
        let durations: BTreeMap<BuildRef, SimDuration> = BTreeMap::from([(
            BuildRef {
                index: IndexId(0),
                part: 0,
            },
            SimDuration::from_secs(35),
        )]);
        let r = sim.execute(&dag, &schedule, &[], &IndexAvailability::new(), &durations);
        assert!(r.completed_builds.is_empty());
        assert_eq!(r.killed_builds.len(), 1);
        // The dataflow itself is unaffected by the kill.
        assert_eq!(r.makespan, SimDuration::from_secs(50));
    }

    #[test]
    fn build_killed_by_lease_expiry() {
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        // Single op [0,10); lease ends at 60. A 55 s build planned after
        // it cannot finish before expiry.
        let dag = Dag::new(
            vec![OpSpec::new(OpId(0), "a", SimDuration::from_secs(10))],
            vec![],
        )
        .unwrap();
        let mut schedule = Schedule::from_assignments(vec![Assignment {
            op: OpId(0),
            container: ContainerId(0),
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
            build: None,
        }]);
        schedule
            .try_insert_build(
                ContainerId(0),
                SimTime::from_secs(10),
                SimTime::from_secs(40),
                OpId(1_000_000),
                BuildRef {
                    index: IndexId(3),
                    part: 1,
                },
                Q,
            )
            .unwrap();
        let durations: BTreeMap<BuildRef, SimDuration> = BTreeMap::from([(
            BuildRef {
                index: IndexId(3),
                part: 1,
            },
            SimDuration::from_secs(55),
        )]);
        let r = sim.execute(&dag, &schedule, &[], &IndexAvailability::new(), &durations);
        assert!(r.completed_builds.is_empty());
        assert_eq!(r.killed_builds.len(), 1);
        assert_eq!(r.leased_quanta, 1);
    }

    #[test]
    fn makespan_reflects_actual_runtimes_not_planned() {
        let db = filedb();
        let sim = Simulator::new(cfg(), &db);
        let (dag, schedule) = stalled_with_build(5);
        let r = sim.execute(
            &dag,
            &schedule,
            &[],
            &IndexAvailability::new(),
            &BTreeMap::new(),
        );
        // Actual: a [0,10) c0, x [0,40) c1, b [40,50) c0.
        assert_eq!(r.makespan, SimDuration::from_secs(50));
        assert_eq!(r.leased_quanta, 2);
    }

    #[test]
    fn index_speedup_shrinks_runtime_and_reads_index() {
        let mut rng = SimRng::seed_from_u64(9);
        let db = FileDatabase::generate(&mut rng);
        let mut factory = DataflowFactory::new(db, 60, rng);
        // CyberShake: large files, many partitions -> indexes matter.
        let df: Dataflow = factory.make(DataflowId(0), App::Cybershake, SimTime::ZERO);
        let db = factory.filedb();
        let sim = Simulator::new(cfg(), db);
        let scheduler = SkylineScheduler::new(SchedulerConfig::default());
        let schedule = scheduler.schedule(&df.dag).remove(0);

        // No indexes.
        let none = sim.execute(
            &df.dag,
            &schedule,
            &df.index_uses,
            &IndexAvailability::new(),
            &BTreeMap::new(),
        );
        // All of this dataflow's indexes fully built.
        let mut avail = IndexAvailability::new();
        for u in &df.index_uses {
            for p in &db.file(u.file).partitions {
                // Index partitions are smaller than the data partitions.
                avail.add(u.index, p.id.part, p.bytes / 8);
            }
        }
        let with = sim.execute(&df.dag, &schedule, &df.index_uses, &avail, &BTreeMap::new());
        assert!(
            with.makespan < none.makespan,
            "indexes must speed up execution: {} vs {}",
            with.makespan,
            none.makespan
        );
        assert!(with.bytes_from_storage < none.bytes_from_storage);
    }

    #[test]
    fn repeated_reads_hit_the_cache() {
        // Two ops on one container reading the same partition.
        let mut rng = SimRng::seed_from_u64(10);
        let db = FileDatabase::generate(&mut rng);
        let pid = db.files()[0].partitions[0].id;
        let dag = Dag::new(
            vec![
                OpSpec::new(OpId(0), "r1", SimDuration::from_secs(5)).with_reads(vec![pid]),
                OpSpec::new(OpId(1), "r2", SimDuration::from_secs(5)).with_reads(vec![pid]),
            ],
            vec![Edge {
                from: OpId(0),
                to: OpId(1),
                bytes: 0,
            }],
        )
        .unwrap();
        let schedule = Schedule::from_assignments(vec![
            Assignment {
                op: OpId(0),
                container: ContainerId(0),
                start: SimTime::ZERO,
                end: SimTime::from_secs(5),
                build: None,
            },
            Assignment {
                op: OpId(1),
                container: ContainerId(0),
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(10),
                build: None,
            },
        ]);
        let sim = Simulator::new(cfg(), &db);
        let r = sim.execute(
            &dag,
            &schedule,
            &[],
            &IndexAvailability::new(),
            &BTreeMap::new(),
        );
        assert_eq!(r.cache_hits, 1);
        assert_eq!(r.cache_misses, 1);
    }

    #[test]
    fn end_to_end_interleaved_scientific_run() {
        let mut rng = SimRng::seed_from_u64(11);
        let db = FileDatabase::generate(&mut rng);
        let mut factory = DataflowFactory::new(db, 100, rng);
        let df = factory.make(DataflowId(0), App::Cybershake, SimTime::ZERO);
        let db = factory.filedb();
        let scheduler = SkylineScheduler::new(SchedulerConfig::default());
        let mut schedule = scheduler.schedule(&df.dag).remove(0);
        let pending: Vec<BuildOp> = (0..40)
            .map(|i| BuildOp {
                id: BuildOpId(i),
                build: BuildRef {
                    index: IndexId(i),
                    part: 0,
                },
                duration: SimDuration::from_secs(5 + (i as u64 % 17)),
                gain: 1.0 + i as f64,
            })
            .collect();
        LpInterleaver::new(Q).interleave(&mut schedule, &pending);
        let sim = Simulator::new(cfg(), db);
        let r = sim.execute(
            &df.dag,
            &schedule,
            &df.index_uses,
            &IndexAvailability::new(),
            &BTreeMap::new(),
        );
        assert_eq!(r.dataflow_ops, df.dag.len());
        assert!(r.makespan > SimDuration::ZERO);
        assert!(r.leased_quanta > 0);
        // Everything scheduled was either completed or killed.
        assert_eq!(
            r.build_ops_attempted(),
            schedule.build_assignments().count()
        );
        assert!(r.fragmentation > SimDuration::ZERO || r.completed_builds.is_empty());
    }
}
