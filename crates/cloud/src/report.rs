//! Execution reports produced by the simulator.

use flowtune_common::{ContainerId, Money, OpId, SimDuration, SimTime};
use flowtune_sched::BuildRef;

/// A build operator that finished inside the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedBuild {
    /// What was built.
    pub build: BuildRef,
    /// When (schedule-relative) the build finished.
    pub finished_at: SimTime,
}

/// A build operator that crashed partway through, leaving a partial
/// page image behind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashedBuild {
    /// What was being built.
    pub build: BuildRef,
    /// Fraction of the build's runtime (and of its page image) that
    /// completed before the crash, in `(0, 1)`.
    pub fraction: f64,
}

/// What actually happened when a schedule was executed.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Actual execution time of the dataflow (first op start to last op
    /// finish).
    pub makespan: SimDuration,
    /// Whole quanta leased across containers (actual).
    pub leased_quanta: u64,
    /// Compute cost (leased quanta × VM price).
    pub compute_cost: Money,
    /// Dataflow operators executed.
    pub dataflow_ops: usize,
    /// Build operators that ran to completion.
    pub completed_builds: Vec<CompletedBuild>,
    /// Build operators stopped by preemption or lease expiry (requeued
    /// by the service; Table 7's "killed" count).
    pub killed_builds: Vec<BuildRef>,
    /// Actual idle time left on leased containers after execution.
    pub fragmentation: SimDuration,
    /// Container-local cache hits while reading input partitions.
    pub cache_hits: u64,
    /// Cache misses (reads that went to the storage service).
    pub cache_misses: u64,
    /// Bytes downloaded from the storage service (inputs + indexes).
    pub bytes_from_storage: u64,
    /// Partition reads served through a built index (accelerated).
    pub accelerated_reads: u64,
    /// Partition reads served by scanning the raw partition.
    pub plain_reads: u64,
    /// Dataflow operators killed by a container revocation (directly or
    /// transitively through a killed predecessor). Empty on a fault-free
    /// run; non-empty means the dataflow did **not** complete.
    pub killed_ops: Vec<OpId>,
    /// Containers revoked by the (injected) provider during execution.
    pub revoked_containers: Vec<ContainerId>,
    /// Build operators stopped by a container revocation — distinct from
    /// `killed_builds` (preemption / quantum expiry) for the fault
    /// accounting.
    pub fault_killed_builds: Vec<BuildRef>,
    /// Build operators that ran to completion but produced a corrupt
    /// partition; the partition must be invalidated, never marked
    /// available.
    pub failed_builds: Vec<BuildRef>,
    /// Build operators that crashed partway through, leaving a partial
    /// page image whose unflushed tail pages are missing from the
    /// store; the compute already spent is wasted.
    pub crashed_builds: Vec<CrashedBuild>,
    /// Build operators that ran to completion but tore their final page
    /// write — detectable only by the post-crash checksum scan, never
    /// by the build's own exit status.
    pub torn_builds: Vec<BuildRef>,
    /// Transient storage faults (reads reissued against the storage
    /// service).
    pub storage_faults: u64,
    /// Operators whose runtime was inflated by a straggler fault.
    pub straggler_ops: u64,
    /// Busy compute time lost to revocations (partially executed
    /// operators and builds whose work was discarded).
    pub wasted_compute: SimDuration,
}

impl ExecutionReport {
    /// Total build operators attempted (completed + killed + failed +
    /// crashed). Torn builds are *not* added: they ran to completion
    /// and already appear in `completed_builds`.
    pub fn build_ops_attempted(&self) -> usize {
        self.completed_builds.len()
            + self.killed_builds.len()
            + self.fault_killed_builds.len()
            + self.failed_builds.len()
            + self.crashed_builds.len()
    }

    /// True when every dataflow operator ran to completion.
    pub fn completed(&self) -> bool {
        self.killed_ops.is_empty()
    }

    /// Total operators executed (dataflow + attempted builds) — the unit
    /// Table 7 counts.
    pub fn total_ops(&self) -> usize {
        self.dataflow_ops + self.build_ops_attempted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::IndexId;

    #[test]
    fn counters_add_up() {
        let mut r = ExecutionReport {
            dataflow_ops: 100,
            ..Default::default()
        };
        r.completed_builds.push(CompletedBuild {
            build: BuildRef {
                index: IndexId(0),
                part: 0,
            },
            finished_at: SimTime::from_secs(30),
        });
        r.killed_builds.push(BuildRef {
            index: IndexId(1),
            part: 2,
        });
        assert_eq!(r.build_ops_attempted(), 2);
        assert_eq!(r.total_ops(), 102);
        assert!(r.completed());
        // Fault-killed and failed builds count as attempts too.
        r.fault_killed_builds.push(BuildRef {
            index: IndexId(2),
            part: 0,
        });
        r.failed_builds.push(BuildRef {
            index: IndexId(3),
            part: 1,
        });
        assert_eq!(r.build_ops_attempted(), 4);
        // A crashed build is an attempt; a torn build already counts
        // through completed_builds and must not be double-counted.
        r.crashed_builds.push(CrashedBuild {
            build: BuildRef {
                index: IndexId(4),
                part: 0,
            },
            fraction: 0.4,
        });
        r.torn_builds.push(BuildRef {
            index: IndexId(0),
            part: 0,
        });
        assert_eq!(r.build_ops_attempted(), 5);
        r.killed_ops.push(OpId(7));
        assert!(!r.completed());
    }
}
