//! # flowtune-core
//!
//! The QaaS service (Fig. 1): data scientists issue dataflows
//! sequentially; the service tunes indexes online (Alg. 1), schedules
//! each dataflow (skyline or load-balance scheduler), interleaves
//! build-index operators into the schedule's idle slots (LP or online
//! interleaving), executes on the simulated cloud, and maintains the
//! evolving index set `I(t)` — creating indexes when they become
//! beneficial and deleting them when they stop being so.
//!
//! This crate is the public entry point of the workspace:
//!
//! ```
//! use flowtune_core::{IndexPolicy, ServiceConfig, QaasService};
//! use flowtune_dataflow::WorkloadKind;
//!
//! let mut config = ServiceConfig::default();
//! config.params.total_quanta = 40; // short demo horizon
//! config.workload = WorkloadKind::Random;
//! config.policy = IndexPolicy::Gain { delete: true };
//! let report = QaasService::new(config).run().expect("run failed");
//! assert!(report.dataflows_issued > 0);
//! ```

pub mod experiment;
pub mod policy;
pub mod recovery;
pub mod report;
pub mod service;
pub mod tablefmt;

pub use policy::{IndexPolicy, InterleaverKind, SchedulerKind};
pub use recovery::{remnant_dag, RebuildThrottle, RecoveryConfig, RecoveryPolicyKind};
pub use report::{paired_objective, DataflowRecord, RunReport, TimelinePoint};
pub use service::{QaasService, ServiceConfig};
