//! Run-level reports: the measurements behind Figures 12–14 and Table 7.

use flowtune_common::{Money, Quanta};

/// One sample of the service state over time (drives Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// Sample time in quanta since service start.
    pub time_quanta: Quanta,
    /// Indexes with at least one built partition.
    pub indexes_built: usize,
    /// Index partitions currently stored.
    pub index_partitions: usize,
    /// Bytes of index data currently stored.
    pub stored_bytes: u64,
    /// Cumulative index storage cost so far.
    pub storage_cost: Money,
}

/// Per-dataflow execution record (diagnostics and plots).
#[derive(Debug, Clone, PartialEq)]
pub struct DataflowRecord {
    /// Application name.
    pub app: &'static str,
    /// Issue time in quanta.
    pub issued_quanta: Quanta,
    /// Execution time in quanta.
    pub makespan_quanta: Quanta,
    /// Container-quanta leased for this dataflow (its compute bill in
    /// units of `Mc`).
    pub cost_quanta: Quanta,
    /// Fraction of the dataflow's partition reads that were served
    /// through a built index during execution.
    pub indexed_fraction: f64,
}

/// What happened over one full service run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Dataflows issued to the service within the horizon.
    pub dataflows_issued: usize,
    /// Dataflows whose execution finished within the horizon.
    pub dataflows_finished: usize,
    /// Total compute cost (leased quanta × VM price).
    pub compute_cost: Money,
    /// Total index storage cost accrued.
    pub index_storage_cost: Money,
    /// Sum of dataflow execution times, in quanta.
    pub total_makespan_quanta: Quanta,
    /// Dataflow operators executed.
    pub dataflow_ops: usize,
    /// Build operators that completed.
    pub builds_completed: usize,
    /// Build operators stopped by preemption or lease expiry (Table 7's
    /// "killed").
    pub builds_killed: usize,
    /// Indexes deleted by the tuner.
    pub indexes_deleted: usize,
    /// Dataflows abandoned after exhausting the recovery policy (0 on a
    /// fault-free run).
    pub dataflows_failed: usize,
    /// Dataflow operators killed by container revocations — distinct
    /// from `builds_killed`, which counts quantum-expiry/preemption
    /// kills of build operators.
    pub ops_killed_by_fault: usize,
    /// Containers revoked by the injected provider.
    pub containers_revoked: usize,
    /// Transient storage faults (reads reissued).
    pub storage_faults: u64,
    /// Operators whose runtime was inflated by a straggler fault.
    pub straggler_ops: u64,
    /// Builds that completed but produced a corrupt partition
    /// (invalidated, never marked available).
    pub builds_failed: usize,
    /// Builds stopped mid-flight by a container revocation.
    pub builds_killed_by_fault: usize,
    /// Builds that crashed partway through, leaving partial page images
    /// (debris) the recovery scan must clean up.
    pub builds_crashed: usize,
    /// Pages the post-commit verification scan read back from the
    /// persistent index page store.
    pub verify_pages_scanned: u64,
    /// Pages the verification scan found torn, missing, or stale.
    pub bad_pages_detected: u64,
    /// Index partitions invalidated by the verification scan (unmarked,
    /// deleted from storage, queued for rebuild under backoff).
    pub partitions_invalidated: usize,
    /// Previously-invalidated partitions that later committed a clean,
    /// verified image — the recovery loop closing.
    pub rebuilds_completed: usize,
    /// Re-execution attempts across all dataflows.
    pub retries: usize,
    /// Compute time lost to faults (partial work discarded), in quanta.
    pub wasted_compute_quanta: Quanta,
    /// Money spent on quanta whose work was discarded (wasted leases of
    /// failed attempts and abandoned dataflows).
    pub wasted_cost: Money,
    /// Extra latency each *recovered* dataflow paid versus its first
    /// attempt finishing cleanly (backoff + re-execution), in quanta.
    pub recovery_latency_quanta: Vec<f64>,
    /// Service-state samples over time (one per executed dataflow).
    pub timeline: Vec<TimelinePoint>,
    /// Per-dataflow records, in execution order.
    pub per_dataflow: Vec<DataflowRecord>,
}

impl RunReport {
    /// Total operators executed (Table 7's "Total Ops").
    pub fn total_ops(&self) -> usize {
        self.dataflow_ops + self.builds_completed + self.builds_killed
    }

    /// Share of operators that were killed, in percent (Table 7).
    pub fn killed_percentage(&self) -> f64 {
        if self.total_ops() == 0 {
            0.0
        } else {
            100.0 * self.builds_killed as f64 / self.total_ops() as f64
        }
    }

    /// Total money spent (compute + index storage).
    pub fn total_cost(&self) -> Money {
        self.compute_cost + self.index_storage_cost
    }

    /// Average cost per finished dataflow, in dollars (Figs. 12/14).
    pub fn cost_per_dataflow(&self) -> f64 {
        if self.dataflows_finished == 0 {
            0.0
        } else {
            self.total_cost().as_dollars() / self.dataflows_finished as f64
        }
    }

    /// Average execution time per finished dataflow, in quanta.
    pub fn avg_makespan_quanta(&self) -> Quanta {
        if self.dataflows_finished == 0 {
            Quanta::ZERO
        } else {
            self.total_makespan_quanta * (1.0 / self.dataflows_finished as f64)
        }
    }

    /// Recovery-latency percentile (`p` in `[0, 100]`, nearest-rank) in
    /// quanta; 0 when no dataflow needed recovery.
    pub fn recovery_latency_percentile(&self, p: f64) -> f64 {
        if self.recovery_latency_quanta.is_empty() {
            return 0.0;
        }
        let mut sorted = self.recovery_latency_quanta.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

/// Evaluate the paper's global objective (Eq. 1) for a tuned run
/// against a no-index baseline of the *same seed*:
///
/// ```text
/// Σ_i Mc · (α·δtd(d_i) + (1−α)·δmd(d_i)) − Σ_j st(I[j])
/// ```
///
/// Per-dataflow deltas pair the two runs positionally (identical seeds
/// produce identical arrival sequences); the storage term is the tuned
/// run's accrued index storage cost. Positive = the index set paid off.
pub fn paired_objective(
    baseline: &RunReport,
    tuned: &RunReport,
    alpha: f64,
    vm_price: Money,
) -> f64 {
    let mc = vm_price.as_dollars();
    let n = baseline.per_dataflow.len().min(tuned.per_dataflow.len());
    let mut total = 0.0;
    for i in 0..n {
        let (b, t) = (&baseline.per_dataflow[i], &tuned.per_dataflow[i]);
        // A faster tuned service drains its queue further into the
        // workload, so positional pairs can drift onto different
        // applications; only same-application pairs are comparable.
        if b.app != t.app {
            continue;
        }
        let dt = (b.makespan_quanta - t.makespan_quanta).get();
        // δmd: leased-quanta delta — the actual compute-bill difference.
        let dm = (b.cost_quanta - t.cost_quanta).get();
        total += mc * (alpha * dt + (1.0 - alpha) * dm);
    }
    total - tuned.index_storage_cost.as_dollars()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = RunReport {
            dataflows_issued: 10,
            dataflows_finished: 8,
            compute_cost: Money::from_dollars(4.0),
            index_storage_cost: Money::from_dollars(0.8),
            total_makespan_quanta: Quanta::new(16.0),
            dataflow_ops: 800,
            builds_completed: 150,
            builds_killed: 50,
            indexes_deleted: 3,
            ..Default::default()
        };
        assert_eq!(r.total_ops(), 1000);
        assert!((r.killed_percentage() - 5.0).abs() < 1e-9);
        assert!((r.cost_per_dataflow() - 0.6).abs() < 1e-9);
        assert!((r.avg_makespan_quanta().get() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_latency_percentiles_are_nearest_rank() {
        let mut r = RunReport::default();
        assert_eq!(r.recovery_latency_percentile(99.0), 0.0);
        r.recovery_latency_quanta = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(r.recovery_latency_percentile(0.0), 1.0);
        assert_eq!(r.recovery_latency_percentile(50.0), 2.0);
        assert_eq!(r.recovery_latency_percentile(75.0), 3.0);
        assert_eq!(r.recovery_latency_percentile(100.0), 4.0);
    }

    #[test]
    fn paired_objective_rewards_time_savings_and_charges_storage() {
        let rec = |mk: f64| DataflowRecord {
            app: "Montage",
            issued_quanta: Quanta::ZERO,
            makespan_quanta: Quanta::new(mk),
            cost_quanta: Quanta::new(mk),
            indexed_fraction: 0.0,
        };
        let base = RunReport {
            per_dataflow: vec![rec(4.0), rec(4.0)],
            ..Default::default()
        };
        let tuned = RunReport {
            per_dataflow: vec![rec(2.0), rec(3.0)],
            index_storage_cost: Money::from_dollars(0.05),
            ..Default::default()
        };
        let obj = paired_objective(&base, &tuned, 0.5, Money::from_dollars(0.1));
        // Saved 2 + 1 quanta of both time and money: 0.1*(3) - 0.05.
        assert!((obj - 0.25).abs() < 1e-9, "objective {obj}");
        // A run with no savings but storage is negative.
        let wasteful = RunReport {
            per_dataflow: vec![rec(4.0), rec(4.0)],
            index_storage_cost: Money::from_dollars(0.05),
            ..Default::default()
        };
        assert!(paired_objective(&base, &wasteful, 0.5, Money::from_dollars(0.1)) < 0.0);
    }

    #[test]
    fn empty_run_is_safe() {
        let r = RunReport::default();
        assert_eq!(r.total_ops(), 0);
        assert_eq!(r.killed_percentage(), 0.0);
        assert_eq!(r.cost_per_dataflow(), 0.0);
        assert_eq!(r.avg_makespan_quanta(), Quanta::ZERO);
    }
}
