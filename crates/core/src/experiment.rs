//! Shared helpers for the experiment binaries in `flowtune-bench`.

use flowtune_common::{ExperimentParams, SimRng};
use flowtune_dataflow::{App, DataflowFactory, FileDatabase};
use flowtune_index::IndexCatalog;
use flowtune_sched::SchedulerConfig;

use crate::service::build_catalog;

/// Everything the standalone experiments need: a deterministic file
/// database, a populated catalog, and a dataflow factory.
#[derive(Debug)]
pub struct ExperimentSetup {
    /// The experiment parameters used.
    pub params: ExperimentParams,
    /// The generated file database.
    pub filedb: FileDatabase,
    /// A catalog with every potential index registered.
    pub catalog: IndexCatalog,
    /// Dataflow factory over the same file database.
    pub factory: DataflowFactory,
}

impl ExperimentSetup {
    /// Build the standard Table 3 setup from parameters.
    pub fn new(params: ExperimentParams) -> Self {
        let mut rng = SimRng::seed_from_u64(params.seed);
        let filedb = FileDatabase::generate(&mut rng);
        let catalog = build_catalog(&filedb);
        let factory = DataflowFactory::new(filedb.clone(), params.ops_per_dataflow, rng.fork());
        ExperimentSetup {
            params,
            filedb,
            catalog,
            factory,
        }
    }

    /// A scheduler configuration derived from the cloud parameters.
    pub fn scheduler_config(&self, max_skyline: usize) -> SchedulerConfig {
        SchedulerConfig {
            max_containers: self.params.cloud.max_containers,
            max_skyline,
            quantum: self.params.cloud.quantum,
            vm_price: self.params.cloud.vm_price_per_quantum,
            network_bandwidth: self.params.cloud.network_bandwidth,
            ..SchedulerConfig::default()
        }
    }

    /// One dataflow DAG of each application (for per-app experiments).
    pub fn one_dag_per_app(&mut self, seed: u64) -> Vec<(App, flowtune_dataflow::Dag)> {
        let mut rng = SimRng::seed_from_u64(seed);
        App::ALL
            .iter()
            .map(|app| {
                let reads = self.filedb.partitions_of(*app);
                (
                    *app,
                    app.generate(self.params.ops_per_dataflow, &reads, &mut rng),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_is_deterministic_and_complete() {
        let a = ExperimentSetup::new(ExperimentParams::default());
        let b = ExperimentSetup::new(ExperimentParams::default());
        assert_eq!(a.filedb.total_bytes(), b.filedb.total_bytes());
        assert_eq!(a.catalog.len(), 125 * 4);
    }

    #[test]
    fn per_app_dags_cover_all_three_apps() {
        let mut setup = ExperimentSetup::new(ExperimentParams::default());
        let dags = setup.one_dag_per_app(1);
        assert_eq!(dags.len(), 3);
        for (app, dag) in &dags {
            assert!(dag.len() >= 90, "{} too small", app.name());
        }
    }
}
