//! The QaaS service loop.
//!
//! Dataflows are issued sequentially (the user "observes the results of
//! a single dataflow before submitting the next one", §3); each issue
//! triggers one round of Algorithm 1: tune → schedule → interleave →
//! execute → record history.

use std::collections::BTreeMap;

use flowtune_cloud::{
    perturb_dag, ExecutionReport, FaultConfig, FaultPlan, IndexAvailability, Simulator,
};
use flowtune_common::{
    BuildOpId, DataflowId, ExperimentParams, Quanta, Result, SimDuration, SimRng, SimTime,
};
use flowtune_dataflow::{
    filedb::ROW_BYTES, ArrivalClient, Dag, Dataflow, DataflowFactory, FileDatabase, WorkloadKind,
};
use flowtune_index::{
    measure_io, IndexCatalog, IndexCostModel, IndexKind, IndexPageStore, IndexSpec,
};
use flowtune_interleave::{BuildOp, DeferredBuildQueue, LpInterleaver, OnlineInterleaver};
use flowtune_sched::{
    BuildRef, OnlineLoadBalanceScheduler, Schedule, SchedulerConfig, SkylineScheduler,
};
use flowtune_storage::{ObjectKey, StorageService};
use flowtune_tuner::{dataflow_index_gains, GainModel, HistoryEntry, OnlineTuner};

use crate::policy::{IndexPolicy, InterleaverKind, SchedulerKind};
use crate::recovery::{remnant_dag, RebuildThrottle, RecoveryConfig};
use crate::report::{RunReport, TimelinePoint};

/// Full service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Experiment parameters (Table 3).
    pub params: ExperimentParams,
    /// Index-management policy.
    pub policy: IndexPolicy,
    /// Dataflow scheduler.
    pub scheduler: SchedulerKind,
    /// Interleaving algorithm.
    pub interleaver: InterleaverKind,
    /// Workload mix.
    pub workload: WorkloadKind,
    /// Skyline width during planning (smaller = faster planning; the
    /// service picks the fastest schedule anyway).
    pub max_skyline: usize,
    /// Cap on build operators offered to the interleaver per round.
    pub max_pending_build_ops: usize,
    /// Runtime / data-size estimation error injected at execution
    /// (fractions; (0, 0) = exact estimates).
    pub estimation_error: (f64, f64),
    /// Concurrently executing dataflows. The provider pool (100
    /// containers) holds several ~25-container schedules at once, so the
    /// service drains its queue in parallel lanes.
    pub concurrency: usize,
    /// Learn a fading controller `D` per index from observed reuse
    /// intervals instead of the global `TunerConfig::fading_d` (the
    /// paper's §7 future work).
    pub adaptive_fading: bool,
    /// Defer build operators that fit no idle slot and run them in paid
    /// batches once their accumulated gain covers the dedicated lease
    /// (the paper's §7 "delayed building" future work).
    pub deferred_builds: bool,
    /// Calibrate the index cost models against *measured* page I/O of
    /// a real paged B+Tree build/probe run instead of the analytic
    /// write-size estimate (see `flowtune_index::measured`).
    pub calibrate_index_io: bool,
    /// Fault model injected at execution (rate 0 = the fault-free
    /// simulator, byte-identical to a run without the layer).
    pub faults: FaultConfig,
    /// What the service does with dataflows whose operators were
    /// killed.
    pub recovery: RecoveryConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            params: ExperimentParams::default(),
            policy: IndexPolicy::Gain { delete: true },
            scheduler: SchedulerKind::Skyline,
            interleaver: InterleaverKind::Lp,
            workload: WorkloadKind::Random,
            max_skyline: 8,
            max_pending_build_ops: 192,
            estimation_error: (0.0, 0.0),
            concurrency: 4,
            adaptive_fading: false,
            deferred_builds: false,
            calibrate_index_io: false,
            faults: FaultConfig::default(),
            recovery: RecoveryConfig::default(),
        }
    }
}

/// The Query-as-a-Service platform.
#[derive(Debug)]
pub struct QaasService {
    config: ServiceConfig,
    filedb: FileDatabase,
    factory: DataflowFactory,
    catalog: IndexCatalog,
    tuner: OnlineTuner,
    storage: StorageService,
    rng: SimRng,
    last_settle: SimTime,
    deferred: DeferredBuildQueue,
    /// Paged on-"disk" images of committed index partitions — the
    /// thing torn writes and build crashes physically corrupt and the
    /// post-commit verification scan reads back.
    index_store: IndexPageStore,
    /// Backoff gate for partitions the verification scan invalidated.
    throttle: RebuildThrottle,
}

impl QaasService {
    /// Build the service: generate the file database, register every
    /// potential index, initialise the tuner and the storage meter.
    pub fn new(config: ServiceConfig) -> Self {
        let mut rng = SimRng::seed_from_u64(config.params.seed);
        let filedb = FileDatabase::generate(&mut rng);
        let mut catalog = build_catalog(&filedb);
        if config.calibrate_index_io {
            // One real paged-tree build/probe run; the observed page
            // traffic replaces the analytic write-size estimate in
            // every registered cost model.
            catalog.calibrate_io(measure_io(5_000, 200, config.params.seed));
        }
        let factory =
            DataflowFactory::new(filedb.clone(), config.params.ops_per_dataflow, rng.fork());
        let cloud = &config.params.cloud;
        let model = GainModel::new(
            config.params.tuner.clone(),
            cloud.quantum,
            cloud.vm_price_per_quantum,
            cloud.storage_price_per_mb_quantum,
        );
        let tuner = if config.adaptive_fading {
            OnlineTuner::with_adaptive_fading(model)
        } else {
            OnlineTuner::new(model)
        };
        let storage = StorageService::new(cloud.storage_price_per_mb_quantum, cloud.quantum);
        let deferred = DeferredBuildQueue::new(cloud.quantum, cloud.vm_price_per_quantum);
        QaasService {
            config,
            filedb,
            factory,
            catalog,
            tuner,
            storage,
            rng,
            last_settle: SimTime::ZERO,
            deferred,
            index_store: IndexPageStore::new(),
            throttle: RebuildThrottle::new(),
        }
    }

    /// The file database the service operates on.
    pub fn filedb(&self) -> &FileDatabase {
        &self.filedb
    }

    /// The current index catalog.
    pub fn catalog(&self) -> &IndexCatalog {
        &self.catalog
    }

    /// Run the service until the horizon (Table 3: 720 quanta).
    ///
    /// Errors when the fault/recovery configuration is invalid or a
    /// planned schedule turns out inconsistent — both non-recoverable
    /// configuration/logic faults, as opposed to the *injected* cloud
    /// faults, which are handled by the recovery policy.
    pub fn run(&mut self) -> Result<RunReport> {
        self.config.faults.validate()?;
        self.config.recovery.validate()?;
        let fault_plan = FaultPlan::new(self.config.faults.clone());
        let params = self.config.params.clone();
        let cloud = params.cloud.clone();
        let horizon = SimTime::ZERO + params.horizon();
        let mean_gap = cloud.quantum.mul_f64(params.poisson_lambda_quanta);
        let mut client =
            ArrivalClient::new(self.config.workload.clone(), mean_gap, self.rng.fork());
        let mut report = RunReport::default();
        // Each lane is one concurrently executing dataflow; a new
        // dataflow starts on the earliest-free lane.
        let mut lanes = vec![SimTime::ZERO; self.config.concurrency.max(1)];
        // Gains of the dataflow currently running on each lane (Eq. 4's
        // "currently running" δT = 0 contributions).
        let mut lane_gains: Vec<BTreeMap<flowtune_common::IndexId, (f64, f64)>> =
            vec![BTreeMap::new(); self.config.concurrency.max(1)];
        let mut next_id = 0u32;

        loop {
            let (arrival, app) = client.next_arrival();
            if arrival > horizon {
                break;
            }
            #[allow(clippy::expect_used)]
            let lane = (0..lanes.len())
                .min_by_key(|&l| lanes[l])
                // flowtune-allow(panic-hygiene): lanes has params.arrival_lanes entries, validated >= 1
                .expect("at least one lane");
            let issued = arrival.max(lanes[lane]);
            if issued >= horizon {
                break;
            }
            report.dataflows_issued += 1;
            let df_seq = next_id;
            let df = self.factory.make(DataflowId(next_id), app, issued);
            next_id += 1;
            // Stamp everything this round records (tuner, scheduler,
            // interleaver, simulator) with the issue instant.
            flowtune_obs::set_now(issued);
            flowtune_obs::obs_event!(
                "service.issue",
                dataflow = df_seq,
                app = df.app.name(),
                lane = lane,
                ops = df.dag.len(),
            );
            flowtune_obs::count("service.dataflows_issued", 1);

            // --- Tune (Alg. 1 lines 2-9 and 13-19). ---
            let gains = dataflow_index_gains(&df, &self.catalog, &cloud);
            let used: Vec<flowtune_common::IndexId> =
                df.index_uses.iter().map(|u| u.index).collect();
            self.tuner.observe_uses(&used, issued);
            let pending = match self.config.policy {
                IndexPolicy::NoIndex => Vec::new(),
                IndexPolicy::Random => self.random_pending(issued),
                IndexPolicy::Gain { delete } => {
                    // The queued dataflow plus every dataflow still
                    // running on another lane contribute at δT = 0.
                    let mut active: Vec<&BTreeMap<_, _>> = vec![&gains];
                    for (l, free) in lanes.iter().enumerate() {
                        if l != lane && *free > issued {
                            active.push(&lane_gains[l]);
                        }
                    }
                    let decision = self.tuner.decide(issued, &self.catalog, &active);
                    if delete {
                        for idx in &decision.deletions {
                            self.delete_index(*idx, issued, &mut report);
                        }
                    }
                    let mut ops = Vec::new();
                    'outer: for (idx, g) in &decision.beneficial {
                        for (part, duration, _) in self.catalog.remaining_build_ops(*idx) {
                            if ops.len() >= self.config.max_pending_build_ops {
                                break 'outer;
                            }
                            // Partitions the recovery scan invalidated
                            // sit out their backoff before being
                            // offered for rebuild.
                            if !self.throttle.is_eligible(*idx, part as u32, issued) {
                                continue;
                            }
                            ops.push(BuildOp {
                                id: BuildOpId(ops.len() as u32),
                                build: BuildRef {
                                    index: *idx,
                                    part: part as u32,
                                },
                                duration,
                                gain: g.g.max(1e-6),
                            });
                        }
                    }
                    ops
                }
            };

            // --- Schedule + interleave (Alg. 1 lines 10-11). ---
            let schedule = self.plan(&df, &pending);
            flowtune_obs::obs_event!(
                "service.plan",
                dataflow = df_seq,
                builds_offered = pending.len(),
                builds_placed = schedule.build_assignments().count(),
                planned_makespan_ms = schedule.makespan().as_millis(),
            );
            if self.config.deferred_builds {
                let placed: std::collections::BTreeSet<BuildRef> = schedule
                    .build_assignments()
                    .filter_map(|a| a.build)
                    .collect();
                self.deferred.defer(
                    pending
                        .iter()
                        .filter(|b| !placed.contains(&b.build))
                        .copied(),
                );
                for b in &placed {
                    self.deferred.remove(b);
                }
            }

            // --- Execute on the simulated cloud. ---
            let (time_err, data_err) = self.config.estimation_error;
            let actual = if time_err > 0.0 || data_err > 0.0 {
                perturb_dag(&df.dag, time_err, data_err, &mut self.rng)
            } else {
                df.dag.clone()
            };
            // Causality: only index partitions built before this
            // dataflow was issued are visible to it (lanes execute
            // logically in parallel but are processed in issue order).
            let availability = self.availability_at(issued);
            let sim = Simulator::new(cloud.clone(), &self.filedb);
            let exec = {
                let mut injector = fault_plan.injector(df_seq, 0);
                sim.execute_with_faults(
                    &actual,
                    &schedule,
                    &df.index_uses,
                    &availability,
                    &BTreeMap::new(),
                    &mut injector,
                )?
            };
            absorb_fault_stats(&mut report, &exec, cloud.quantum);

            // --- Recovery: re-schedule killed operators onto fresh
            // containers with capped exponential backoff (sim time). ---
            let mut df_completed = exec.completed();
            let mut recovery_delay = SimDuration::ZERO;
            let mut attempt = 0u32;
            let mut remnant_src = actual.clone();
            let mut killed_ops = exec.killed_ops.clone();
            while !df_completed {
                if !self.config.recovery.policy.retries()
                    || attempt >= self.config.recovery.max_retries
                {
                    report.dataflows_failed += 1;
                    break;
                }
                attempt += 1;
                report.retries += 1;
                let (remnant, _original) = remnant_dag(&remnant_src, &killed_ops)?;
                let retry_schedule = self.schedule_remnant(&remnant);
                let mut injector = fault_plan.injector(df_seq, attempt);
                let retry = sim.execute_with_faults(
                    &remnant,
                    &retry_schedule,
                    &df.index_uses,
                    &availability,
                    &BTreeMap::new(),
                    &mut injector,
                )?;
                absorb_fault_stats(&mut report, &retry, cloud.quantum);
                report.compute_cost += retry.compute_cost;
                report.dataflow_ops += retry.dataflow_ops;
                recovery_delay += self.config.recovery.backoff_delay(attempt) + retry.makespan;
                df_completed = retry.completed();
                killed_ops = retry.killed_ops.clone();
                remnant_src = remnant;
            }
            if df_completed && attempt > 0 {
                report
                    .recovery_latency_quanta
                    .push(recovery_delay.quanta(cloud.quantum).get());
            }
            let total_makespan = exec.makespan + recovery_delay;
            let finish = issued + total_makespan;
            flowtune_obs::set_now(finish);
            flowtune_obs::obs_event!(
                "service.complete",
                dataflow = df_seq,
                completed = df_completed,
                makespan_ms = exec.makespan.as_millis(),
                recovery_delay_ms = recovery_delay.as_millis(),
                attempts = attempt,
            );
            if df_completed {
                flowtune_obs::count("service.dataflows_completed", 1);
            }
            flowtune_obs::count("service.recovery_attempts", attempt as u64);

            // --- Commit completed builds; killed ones stay pending via
            // the catalog (they are re-derived next round). ---
            let mut completed = exec.completed_builds.clone();
            completed.sort_by_key(|cb| cb.finished_at);
            // Builds may finish in the tail idle slot after the last
            // dataflow operator, i.e. later than `finish`.
            // Lanes finish out of order; storage is settled monotonically.
            let mut settled_to = finish.max(self.last_settle);
            // Every page image touched this round, queued for the
            // post-commit verification scan.
            let mut to_verify: Vec<BuildRef> = Vec::new();
            for cb in &completed {
                let at = (issued + (cb.finished_at - SimTime::ZERO)).max(self.last_settle);
                settled_to = settled_to.max(at);
                let part = cb.build.part as usize;
                if !self.catalog.is_partition_built(cb.build.index, part) {
                    self.catalog.mark_built(cb.build.index, part, at, 0);
                    let bytes = self.catalog.spec(cb.build.index).partition_bytes(part);
                    flowtune_obs::obs_event!(
                        "service.index_commit",
                        index = cb.build.index.0,
                        part = cb.build.part,
                        at_ms = at.as_millis(),
                        bytes = bytes,
                    );
                    flowtune_obs::count("service.index_commits", 1);
                    self.storage.put(
                        ObjectKey::IndexPart(cb.build.index, cb.build.part),
                        bytes,
                        at.min(horizon),
                    );
                    // The partition materially lands as a run of
                    // checksummed pages; a torn final write persists
                    // the defect the scan below must find.
                    if exec.torn_builds.contains(&cb.build) {
                        self.index_store
                            .write_partition_torn(cb.build.index, cb.build.part, bytes);
                    } else {
                        self.index_store
                            .write_partition(cb.build.index, cb.build.part, bytes);
                    }
                    to_verify.push(cb.build);
                }
            }

            // --- Crashed builds: the dead container flushed only a
            // prefix of its page image. Nothing was marked built, but
            // the debris occupies the page store until the scan
            // clears it. ---
            for crash in &exec.crashed_builds {
                let part = crash.build.part as usize;
                if !self.catalog.is_partition_built(crash.build.index, part) {
                    let bytes = self.catalog.spec(crash.build.index).partition_bytes(part);
                    self.index_store.write_partition_crashed(
                        crash.build.index,
                        crash.build.part,
                        bytes,
                        crash.fraction,
                    );
                    to_verify.push(crash.build);
                }
            }

            // --- Failed builds: invalidate the corrupt partition so it
            // is never marked available and can be re-attempted. ---
            for b in &exec.failed_builds {
                let part = b.part as usize;
                if self.catalog.unmark_built(b.index, part) {
                    // `settled_to`, not `finish`: a tail-slot commit may
                    // already have settled storage past the dataflow's
                    // finish, and settlement must move forward.
                    let at = settled_to.min(horizon);
                    self.storage
                        .delete(&ObjectKey::IndexPart(b.index, b.part), at);
                }
            }

            // --- Post-crash verification scan: read every page image
            // touched this round back from the *persistent* store
            // (buffered frames are not trusted) and verify checksum +
            // epoch. Defective partitions are invalidated in the same
            // round they committed, before any later dataflow's
            // availability snapshot — a failing page is never probed.
            to_verify.sort();
            to_verify.dedup();
            for b in &to_verify {
                let Some(verdict) = self.index_store.verify_partition(b.index, b.part) else {
                    continue;
                };
                report.verify_pages_scanned += verdict.pages_scanned;
                flowtune_obs::count("storage.verify_pages", verdict.pages_scanned);
                if verdict.is_clean() {
                    if self.throttle.record_success(b.index, b.part) {
                        report.rebuilds_completed += 1;
                        // flowtune-allow(obs-discipline): only fires after an injected corruption; the smoke run is fault-free
                        flowtune_obs::count("service.rebuilds_completed", 1);
                    }
                    continue;
                }
                report.bad_pages_detected += verdict.bad_pages.len() as u64;
                report.partitions_invalidated += 1;
                flowtune_obs::obs_event!(
                    "service.partition_invalidated",
                    index = b.index.0,
                    part = b.part,
                    bad_pages = verdict.bad_pages.len(),
                    pages_scanned = verdict.pages_scanned,
                );
                // flowtune-allow(obs-discipline): only fires after an injected corruption; the smoke run is fault-free
                flowtune_obs::count("service.partitions_invalidated", 1);
                let part = b.part as usize;
                if self.catalog.unmark_built(b.index, part) {
                    // `settled_to`, not `finish`: the commit that wrote
                    // this partition may have settled storage past the
                    // dataflow's finish (tail-slot builds), and
                    // settlement must move forward.
                    let at = settled_to.min(horizon);
                    self.storage
                        .delete(&ObjectKey::IndexPart(b.index, b.part), at);
                    // The build ran to commit and its output is now
                    // discarded: the whole build time was compute spent
                    // on work that must be redone.
                    let burnt = self.catalog.spec(b.index).partition_build_time(part);
                    report.wasted_compute_quanta += burnt.quanta(cloud.quantum);
                    report.wasted_cost += cloud
                        .vm_price_per_quantum
                        .mul_f64(burnt.as_quanta(cloud.quantum));
                }
                self.index_store.delete_partition(b.index, b.part);
                self.throttle
                    .record_failure(b.index, b.part, finish, &self.config.recovery);
            }

            // --- History (Hd). ---
            if df_completed {
                self.tuner.history.record(HistoryEntry {
                    dataflow: df.id,
                    finished_at: finish,
                    index_gains: gains.clone(),
                });
            }
            // Graceful tuner degradation: builds the cloud destroyed or
            // corrupted feed *negative* evidence into the gain history,
            // so the same index is not immediately re-attempted.
            if self.config.recovery.policy.penalises_gain() {
                let penalty = self.config.recovery.gain_penalty;
                let mut negative: BTreeMap<flowtune_common::IndexId, (f64, f64)> = BTreeMap::new();
                for b in exec.failed_builds.iter().chain(&exec.fault_killed_builds) {
                    let e = negative.entry(b.index).or_insert((0.0, 0.0));
                    e.0 -= penalty;
                    e.1 -= penalty;
                }
                if !negative.is_empty() {
                    self.tuner.history.record(HistoryEntry {
                        dataflow: df.id,
                        finished_at: finish,
                        index_gains: negative,
                    });
                }
            }
            self.tuner.history.prune(
                finish,
                cloud
                    .quantum
                    .mul_f64(4.0 * self.config.params.tuner.window_w),
            );

            // --- Metrics. ---
            report.compute_cost += exec.compute_cost;
            report.dataflow_ops += exec.dataflow_ops;
            report.builds_completed += exec.completed_builds.len();
            report.builds_killed += exec.killed_builds.len();
            if df_completed && finish <= horizon {
                report.dataflows_finished += 1;
                report.total_makespan_quanta += total_makespan.quanta(cloud.quantum);
            }
            self.last_settle = settled_to.min(horizon);
            self.storage.settle(self.last_settle);
            let total_reads = exec.accelerated_reads + exec.plain_reads;
            let indexed = if total_reads == 0 {
                0.0
            } else {
                exec.accelerated_reads as f64 / total_reads as f64
            };
            flowtune_obs::observe(
                "service.makespan_quanta",
                total_makespan.quanta(cloud.quantum).get(),
            );
            flowtune_obs::observe("service.indexed_fraction", indexed);
            // flowtune-allow(cast-discipline): leased-quanta counts stay far below 2^53, exact in f64
            let cost_quanta = Quanta::new(exec.leased_quanta as f64);
            flowtune_obs::observe("service.cost_quanta", cost_quanta.get());
            report.per_dataflow.push(crate::report::DataflowRecord {
                app: df.app.name(),
                issued_quanta: issued.quanta(cloud.quantum),
                makespan_quanta: total_makespan.quanta(cloud.quantum),
                cost_quanta,
                indexed_fraction: indexed,
            });
            report.timeline.push(TimelinePoint {
                time_quanta: finish.quanta(cloud.quantum),
                indexes_built: self
                    .catalog
                    .ids()
                    .filter(|i| !self.catalog.state(*i).empty())
                    .count(),
                index_partitions: self
                    .catalog
                    .ids()
                    .map(|i| self.catalog.state(i).built_count())
                    .sum(),
                stored_bytes: self.catalog.total_built_bytes(),
                storage_cost: self.storage.accrued_cost(),
            });
            lanes[lane] = finish;
            lane_gains[lane] = gains;

            // --- Deferred batch building (paid, gain-justified). ---
            if self.config.deferred_builds {
                while let Some(batch) = self.deferred.try_flush() {
                    let mut at = issued;
                    for op in &batch.ops {
                        at += op.duration;
                        let part = op.build.part as usize;
                        if !self.catalog.is_partition_built(op.build.index, part) {
                            let commit = at.max(self.last_settle).min(horizon);
                            self.catalog.mark_built(op.build.index, part, commit, 0);
                            let bytes = self.catalog.spec(op.build.index).partition_bytes(part);
                            self.storage.put(
                                ObjectKey::IndexPart(op.build.index, op.build.part),
                                bytes,
                                commit,
                            );
                            // Deferred batches run on dedicated paid
                            // leases outside the fault layer, so their
                            // images land clean.
                            self.index_store
                                .write_partition(op.build.index, op.build.part, bytes);
                            self.last_settle = commit;
                        }
                    }
                    report.compute_cost += batch.cost;
                    report.builds_completed += batch.ops.len();
                }
            }
        }
        self.storage.settle(horizon);
        report.index_storage_cost = self.storage.accrued_cost();
        Ok(report)
    }

    /// Re-schedule the remnant of a killed dataflow onto fresh
    /// containers via the skyline scheduler (no builds are interleaved
    /// into retries: recovery capacity is not donated to the tuner).
    fn schedule_remnant(&self, remnant: &Dag) -> Schedule {
        let cloud = &self.config.params.cloud;
        let scheduler = SkylineScheduler::new(SchedulerConfig {
            max_containers: cloud.max_containers,
            max_skyline: self.config.max_skyline,
            quantum: cloud.quantum,
            vm_price: cloud.vm_price_per_quantum,
            network_bandwidth: cloud.network_bandwidth,
            ..SchedulerConfig::default()
        });
        scheduler.schedule(remnant).remove(0)
    }

    /// Plan one dataflow: schedule, pick the fastest, interleave.
    fn plan(&mut self, df: &Dataflow, pending: &[BuildOp]) -> Schedule {
        let cloud = &self.config.params.cloud;
        let sched_config = SchedulerConfig {
            max_containers: cloud.max_containers,
            max_skyline: self.config.max_skyline,
            quantum: cloud.quantum,
            vm_price: cloud.vm_price_per_quantum,
            network_bandwidth: cloud.network_bandwidth,
            ..SchedulerConfig::default()
        };
        match (self.config.scheduler, self.config.interleaver) {
            (SchedulerKind::OnlineLoadBalance, _) => {
                let mut schedule =
                    OnlineLoadBalanceScheduler::new(cloud.max_containers, cloud.network_bandwidth)
                        .schedule(&df.dag);
                if !pending.is_empty() {
                    LpInterleaver::new(cloud.quantum).interleave(&mut schedule, pending);
                }
                schedule
            }
            (SchedulerKind::Skyline, InterleaverKind::Lp) => {
                let scheduler = SkylineScheduler::new(sched_config);
                // The service executes the fastest schedule (§5.2).
                let mut schedule = scheduler.schedule(&df.dag).remove(0);
                if !pending.is_empty() {
                    LpInterleaver::new(cloud.quantum).interleave(&mut schedule, pending);
                }
                schedule
            }
            (SchedulerKind::Skyline, InterleaverKind::Online) => {
                let interleaver = OnlineInterleaver::new(SkylineScheduler::new(sched_config));
                interleaver.schedule(&df.dag, pending).remove(0)
            }
        }
    }

    /// The "Random" baseline: pick a few random potential indexes and
    /// offer their remaining build ops with uninformative gains.
    fn random_pending(&mut self, now: SimTime) -> Vec<BuildOp> {
        let mut ops = Vec::new();
        for _ in 0..3 {
            let idx =
                flowtune_common::IndexId(self.rng.uniform_u64(0, self.catalog.len() as u64) as u32);
            for (part, duration, _) in self.catalog.remaining_build_ops(idx) {
                if ops.len() >= self.config.max_pending_build_ops {
                    return ops;
                }
                if !self.throttle.is_eligible(idx, part as u32, now) {
                    continue;
                }
                ops.push(BuildOp {
                    id: BuildOpId(ops.len() as u32),
                    build: BuildRef {
                        index: idx,
                        part: part as u32,
                    },
                    duration,
                    gain: 1.0,
                });
            }
        }
        ops
    }

    fn delete_index(
        &mut self,
        idx: flowtune_common::IndexId,
        now: SimTime,
        report: &mut RunReport,
    ) {
        let parts = self.catalog.state(idx).parts.len();
        let freed = self.catalog.delete_index(idx);
        if freed > 0 {
            report.indexes_deleted += 1;
            flowtune_obs::obs_event!(
                "service.index_drop",
                index = idx.0,
                freed_bytes = freed,
                at_ms = now.as_millis(),
            );
            // flowtune-allow(obs-discipline): drops need a long horizon with phase shifts; the smoke run never drops
            flowtune_obs::count("service.index_drops", 1);
            for part in 0..parts {
                // Never bill backwards: a build committed in the previous
                // dataflow's tail slot may have settled past `now`.
                let at = now.max(self.last_settle);
                self.storage
                    .delete(&ObjectKey::IndexPart(idx, part as u32), at);
                self.index_store.delete_partition(idx, part as u32);
            }
        }
    }

    fn availability_at(&self, now: SimTime) -> IndexAvailability {
        let mut avail = IndexAvailability::new();
        for idx in self.catalog.ids() {
            let state = self.catalog.state(idx);
            if state.empty() {
                continue;
            }
            for (part, built) in state.parts.iter().enumerate() {
                if built.is_some_and(|b| b.built_at <= now) {
                    avail.add(
                        idx,
                        part as u32,
                        self.catalog.spec(idx).partition_bytes(part),
                    );
                }
            }
        }
        avail
    }
}

/// Fold one execution attempt's fault counters into the run report.
/// All increments are zero on a fault-free execution, so rate-0 runs
/// are unaffected.
fn absorb_fault_stats(report: &mut RunReport, exec: &ExecutionReport, quantum: SimDuration) {
    report.ops_killed_by_fault += exec.killed_ops.len();
    report.containers_revoked += exec.revoked_containers.len();
    report.storage_faults += exec.storage_faults;
    report.straggler_ops += exec.straggler_ops;
    report.builds_failed += exec.failed_builds.len();
    report.builds_killed_by_fault += exec.fault_killed_builds.len();
    report.builds_crashed += exec.crashed_builds.len();
    report.wasted_compute_quanta += exec.wasted_compute.quanta(quantum);
    if !exec.completed() {
        // Every quantum leased by an attempt that did not complete is
        // money spent on discarded work.
        report.wasted_cost += exec.compute_cost;
    }
}

/// Register every potential index of the file database, preserving ids.
pub fn build_catalog(filedb: &FileDatabase) -> IndexCatalog {
    let mut catalog = IndexCatalog::new();
    for pi in filedb.potential_indexes() {
        let rows: Vec<u64> = filedb
            .file(pi.file)
            .partitions
            .iter()
            .map(|p| p.rows)
            .collect();
        let id = catalog.add(IndexSpec::single_column(
            pi.id,
            pi.file,
            pi.column,
            IndexKind::BTree,
            IndexCostModel::new(pi.rec_bytes(), ROW_BYTES),
            rows,
        ));
        assert_eq!(id, pi.id, "catalog ids must match file-database ids");
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_config(policy: IndexPolicy) -> ServiceConfig {
        let mut c = ServiceConfig::default();
        c.params.total_quanta = 40;
        c.params.seed = 7;
        c.policy = policy;
        c.max_skyline = 4;
        c
    }

    #[test]
    fn no_index_policy_builds_nothing() {
        let mut svc = QaasService::new(short_config(IndexPolicy::NoIndex));
        let r = svc.run().expect("service run failed");
        assert!(r.dataflows_finished > 0);
        assert_eq!(r.builds_completed, 0);
        assert_eq!(r.builds_killed, 0);
        assert_eq!(r.index_storage_cost, flowtune_common::Money::ZERO);
    }

    #[test]
    fn gain_policy_builds_indexes_and_accrues_storage() {
        let mut svc = QaasService::new(short_config(IndexPolicy::Gain { delete: true }));
        let r = svc.run().expect("service run failed");
        assert!(r.dataflows_finished > 0);
        assert!(r.builds_completed > 0, "gain policy never built an index");
        assert!(r.index_storage_cost > flowtune_common::Money::ZERO);
        assert!(!r.timeline.is_empty());
        let built_at_end = r.timeline.last().unwrap().indexes_built;
        assert!(built_at_end > 0);
    }

    #[test]
    fn indexes_reduce_execution_time_versus_no_index() {
        let mut no_index = QaasService::new(short_config(IndexPolicy::NoIndex));
        let base = no_index.run().expect("service run failed");
        let mut gain = QaasService::new(short_config(IndexPolicy::Gain { delete: true }));
        let tuned = gain.run().expect("service run failed");
        // Same seed, same workload: the tuned service must finish at
        // least as many dataflows.
        assert!(
            tuned.dataflows_finished >= base.dataflows_finished,
            "tuned {} vs base {}",
            tuned.dataflows_finished,
            base.dataflows_finished
        );
    }

    #[test]
    fn random_policy_never_deletes() {
        let mut svc = QaasService::new(short_config(IndexPolicy::Random));
        let r = svc.run().expect("service run failed");
        assert_eq!(r.indexes_deleted, 0);
    }

    #[test]
    fn catalog_ids_align_with_filedb() {
        let svc = QaasService::new(short_config(IndexPolicy::NoIndex));
        assert_eq!(svc.catalog().len(), svc.filedb().potential_indexes().len());
    }
}
