//! Plain-text table formatting for the experiment binaries.

/// Render rows as a fixed-width text table. The first row is the
/// header; columns are sized to their widest cell.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        for (i, width) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<width$}"));
        }
        // Trim trailing padding.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Shorthand for building a row of cells from displayable values.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        vec![$($cell.to_string()),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let rows = vec![
            row!["Query", "Speedup"],
            row!["Order by", 7.44],
            row!["Lookup", 627.14],
        ];
        let t = render_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Query"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("7.44"));
    }

    #[test]
    fn empty_table() {
        assert_eq!(render_table(&[]), "");
    }
}
