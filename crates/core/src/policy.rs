//! Service policy knobs: index management, scheduler, interleaver.

/// Index-management policy (§6.5 compares all four).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexPolicy {
    /// Never build an index (the "No Index" baseline).
    NoIndex,
    /// Build randomly chosen potential indexes in idle slots, never
    /// delete (the "Random" baseline).
    Random,
    /// The proposed gain-based auto-tuning; `delete: false` is the
    /// paper's "Gain (no delete)" variant.
    Gain {
        /// Whether non-beneficial indexes are deleted.
        delete: bool,
    },
}

impl IndexPolicy {
    /// Label used in experiment output, matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            IndexPolicy::NoIndex => "No Index",
            IndexPolicy::Random => "Random",
            IndexPolicy::Gain { delete: false } => "Gain (no delete)",
            IndexPolicy::Gain { delete: true } => "Gain",
        }
    }
}

/// Which dataflow scheduler the service uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The skyline (Pareto) scheduler of §5.3.1 — "offline" in §6.3.
    #[default]
    Skyline,
    /// The online load-balance baseline.
    OnlineLoadBalance,
}

/// Which interleaving algorithm places build operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterleaverKind {
    /// LP-based interleaving (Alg. 2).
    #[default]
    Lp,
    /// Online interleaving (§5.3.2, optional operators).
    Online,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(IndexPolicy::NoIndex.label(), "No Index");
        assert_eq!(IndexPolicy::Random.label(), "Random");
        assert_eq!(
            IndexPolicy::Gain { delete: false }.label(),
            "Gain (no delete)"
        );
        assert_eq!(IndexPolicy::Gain { delete: true }.label(), "Gain");
    }

    #[test]
    fn defaults_are_the_papers_proposal() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::Skyline);
        assert_eq!(InterleaverKind::default(), InterleaverKind::Lp);
    }
}
