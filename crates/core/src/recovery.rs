//! Recovery policies for faulted executions.
//!
//! When the simulated cloud kills dataflow operators (container
//! revocation, see `flowtune_cloud::fault`), the service must decide
//! what to do with the remnant. The policies here implement the three
//! behaviours swept by `exp_fault_matrix`:
//!
//! * **NoRetry** — the dataflow is abandoned; its partial work is
//!   wasted money.
//! * **Retry** — the killed operators are re-scheduled onto fresh
//!   containers via the existing skyline scheduler, after a capped
//!   exponential backoff *in simulated time* (the service waits out a
//!   transient-fault storm before paying for new leases).
//! * **RetryGainPenalty** — Retry, plus graceful tuner degradation:
//!   every failed or fault-killed index build feeds *negative* evidence
//!   into the gain history, so the tuner does not immediately re-attempt
//!   an index the cloud keeps destroying.

use std::collections::BTreeMap;

use flowtune_common::{FlowtuneError, IndexId, OpId, Result, SimDuration, SimTime};
use flowtune_dataflow::{Dag, Edge, OpSpec};

/// What the service does with a dataflow whose operators were killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicyKind {
    /// Abandon the dataflow on the first fault.
    NoRetry,
    /// Re-schedule killed operators with capped exponential backoff.
    Retry,
    /// Retry, and additionally penalise indexes whose builds failed in
    /// the gain history.
    RetryGainPenalty,
}

impl RecoveryPolicyKind {
    /// All policies, in sweep order.
    pub const ALL: [RecoveryPolicyKind; 3] = [
        RecoveryPolicyKind::NoRetry,
        RecoveryPolicyKind::Retry,
        RecoveryPolicyKind::RetryGainPenalty,
    ];

    /// Stable label used in CLI flags and experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicyKind::NoRetry => "no-retry",
            RecoveryPolicyKind::Retry => "retry",
            RecoveryPolicyKind::RetryGainPenalty => "retry-gain-penalty",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "no-retry" => Ok(RecoveryPolicyKind::NoRetry),
            "retry" => Ok(RecoveryPolicyKind::Retry),
            "retry-gain-penalty" => Ok(RecoveryPolicyKind::RetryGainPenalty),
            other => Err(FlowtuneError::config(format!(
                "unknown recovery policy '{other}' \
                 (expected no-retry | retry | retry-gain-penalty)"
            ))),
        }
    }

    /// True when killed operators are re-scheduled at all.
    pub fn retries(&self) -> bool {
        !matches!(self, RecoveryPolicyKind::NoRetry)
    }

    /// True when failed builds feed negative evidence to the tuner.
    pub fn penalises_gain(&self) -> bool {
        matches!(self, RecoveryPolicyKind::RetryGainPenalty)
    }
}

/// Retry/backoff knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// The policy in force.
    pub policy: RecoveryPolicyKind,
    /// Maximum re-execution attempts per dataflow before it is
    /// abandoned.
    pub max_retries: u32,
    /// First backoff delay (sim time).
    pub backoff_base: SimDuration,
    /// Multiplier applied per attempt.
    pub backoff_factor: f64,
    /// Ceiling on any single backoff delay.
    pub backoff_cap: SimDuration,
    /// Magnitude of the negative gain evidence recorded per failed
    /// build (in the same per-dataflow quanta units as `gtd`/`gmd`).
    pub gain_penalty: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            policy: RecoveryPolicyKind::Retry,
            max_retries: 3,
            backoff_base: SimDuration::from_secs(5),
            backoff_factor: 2.0,
            backoff_cap: SimDuration::from_secs(60),
            gain_penalty: 1.0,
        }
    }
}

impl RecoveryConfig {
    /// The default configuration for a given policy.
    pub fn with_policy(policy: RecoveryPolicyKind) -> Self {
        RecoveryConfig {
            policy,
            ..Default::default()
        }
    }

    /// Backoff before re-execution attempt `attempt` (1-based):
    /// `base × factor^(attempt−1)`, capped.
    pub fn backoff_delay(&self, attempt: u32) -> SimDuration {
        let factor = self.backoff_factor.powi(attempt.saturating_sub(1) as i32);
        self.backoff_base.mul_f64(factor).min(self.backoff_cap)
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.backoff_factor < 1.0 {
            return Err(FlowtuneError::config(format!(
                "backoff factor must be >= 1, got {}",
                self.backoff_factor
            )));
        }
        if self.backoff_cap < self.backoff_base {
            return Err(FlowtuneError::config(
                "backoff cap must be >= backoff base".to_owned(),
            ));
        }
        if self.gain_penalty < 0.0 {
            return Err(FlowtuneError::config(format!(
                "gain penalty must be >= 0, got {}",
                self.gain_penalty
            )));
        }
        Ok(())
    }
}

/// Per-partition rebuild state for the crash-recovery path.
#[derive(Debug, Clone, Copy, Default)]
struct ThrottleEntry {
    /// Consecutive invalidations of this partition.
    failures: u32,
    /// Rebuilds of the partition may not be offered before this instant.
    eligible_at: SimTime,
}

/// Backoff gate for rebuilding partitions the recovery scan
/// invalidated (torn pages, crash debris).
///
/// Without it the tuner re-offers an invalidated partition on the very
/// next round, and a flaky storage layer turns into a tight
/// build-invalidate loop. Each invalidation pushes the partition's
/// eligibility out by [`RecoveryConfig::backoff_delay`] of its
/// consecutive-failure count; a clean verified commit clears the
/// entry.
#[derive(Debug, Clone, Default)]
pub struct RebuildThrottle {
    entries: BTreeMap<(IndexId, u32), ThrottleEntry>,
}

impl RebuildThrottle {
    /// An empty throttle (every partition eligible).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one invalidation of `(index, part)` at `now`; the next
    /// rebuild offer is pushed out by the policy's capped exponential
    /// backoff.
    pub fn record_failure(
        &mut self,
        index: IndexId,
        part: u32,
        now: SimTime,
        config: &RecoveryConfig,
    ) {
        let entry = self.entries.entry((index, part)).or_default();
        entry.failures += 1;
        entry.eligible_at = now + config.backoff_delay(entry.failures);
    }

    /// Record a clean verified commit of `(index, part)`. Returns true
    /// when the partition had previously been invalidated — i.e. this
    /// commit is a *rebuild* completing, not a first build.
    pub fn record_success(&mut self, index: IndexId, part: u32) -> bool {
        self.entries.remove(&(index, part)).is_some()
    }

    /// Whether a rebuild of `(index, part)` may be offered at `now`.
    pub fn is_eligible(&self, index: IndexId, part: u32, now: SimTime) -> bool {
        self.entries
            .get(&(index, part))
            .is_none_or(|e| now >= e.eligible_at)
    }

    /// Partitions currently under backoff at `now`.
    pub fn throttled_count(&self, now: SimTime) -> usize {
        self.entries
            .values()
            .filter(|e| now < e.eligible_at)
            .count()
    }
}

/// The remnant of a killed dataflow: the killed operators as a fresh
/// DAG (dense ids, internal edges only), ready for the skyline
/// scheduler. Returns the remnant and the original `OpId` of each
/// remnant operator (`original[i]` is remnant op `OpId(i)`).
///
/// Completed predecessors are treated as already-materialised inputs:
/// edges from surviving operators are dropped (their outputs are on
/// the storage service), while `reads` are kept so the retry still
/// pays its input transfers and can use indexes.
pub fn remnant_dag(actual: &Dag, killed: &[OpId]) -> Result<(Dag, Vec<OpId>)> {
    let mut original: Vec<OpId> = killed.to_vec();
    original.sort();
    original.dedup();
    if original.is_empty() {
        return Err(FlowtuneError::config(
            "remnant of an unkilled dataflow is empty".to_owned(),
        ));
    }
    let remap: BTreeMap<OpId, OpId> = original
        .iter()
        .enumerate()
        .map(|(i, &op)| (op, OpId(i as u32)))
        .collect();
    let ops: Vec<OpSpec> = original
        .iter()
        .map(|&op| {
            let mut spec = actual.op(op).clone();
            spec.id = remap[&op];
            spec
        })
        .collect();
    let edges: Vec<Edge> = actual
        .edges()
        .iter()
        .filter_map(|e| match (remap.get(&e.from), remap.get(&e.to)) {
            (Some(&from), Some(&to)) => Some(Edge {
                from,
                to,
                bytes: e.bytes,
            }),
            _ => None,
        })
        .collect();
    let dag = Dag::new(ops, edges)?;
    Ok((dag, original))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels_round_trip() {
        for p in RecoveryPolicyKind::ALL {
            assert_eq!(RecoveryPolicyKind::parse(p.label()).unwrap(), p);
        }
        assert!(RecoveryPolicyKind::parse("nope").is_err());
        assert!(!RecoveryPolicyKind::NoRetry.retries());
        assert!(RecoveryPolicyKind::Retry.retries());
        assert!(!RecoveryPolicyKind::Retry.penalises_gain());
        assert!(RecoveryPolicyKind::RetryGainPenalty.penalises_gain());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let c = RecoveryConfig::default(); // base 5 s, ×2, cap 60 s
        assert_eq!(c.backoff_delay(1), SimDuration::from_secs(5));
        assert_eq!(c.backoff_delay(2), SimDuration::from_secs(10));
        assert_eq!(c.backoff_delay(3), SimDuration::from_secs(20));
        assert_eq!(c.backoff_delay(4), SimDuration::from_secs(40));
        assert_eq!(c.backoff_delay(5), SimDuration::from_secs(60), "capped");
        assert_eq!(c.backoff_delay(20), SimDuration::from_secs(60), "capped");
    }

    #[test]
    fn config_validation_rejects_bad_ranges() {
        assert!(RecoveryConfig::default().validate().is_ok());
        assert!(RecoveryConfig {
            backoff_factor: 0.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RecoveryConfig {
            backoff_cap: SimDuration::from_secs(1),
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RecoveryConfig {
            gain_penalty: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn throttle_backs_off_exponentially_and_clears_on_success() {
        let config = RecoveryConfig::default(); // base 5 s, ×2, cap 60 s
        let mut t = RebuildThrottle::new();
        let (idx, part) = (IndexId(3), 1);
        assert!(
            t.is_eligible(idx, part, SimTime::ZERO),
            "untracked partition"
        );
        assert!(
            !t.record_success(idx, part),
            "clean first build is no rebuild"
        );

        t.record_failure(idx, part, SimTime::ZERO, &config);
        assert!(!t.is_eligible(idx, part, SimTime::from_secs(4)));
        assert!(t.is_eligible(idx, part, SimTime::from_secs(5)));
        assert_eq!(t.throttled_count(SimTime::ZERO), 1);

        // Second consecutive failure doubles the backoff.
        t.record_failure(idx, part, SimTime::from_secs(5), &config);
        assert!(!t.is_eligible(idx, part, SimTime::from_secs(14)));
        assert!(t.is_eligible(idx, part, SimTime::from_secs(15)));

        // A verified clean commit is a completed rebuild and resets
        // the failure history entirely.
        assert!(t.record_success(idx, part));
        assert!(t.is_eligible(idx, part, SimTime::ZERO));
        t.record_failure(idx, part, SimTime::from_secs(100), &config);
        assert!(
            t.is_eligible(idx, part, SimTime::from_secs(105)),
            "history reset"
        );
    }

    #[test]
    fn throttle_is_per_partition() {
        let config = RecoveryConfig::default();
        let mut t = RebuildThrottle::new();
        t.record_failure(IndexId(1), 0, SimTime::ZERO, &config);
        assert!(!t.is_eligible(IndexId(1), 0, SimTime::ZERO));
        assert!(t.is_eligible(IndexId(1), 1, SimTime::ZERO));
        assert!(t.is_eligible(IndexId(2), 0, SimTime::ZERO));
    }

    #[test]
    fn remnant_keeps_internal_edges_and_reads() {
        // 0 -> 1 -> 2, plus 0 -> 2; ops 1 and 2 were killed.
        let dag = Dag::new(
            vec![
                OpSpec::new(OpId(0), "a", SimDuration::from_secs(10)),
                OpSpec::new(OpId(1), "b", SimDuration::from_secs(20)),
                OpSpec::new(OpId(2), "c", SimDuration::from_secs(30)),
            ],
            vec![
                Edge {
                    from: OpId(0),
                    to: OpId(1),
                    bytes: 100,
                },
                Edge {
                    from: OpId(1),
                    to: OpId(2),
                    bytes: 200,
                },
                Edge {
                    from: OpId(0),
                    to: OpId(2),
                    bytes: 300,
                },
            ],
        )
        .unwrap();
        let (remnant, original) = remnant_dag(&dag, &[OpId(2), OpId(1)]).unwrap();
        assert_eq!(original, vec![OpId(1), OpId(2)]);
        assert_eq!(remnant.len(), 2);
        // Only the internal 1 -> 2 edge survives, re-identified 0 -> 1.
        assert_eq!(remnant.edges().len(), 1);
        assert_eq!(remnant.edge_bytes(OpId(0), OpId(1)), 200);
        // Runtimes carried over.
        assert_eq!(remnant.op(OpId(0)).runtime, SimDuration::from_secs(20));
        assert_eq!(remnant.op(OpId(1)).runtime, SimDuration::from_secs(30));
    }

    #[test]
    fn remnant_of_nothing_is_an_error() {
        let dag = Dag::new(
            vec![OpSpec::new(OpId(0), "a", SimDuration::from_secs(1))],
            vec![],
        )
        .unwrap();
        assert!(remnant_dag(&dag, &[]).is_err());
    }
}
