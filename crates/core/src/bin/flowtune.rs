//! `flowtune` — run the QaaS index-auto-tuning service from the command
//! line.
//!
//! ```bash
//! flowtune --policy gain --workload phases --quanta 720 --seed 42
//! flowtune --policy no-index --workload random --quanta 120 --csv
//! ```

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::process::ExitCode;

use flowtune_core::{
    IndexPolicy, InterleaverKind, QaasService, RecoveryPolicyKind, SchedulerKind, ServiceConfig,
};
use flowtune_dataflow::WorkloadKind;

const HELP: &str = "\
flowtune — automated index management for dataflow engines (EDBT 2020)

USAGE:
    flowtune [OPTIONS]

OPTIONS:
    --policy <P>       no-index | random | gain-no-delete | gain   [gain]
    --workload <W>     random | phases                             [phases]
    --scheduler <S>    skyline | online-lb                         [skyline]
    --interleaver <I>  lp | online                                 [lp]
    --quanta <N>       simulated horizon in quanta                 [720]
    --seed <N>         workload seed                               [default]
    --alpha <F>        time-money trade-off in [0,1]               [0.5]
    --fading-d <F>     gain fading controller D (quanta)           [1]
    --window-w <F>     tuner window W (quanta)                     [30]
    --concurrency <N>  concurrently executing dataflows            [4]
    --error <F>        runtime/data estimation error fraction      [0]
    --adaptive         learn a fading controller per index
    --deferred         enable deferred batch builds
    --fault-rate <F>   master fault rate in [0,1] (0 = no faults)     [0]
    --fault-seed <N>   seed of the dedicated fault stream             [default]
    --crash-share <F>  crash-during-build probability share in [0,1]  [0]
    --torn-share <F>   torn-page-write probability share in [0,1]     [0]
    --calibrate-io     calibrate index cost models against measured
                       page I/O of a real B+Tree build/probe run
    --recovery-policy <R>
                       no-retry | retry | retry-gain-penalty          [retry]
    --trace-out <PATH>    write the observability event trace (JSONL)
    --metrics-out <PATH>  write the metrics summary (JSON)
    --csv              also print per-dataflow records as CSV
    --help             show this help
";

/// Where to write the observability outputs, from the CLI flags.
#[derive(Debug, Default)]
struct ObsOutputs {
    trace: Option<String>,
    metrics: Option<String>,
}

impl ObsOutputs {
    fn active(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Take the recorder off the thread and write the requested files.
    fn write(&self) -> Result<(), String> {
        let Some(rec) = flowtune_obs::uninstall() else {
            return Ok(());
        };
        if let Some(path) = &self.trace {
            std::fs::write(path, rec.trace_jsonl()).map_err(|e| format!("{path}: {e}"))?;
        }
        if let Some(path) = &self.metrics {
            std::fs::write(path, rec.metrics_json()).map_err(|e| format!("{path}: {e}"))?;
        }
        Ok(())
    }
}

fn parse_args() -> Result<(ServiceConfig, bool, ObsOutputs), String> {
    let mut config = ServiceConfig {
        workload: WorkloadKind::paper_phases(),
        ..Default::default()
    };
    let mut csv = false;
    let mut obs = ObsOutputs::default();
    // flowtune-allow(determinism): CLI argument parsing is this binary's input boundary
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--policy" => {
                config.policy = match value("--policy")?.as_str() {
                    "no-index" => IndexPolicy::NoIndex,
                    "random" => IndexPolicy::Random,
                    "gain-no-delete" => IndexPolicy::Gain { delete: false },
                    "gain" => IndexPolicy::Gain { delete: true },
                    other => return Err(format!("unknown policy {other:?}")),
                }
            }
            "--workload" => {
                config.workload = match value("--workload")?.as_str() {
                    "random" => WorkloadKind::Random,
                    "phases" => WorkloadKind::paper_phases(),
                    other => return Err(format!("unknown workload {other:?}")),
                }
            }
            "--scheduler" => {
                config.scheduler = match value("--scheduler")?.as_str() {
                    "skyline" => SchedulerKind::Skyline,
                    "online-lb" => SchedulerKind::OnlineLoadBalance,
                    other => return Err(format!("unknown scheduler {other:?}")),
                }
            }
            "--interleaver" => {
                config.interleaver = match value("--interleaver")?.as_str() {
                    "lp" => InterleaverKind::Lp,
                    "online" => InterleaverKind::Online,
                    other => return Err(format!("unknown interleaver {other:?}")),
                }
            }
            "--quanta" => {
                config.params.total_quanta = value("--quanta")?
                    .parse()
                    .map_err(|e| format!("--quanta: {e}"))?
            }
            "--seed" => {
                config.params.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--alpha" => {
                config.params.tuner.alpha = value("--alpha")?
                    .parse()
                    .map_err(|e| format!("--alpha: {e}"))?
            }
            "--fading-d" => {
                config.params.tuner.fading_d = value("--fading-d")?
                    .parse()
                    .map_err(|e| format!("--fading-d: {e}"))?
            }
            "--window-w" => {
                config.params.tuner.window_w = value("--window-w")?
                    .parse()
                    .map_err(|e| format!("--window-w: {e}"))?
            }
            "--concurrency" => {
                config.concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|e| format!("--concurrency: {e}"))?
            }
            "--error" => {
                let e: f64 = value("--error")?
                    .parse()
                    .map_err(|e| format!("--error: {e}"))?;
                config.estimation_error = (e, e);
            }
            "--adaptive" => config.adaptive_fading = true,
            "--deferred" => config.deferred_builds = true,
            "--fault-rate" => {
                config.faults.rate = value("--fault-rate")?
                    .parse()
                    .map_err(|e| format!("--fault-rate: {e}"))?
            }
            "--fault-seed" => {
                config.faults.seed = value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("--fault-seed: {e}"))?
            }
            "--crash-share" => {
                config.faults.crash_build_share = value("--crash-share")?
                    .parse()
                    .map_err(|e| format!("--crash-share: {e}"))?
            }
            "--torn-share" => {
                config.faults.torn_write_share = value("--torn-share")?
                    .parse()
                    .map_err(|e| format!("--torn-share: {e}"))?
            }
            "--calibrate-io" => config.calibrate_index_io = true,
            "--recovery-policy" => {
                config.recovery.policy = RecoveryPolicyKind::parse(&value("--recovery-policy")?)
                    .map_err(|e| e.to_string())?
            }
            "--trace-out" => obs.trace = Some(value("--trace-out")?),
            "--metrics-out" => obs.metrics = Some(value("--metrics-out")?),
            "--csv" => csv = true,
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    config.params.tuner.validate().map_err(|e| e.to_string())?;
    Ok((config, csv, obs))
}

fn main() -> ExitCode {
    let (config, csv, obs) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let policy = config.policy;
    let quanta = config.params.total_quanta;
    let faulted = config.faults.is_active();
    if obs.active() {
        flowtune_obs::install();
    }
    eprintln!("running {} for {} quanta...", policy.label(), quanta);
    let report = match QaasService::new(config).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if obs.active() {
        if let Err(e) = obs.write() {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!("policy:              {}", policy.label());
    println!("dataflows issued:    {}", report.dataflows_issued);
    println!("dataflows finished:  {}", report.dataflows_finished);
    println!(
        "avg time/dataflow:   {:.2} quanta",
        report.avg_makespan_quanta().get()
    );
    println!("cost/dataflow:       ${:.3}", report.cost_per_dataflow());
    println!("compute cost:        {}", report.compute_cost);
    println!("index storage cost:  {}", report.index_storage_cost);
    println!("builds completed:    {}", report.builds_completed);
    println!(
        "builds killed:       {} ({:.1} % of all ops)",
        report.builds_killed,
        report.killed_percentage()
    );
    println!("indexes deleted:     {}", report.indexes_deleted);
    if faulted {
        println!("dataflows failed:    {}", report.dataflows_failed);
        println!("containers revoked:  {}", report.containers_revoked);
        println!("ops killed by fault: {}", report.ops_killed_by_fault);
        println!("storage faults:      {}", report.storage_faults);
        println!("straggler ops:       {}", report.straggler_ops);
        println!(
            "builds failed:       {} (+{} killed by revocation)",
            report.builds_failed, report.builds_killed_by_fault
        );
        println!("retries:             {}", report.retries);
        println!("builds crashed:      {}", report.builds_crashed);
        println!(
            "verify scan:         {} pages, {} bad, {} partitions invalidated",
            report.verify_pages_scanned, report.bad_pages_detected, report.partitions_invalidated
        );
        println!("rebuilds completed:  {}", report.rebuilds_completed);
        println!(
            "wasted:              {:.2} quanta / {}",
            report.wasted_compute_quanta.get(),
            report.wasted_cost
        );
        println!(
            "recovery latency:    p50 {:.2} / p95 {:.2} / p100 {:.2} quanta",
            report.recovery_latency_percentile(50.0),
            report.recovery_latency_percentile(95.0),
            report.recovery_latency_percentile(100.0)
        );
    }
    if csv {
        println!();
        println!("app,issued_quanta,makespan_quanta,indexed_fraction");
        for d in &report.per_dataflow {
            println!(
                "{},{:.3},{:.3},{:.3}",
                d.app,
                d.issued_quanta.get(),
                d.makespan_quanta.get(),
                d.indexed_fraction
            );
        }
    }
    ExitCode::SUCCESS
}
