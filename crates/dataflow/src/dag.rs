//! The dataflow DAG.
//!
//! Nodes are operators, edges are data flows labelled with the bytes
//! transferred (§3). The DAG is validated at construction (ids dense,
//! no self-edges, acyclic) and exposes the traversals the schedulers
//! need: topological order, predecessor/successor adjacency, roots,
//! total work and critical path.

use flowtune_common::{FlowtuneError, OpId, Result, SimDuration};

use crate::op::OpSpec;

/// A data-flow edge: `from` produces `bytes` consumed by `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producer operator.
    pub from: OpId,
    /// Consumer operator.
    pub to: OpId,
    /// Data volume transferred.
    pub bytes: u64,
}

/// A validated dataflow DAG.
#[derive(Debug, Clone)]
pub struct Dag {
    ops: Vec<OpSpec>,
    edges: Vec<Edge>,
    preds: Vec<Vec<OpId>>,
    succs: Vec<Vec<OpId>>,
    /// Aligned with `preds`: `pred_bytes[to][k]` is the total bytes on
    /// all `preds[to][k] -> to` edges. Schedulers probe edge weights
    /// once per predecessor per candidate, so the lookup must not scan
    /// the global edge list.
    pred_bytes: Vec<Vec<u64>>,
}

impl Dag {
    /// Build and validate a DAG. Operators must have dense ids
    /// `0..ops.len()` in order; edges must reference valid ids, contain
    /// no self-loops and form no cycle.
    pub fn new(ops: Vec<OpSpec>, edges: Vec<Edge>) -> Result<Self> {
        for (i, op) in ops.iter().enumerate() {
            if op.id.index() != i {
                return Err(FlowtuneError::invalid_dag(format!(
                    "operator at position {i} has id {}",
                    op.id
                )));
            }
        }
        let n = ops.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for e in &edges {
            if e.from.index() >= n || e.to.index() >= n {
                return Err(FlowtuneError::invalid_dag(format!(
                    "edge {} -> {} references missing operator",
                    e.from, e.to
                )));
            }
            if e.from == e.to {
                return Err(FlowtuneError::invalid_dag(format!(
                    "self edge at {}",
                    e.from
                )));
            }
            preds[e.to.index()].push(e.from);
            succs[e.from.index()].push(e.to);
        }
        // Per-consumer edge-byte totals, duplicate edges summed — the
        // same value the old `edge_bytes` linear scan produced.
        let mut totals: Vec<std::collections::BTreeMap<OpId, u64>> =
            vec![std::collections::BTreeMap::new(); n];
        for e in &edges {
            *totals[e.to.index()].entry(e.from).or_insert(0) += e.bytes;
        }
        let pred_bytes: Vec<Vec<u64>> = preds
            .iter()
            .enumerate()
            .map(|(to, ps)| {
                ps.iter()
                    .map(|p| totals[to].get(p).copied().unwrap_or(0))
                    .collect()
            })
            .collect();
        let dag = Dag {
            ops,
            edges,
            preds,
            succs,
            pred_bytes,
        };
        // Kahn's algorithm detects cycles.
        if dag.topo_order().len() != n {
            return Err(FlowtuneError::invalid_dag("cycle detected"));
        }
        Ok(dag)
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the DAG has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operator by id.
    pub fn op(&self, id: OpId) -> &OpSpec {
        &self.ops[id.index()]
    }

    /// All operators in id order.
    pub fn ops(&self) -> &[OpSpec] {
        &self.ops
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Direct predecessors of an operator.
    pub fn preds(&self, id: OpId) -> &[OpId] {
        &self.preds[id.index()]
    }

    /// Direct successors of an operator.
    pub fn succs(&self, id: OpId) -> &[OpId] {
        &self.succs[id.index()]
    }

    /// Bytes flowing along edge `from -> to` (0 when absent), duplicate
    /// edges summed. O(in-degree of `to`) via the prebuilt index — this
    /// sits on the scheduler's per-candidate hot path.
    pub fn edge_bytes(&self, from: OpId, to: OpId) -> u64 {
        let Some(ps) = self.preds.get(to.index()) else {
            return 0;
        };
        ps.iter()
            .position(|&p| p == from)
            .map(|k| self.pred_bytes[to.index()][k])
            .unwrap_or(0)
    }

    /// Direct predecessors of `id` paired with the total bytes on each
    /// `pred -> id` edge (aligned with [`Dag::preds`]; duplicate edges
    /// carry the summed total on every occurrence).
    pub fn preds_with_bytes(&self, id: OpId) -> impl Iterator<Item = (OpId, u64)> + '_ {
        self.preds[id.index()]
            .iter()
            .copied()
            .zip(self.pred_bytes[id.index()].iter().copied())
    }

    /// Operators with no predecessors (entry nodes).
    pub fn roots(&self) -> Vec<OpId> {
        (0..self.ops.len())
            .map(OpId::from_index)
            .filter(|id| self.preds(*id).is_empty())
            .collect()
    }

    /// Operators with no successors (exit nodes).
    pub fn sinks(&self) -> Vec<OpId> {
        (0..self.ops.len())
            .map(OpId::from_index)
            .filter(|id| self.succs(*id).is_empty())
            .collect()
    }

    /// A topological order (Kahn). Shorter than `len()` iff cyclic, which
    /// `new` rejects — so for a constructed `Dag` it always covers all
    /// operators.
    pub fn topo_order(&self) -> Vec<OpId> {
        let n = self.ops.len();
        let mut in_deg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        let mut queue: std::collections::VecDeque<OpId> = (0..n)
            .map(OpId::from_index)
            .filter(|id| in_deg[id.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &s in self.succs(id) {
                in_deg[s.index()] -= 1;
                if in_deg[s.index()] == 0 {
                    queue.push_back(s);
                }
            }
        }
        order
    }

    /// Sum of all operator runtimes (the serial execution time).
    pub fn total_work(&self) -> SimDuration {
        self.ops.iter().map(|o| o.runtime).sum()
    }

    /// Length of the critical path, ignoring communication: a lower
    /// bound on any schedule's makespan.
    pub fn critical_path(&self) -> SimDuration {
        let mut finish = vec![SimDuration::ZERO; self.ops.len()];
        for id in self.topo_order() {
            let ready = self
                .preds(id)
                .iter()
                .map(|p| finish[p.index()])
                .max()
                .unwrap_or(SimDuration::ZERO);
            finish[id.index()] = ready + self.op(id).runtime;
        }
        finish.into_iter().max().unwrap_or(SimDuration::ZERO)
    }

    /// Maximum number of operators that can run concurrently, estimated
    /// as the widest level of a longest-path level decomposition.
    pub fn width(&self) -> usize {
        let mut level = vec![0usize; self.ops.len()];
        let mut max_level = 0;
        for id in self.topo_order() {
            let l = self
                .preds(id)
                .iter()
                .map(|p| level[p.index()] + 1)
                .max()
                .unwrap_or(0);
            level[id.index()] = l;
            max_level = max_level.max(l);
        }
        let mut counts = vec![0usize; max_level + 1];
        for &l in &level {
            counts[l] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: u32, secs: u64) -> OpSpec {
        OpSpec::new(OpId(i), format!("op{i}"), SimDuration::from_secs(secs))
    }

    fn diamond() -> Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Dag::new(
            vec![op(0, 1), op(1, 2), op(2, 5), op(3, 1)],
            vec![
                Edge {
                    from: OpId(0),
                    to: OpId(1),
                    bytes: 10,
                },
                Edge {
                    from: OpId(0),
                    to: OpId(2),
                    bytes: 20,
                },
                Edge {
                    from: OpId(1),
                    to: OpId(3),
                    bytes: 30,
                },
                Edge {
                    from: OpId(2),
                    to: OpId(3),
                    bytes: 40,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn adjacency_and_lookup() {
        let d = diamond();
        assert_eq!(d.len(), 4);
        assert_eq!(d.roots(), vec![OpId(0)]);
        assert_eq!(d.sinks(), vec![OpId(3)]);
        assert_eq!(d.preds(OpId(3)), &[OpId(1), OpId(2)]);
        assert_eq!(d.succs(OpId(0)), &[OpId(1), OpId(2)]);
        assert_eq!(d.edge_bytes(OpId(2), OpId(3)), 40);
        assert_eq!(d.edge_bytes(OpId(3), OpId(0)), 0);
    }

    #[test]
    fn edge_bytes_index_matches_linear_scan_semantics() {
        // Duplicate edges sum; the pred-aligned accessor carries the
        // same totals the point lookup returns.
        let d = Dag::new(
            vec![op(0, 1), op(1, 1), op(2, 1)],
            vec![
                Edge {
                    from: OpId(0),
                    to: OpId(2),
                    bytes: 7,
                },
                Edge {
                    from: OpId(1),
                    to: OpId(2),
                    bytes: 5,
                },
                Edge {
                    from: OpId(0),
                    to: OpId(2),
                    bytes: 3,
                },
            ],
        )
        .unwrap();
        assert_eq!(d.edge_bytes(OpId(0), OpId(2)), 10);
        assert_eq!(d.edge_bytes(OpId(1), OpId(2)), 5);
        assert_eq!(d.edge_bytes(OpId(1), OpId(0)), 0);
        let got: Vec<(OpId, u64)> = d.preds_with_bytes(OpId(2)).collect();
        // Aligned with `preds`: the duplicated (0 -> 2) edge appears
        // twice, each occurrence carrying the summed total.
        assert_eq!(got, vec![(OpId(0), 10), (OpId(1), 5), (OpId(0), 10)]);
        assert!(d.preds_with_bytes(OpId(0)).next().is_none());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let d = diamond();
        let order = d.topo_order();
        let pos = |id: OpId| order.iter().position(|x| *x == id).unwrap();
        for e in d.edges() {
            assert!(pos(e.from) < pos(e.to));
        }
    }

    #[test]
    fn work_and_critical_path() {
        let d = diamond();
        assert_eq!(d.total_work(), SimDuration::from_secs(9));
        // Critical path 0 -> 2 -> 3 = 1 + 5 + 1.
        assert_eq!(d.critical_path(), SimDuration::from_secs(7));
        assert_eq!(d.width(), 2);
    }

    #[test]
    fn cycle_rejected() {
        let err = Dag::new(
            vec![op(0, 1), op(1, 1)],
            vec![
                Edge {
                    from: OpId(0),
                    to: OpId(1),
                    bytes: 0,
                },
                Edge {
                    from: OpId(1),
                    to: OpId(0),
                    bytes: 0,
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn self_edge_rejected() {
        let err = Dag::new(
            vec![op(0, 1)],
            vec![Edge {
                from: OpId(0),
                to: OpId(0),
                bytes: 0,
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("self edge"));
    }

    #[test]
    fn bad_ids_rejected() {
        let err = Dag::new(vec![op(5, 1)], vec![]).unwrap_err();
        assert!(err.to_string().contains("has id"));
        let err = Dag::new(
            vec![op(0, 1)],
            vec![Edge {
                from: OpId(0),
                to: OpId(7),
                bytes: 0,
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("missing operator"));
    }

    #[test]
    fn empty_dag_is_fine() {
        let d = Dag::new(vec![], vec![]).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.critical_path(), SimDuration::ZERO);
        assert_eq!(d.width(), 0);
    }
}
