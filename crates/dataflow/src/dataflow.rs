//! Dataflow instances and their factory.
//!
//! A [`Dataflow`] is `d(expr, R, N, t)`: a DAG, the set of input files it
//! reads, the set of indexes that can accelerate it (`N`, with a
//! per-dataflow sampled speedup each, as the paper's generator does) and
//! its issue time.

use std::collections::HashMap;

use flowtune_common::{DataflowId, FileId, IndexId, SimRng, SimTime};

use crate::apps::App;
use crate::dag::Dag;
use crate::filedb::FileDatabase;

/// The Table 6 speedup values a dataflow samples from.
pub const TABLE6_SPEEDUPS: [f64; 4] = [7.44, 94.44, 307.50, 627.14];

/// One index a dataflow can exploit, with the speedup it provides to
/// *this* dataflow's operators on partitions where the index is built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexUse {
    /// The index.
    pub index: IndexId,
    /// The file it covers (denormalised for quick lookup).
    pub file: FileId,
    /// Speedup factor (> 1).
    pub speedup: f64,
}

/// A dataflow instance issued to the service.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// Identity.
    pub id: DataflowId,
    /// Generating application.
    pub app: App,
    /// The operator DAG.
    pub dag: Dag,
    /// Issue time `t`.
    pub issued_at: SimTime,
    /// The indexes `N` that can accelerate this dataflow.
    pub index_uses: Vec<IndexUse>,
}

impl Dataflow {
    /// The speedup this dataflow gets from `index`, or `None` if the
    /// dataflow does not use it.
    pub fn speedup_of(&self, index: IndexId) -> Option<f64> {
        self.index_uses
            .iter()
            .find(|u| u.index == index)
            .map(|u| u.speedup)
    }

    /// The best usable index (and its speedup) for a given file, if any.
    pub fn best_index_for(&self, file: FileId) -> Option<&IndexUse> {
        self.index_uses
            .iter()
            .filter(|u| u.file == file)
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
    }

    /// Distinct files read by this dataflow's operators.
    pub fn files_read(&self) -> Vec<FileId> {
        let mut files: Vec<FileId> = self
            .dag
            .ops()
            .iter()
            .flat_map(|o| o.reads.iter().map(|p| p.file))
            .collect();
        files.sort_unstable();
        files.dedup();
        files
    }
}

/// Builds dataflow instances against a file database.
#[derive(Debug)]
pub struct DataflowFactory {
    filedb: FileDatabase,
    ops_per_dataflow: usize,
    rng: SimRng,
}

impl DataflowFactory {
    /// Create a factory. `ops_per_dataflow` is the target DAG size
    /// (Table 3: 100).
    pub fn new(filedb: FileDatabase, ops_per_dataflow: usize, rng: SimRng) -> Self {
        DataflowFactory {
            filedb,
            ops_per_dataflow,
            rng,
        }
    }

    /// Access the underlying file database.
    pub fn filedb(&self) -> &FileDatabase {
        &self.filedb
    }

    /// Generate one dataflow of the given application issued at `t`.
    ///
    /// An exploratory query touches a handful of tables, not the whole
    /// database: the dataflow reads all partitions of a random subset of
    /// 2–5 of its application's files, popularity-skewed (like the
    /// `Dataflow1 (idx1, idx3)` associations of Fig. 1). For each chosen file it is associated
    /// with one of the file's four potential indexes picked at random,
    /// with a speedup sampled from Table 6 — "each generated dataflow
    /// having different speed-ups for the indexes it uses".
    pub fn make(&mut self, id: DataflowId, app: App, issued_at: SimTime) -> Dataflow {
        // Choose the file subset with popularity skew (weighted sampling
        // without replacement, Efraimidis-Spirakis keys): exploratory
        // workloads hit hot tables far more often than cold ones, which
        // is what makes indexes reusable across dataflows.
        let app_files: Vec<FileId> = self.filedb.files_of(app).map(|f| f.id).collect();
        let mut keyed: Vec<(f64, FileId)> = app_files
            .iter()
            .enumerate()
            .map(|(rank, f)| {
                let weight = 1.0 / (rank as f64 + 1.0).powf(1.5);
                (self.rng.uniform().powf(1.0 / weight), *f)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
        let hi = 5.min(app_files.len()) as u64;
        let lo = 2.min(hi);
        let n_files = if lo < hi {
            self.rng.uniform_u64(lo, hi + 1)
        } else {
            hi
        } as usize;
        let chosen: Vec<FileId> = keyed
            .into_iter()
            .take(n_files.max(1))
            .map(|(_, f)| f)
            .collect();

        let reads: Vec<_> = chosen
            .iter()
            .flat_map(|f| self.filedb.file(*f).partitions.iter().map(|p| p.id))
            .collect();
        let dag = app.generate(self.ops_per_dataflow, &reads, &mut self.rng);
        // One useful index per chosen file: usually the file's primary
        // candidate (as a consistent index advisor would suggest),
        // sometimes another column; dataflow-specific speedup.
        let mut index_uses = Vec::new();
        let mut seen: HashMap<FileId, ()> = HashMap::new();
        for p in &reads {
            if seen.insert(p.file, ()).is_none() {
                let index = if self.rng.chance(0.9) {
                    self.filedb.primary_index_of(p.file).id
                } else {
                    let candidates: Vec<_> = self.filedb.indexes_of(p.file).collect();
                    let pick = self.rng.uniform_u64(0, candidates.len() as u64) as usize;
                    candidates[pick].id
                };
                let speedup = *self.rng.choose(&TABLE6_SPEEDUPS);
                index_uses.push(IndexUse {
                    index,
                    file: p.file,
                    speedup,
                });
            }
        }
        Dataflow {
            id,
            app,
            dag,
            issued_at,
            index_uses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factory() -> DataflowFactory {
        let mut rng = SimRng::seed_from_u64(11);
        let db = FileDatabase::generate(&mut rng);
        DataflowFactory::new(db, 100, rng)
    }

    #[test]
    fn dataflow_reads_a_subset_of_its_apps_files() {
        let mut f = factory();
        let df = f.make(DataflowId(0), App::Montage, SimTime::ZERO);
        assert_eq!(df.app, App::Montage);
        let files = df.files_read();
        assert!((2..=5).contains(&files.len()), "{} files", files.len());
        for file in &files {
            assert_eq!(f.filedb().file(*file).app, App::Montage);
        }
    }

    #[test]
    fn one_index_per_file_with_table6_speedup() {
        let mut f = factory();
        let df = f.make(DataflowId(1), App::Ligo, SimTime::from_secs(60));
        assert_eq!(df.index_uses.len(), df.files_read().len());
        for u in &df.index_uses {
            assert!(
                TABLE6_SPEEDUPS.contains(&u.speedup),
                "speedup {}",
                u.speedup
            );
            let spec = &f.filedb().potential_indexes()[u.index.index()];
            assert_eq!(spec.file, u.file);
        }
    }

    #[test]
    fn speedup_lookup() {
        let mut f = factory();
        let df = f.make(DataflowId(2), App::Cybershake, SimTime::ZERO);
        let u = df.index_uses[0];
        assert_eq!(df.speedup_of(u.index), Some(u.speedup));
        assert_eq!(df.speedup_of(IndexId(9999)), None);
        let best = df.best_index_for(u.file).unwrap();
        assert!(best.speedup >= u.speedup);
    }

    #[test]
    fn different_dataflows_sample_different_speedups() {
        let mut f = factory();
        let a = f.make(DataflowId(0), App::Montage, SimTime::ZERO);
        let b = f.make(DataflowId(1), App::Montage, SimTime::ZERO);
        // Identical file subsets, index picks and speedups across two
        // dataflows would indicate a broken RNG.
        let sig = |df: &Dataflow| {
            df.index_uses
                .iter()
                .map(|u| (u.index, u.speedup.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_ne!(sig(&a), sig(&b));
    }
}
