//! Dataflow arrival clients.
//!
//! A *Dataflow Generator Client* issues dataflows at Poisson arrival
//! times (λ = one quantum by default). Two mixes are used in the paper's
//! §6.5: **random** (each arrival picks an application uniformly) and
//! **phases** (CyberShake → LIGO → Montage → CyberShake, to measure
//! adaptation to workload change).

use flowtune_common::{SimDuration, SimRng, SimTime};

use crate::apps::App;

/// How the application of each arrival is chosen.
#[derive(Debug, Clone)]
pub enum WorkloadKind {
    /// Uniformly random application per arrival (§6.5.2).
    Random,
    /// Fixed phases: each entry is `(app, phase length)`; arrivals inside
    /// a phase are of that application. After the last phase the final
    /// application keeps being issued.
    Phases(Vec<(App, SimDuration)>),
}

impl WorkloadKind {
    /// The paper's phase schedule (§6.1): CyberShake for 10 000 s, LIGO
    /// for 5 000 s, Montage for 20 000 s, CyberShake for 8 200 s —
    /// 43 200 s = 720 quanta in total.
    pub fn paper_phases() -> Self {
        WorkloadKind::Phases(vec![
            (App::Cybershake, SimDuration::from_secs(10_000)),
            (App::Ligo, SimDuration::from_secs(5_000)),
            (App::Montage, SimDuration::from_secs(20_000)),
            (App::Cybershake, SimDuration::from_secs(8_200)),
        ])
    }

    fn app_at(&self, t: SimTime, rng: &mut SimRng) -> App {
        match self {
            WorkloadKind::Random => *rng.choose(&App::ALL),
            WorkloadKind::Phases(phases) => {
                let mut start = SimTime::ZERO;
                for (app, len) in phases {
                    if t < start + *len {
                        return *app;
                    }
                    start += *len;
                }
                phases.last().map(|(app, _)| *app).unwrap_or(App::Montage)
            }
        }
    }
}

/// Poisson arrival process paired with a workload mix.
#[derive(Debug)]
pub struct ArrivalClient {
    kind: WorkloadKind,
    mean_interarrival: SimDuration,
    rng: SimRng,
    next_time: SimTime,
}

impl ArrivalClient {
    /// Create a client; `mean_interarrival` is the Poisson λ expressed
    /// as a mean gap (Table 3: one quantum = 60 s).
    pub fn new(kind: WorkloadKind, mean_interarrival: SimDuration, rng: SimRng) -> Self {
        assert!(
            !mean_interarrival.is_zero(),
            "mean inter-arrival must be positive"
        );
        let mut client = ArrivalClient {
            kind,
            mean_interarrival,
            rng,
            next_time: SimTime::ZERO,
        };
        client.advance();
        client
    }

    fn advance(&mut self) {
        let gap = self.rng.exponential(self.mean_interarrival.as_secs_f64());
        self.next_time += SimDuration::from_secs_f64(gap);
    }

    /// Next arrival: `(time, application)`. Call repeatedly; arrivals are
    /// strictly ordered in time.
    pub fn next_arrival(&mut self) -> (SimTime, App) {
        let t = self.next_time;
        let app = self.kind.app_at(t, &mut self.rng);
        self.advance();
        (t, app)
    }

    /// All arrivals up to `horizon`.
    pub fn arrivals_until(&mut self, horizon: SimTime) -> Vec<(SimTime, App)> {
        let mut out = Vec::new();
        while self.next_time <= horizon {
            out.push(self.next_arrival());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: u64) -> SimDuration {
        SimDuration::from_secs(60 * n)
    }

    #[test]
    fn poisson_rate_is_about_one_per_quantum() {
        let mut c = ArrivalClient::new(WorkloadKind::Random, q(1), SimRng::seed_from_u64(1));
        let horizon = SimTime::ZERO + q(720);
        let arrivals = c.arrivals_until(horizon);
        // 720 expected; Poisson stdev ~27.
        assert!(
            (620..820).contains(&arrivals.len()),
            "{} arrivals",
            arrivals.len()
        );
        assert!(
            arrivals.windows(2).all(|w| w[0].0 < w[1].0),
            "arrivals must be ordered"
        );
    }

    #[test]
    fn random_mix_covers_all_apps() {
        let mut c = ArrivalClient::new(WorkloadKind::Random, q(1), SimRng::seed_from_u64(2));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(c.next_arrival().1);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn phases_switch_apps_at_boundaries() {
        let kind = WorkloadKind::paper_phases();
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(
            kind.app_at(SimTime::from_secs(0), &mut rng),
            App::Cybershake
        );
        assert_eq!(
            kind.app_at(SimTime::from_secs(9_999), &mut rng),
            App::Cybershake
        );
        assert_eq!(kind.app_at(SimTime::from_secs(10_000), &mut rng), App::Ligo);
        assert_eq!(
            kind.app_at(SimTime::from_secs(15_000), &mut rng),
            App::Montage
        );
        assert_eq!(
            kind.app_at(SimTime::from_secs(35_000), &mut rng),
            App::Cybershake
        );
        // Past the last phase: keeps issuing the final app.
        assert_eq!(
            kind.app_at(SimTime::from_secs(99_999), &mut rng),
            App::Cybershake
        );
    }

    #[test]
    fn paper_phases_cover_the_720_quantum_horizon() {
        if let WorkloadKind::Phases(phases) = WorkloadKind::paper_phases() {
            let total: SimDuration = phases.iter().map(|(_, d)| *d).sum();
            assert_eq!(total, SimDuration::from_secs(43_200));
        } else {
            panic!("paper_phases must be phased");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ArrivalClient::new(WorkloadKind::Random, q(1), SimRng::seed_from_u64(4));
        let mut b = ArrivalClient::new(WorkloadKind::Random, q(1), SimRng::seed_from_u64(4));
        for _ in 0..50 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }
}
