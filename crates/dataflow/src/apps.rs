//! Scientific-application DAG generators.
//!
//! Re-implements the structural shapes of Montage, LIGO and CyberShake
//! (Fig. 5 of the paper, after Bharathi et al., "Characterization of
//! Scientific Workflows", WORKS 2008) with operator runtimes and input
//! file sizes sampled from clamped log-normal distributions fit to the
//! paper's Table 4:
//!
//! | app        | ops | time min/max/mean/stdev (s)  | files | MB min/max/mean/stdev |
//! |------------|-----|------------------------------|-------|------------------------|
//! | Montage    | 100 | 3.82 / 49.32 / 11.32 / 2.95  | 20    | 0.01 / 4.02 / 3.22 / 1.65 |
//! | LIGO       | 100 | 4.03 / 689.39 / 222.33 / 241.42 | 53 | 0.86 / 14.91 / 14.24 / 2.70 |
//! | CyberShake | 100 | 0.55 / 199.43 / 22.97 / 25.08 | 52   | 1.81 / 19169.75 / 1459.08 / 5091.69 |

use flowtune_common::{OpId, PartitionId, SimDuration, SimRng};

use crate::dag::{Dag, Edge};
use crate::op::OpSpec;

/// The three benchmark applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Astronomy image mosaics (fan-out / fan-in ladder).
    Montage,
    /// Gravitational-wave analysis (two pipelined stages of grouped
    /// parallel tasks).
    Ligo,
    /// Earthquake characterisation (two huge fan-outs with per-task
    /// post-processing).
    Cybershake,
}

/// Distribution statistics of one application (Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppStats {
    /// Operator runtime in seconds: (min, max, mean, stdev).
    pub time: (f64, f64, f64, f64),
    /// Number of input files in the file database.
    pub input_files: usize,
    /// Input file size in MB: (min, max, mean, stdev).
    pub input_mb: (f64, f64, f64, f64),
    /// Mean intermediate edge size in MB (drives communication costs).
    pub edge_mb: f64,
}

impl App {
    /// All applications, in the paper's order.
    pub const ALL: [App; 3] = [App::Montage, App::Ligo, App::Cybershake];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            App::Montage => "Montage",
            App::Ligo => "Ligo",
            App::Cybershake => "Cybershake",
        }
    }

    /// Table 4 statistics for this application.
    pub fn stats(self) -> AppStats {
        match self {
            App::Montage => AppStats {
                time: (3.82, 49.32, 11.32, 2.95),
                input_files: 20,
                input_mb: (0.01, 4.02, 3.22, 1.65),
                edge_mb: 3.0,
            },
            App::Ligo => AppStats {
                time: (4.03, 689.39, 222.33, 241.42),
                input_files: 53,
                input_mb: (0.86, 14.91, 14.24, 2.70),
                edge_mb: 10.0,
            },
            App::Cybershake => AppStats {
                time: (0.55, 199.43, 22.97, 25.08),
                input_files: 52,
                input_mb: (1.81, 19_169.75, 1459.08, 5091.69),
                edge_mb: 120.0,
            },
        }
    }

    /// Sample one operator runtime from this app's distribution.
    pub fn sample_runtime(self, rng: &mut SimRng) -> SimDuration {
        let (min, max, mean, stdev) = self.stats().time;
        SimDuration::from_secs_f64(rng.lognormal_clamped(mean, stdev, min, max))
    }

    /// Sample one input-file size in bytes from this app's distribution.
    ///
    /// CyberShake's published statistics (mean 1459 MB, stdev 5092 MB,
    /// max 19 GB) describe a distribution whose mass sits in a few huge
    /// SGT files; a clamped log-normal chops that tail and lands far
    /// below the mean, so CyberShake uses an explicit small/huge mixture
    /// calibrated to the published moments instead.
    pub fn sample_file_bytes(self, rng: &mut SimRng) -> u64 {
        let (min, max, mean, stdev) = self.stats().input_mb;
        let mb = if self == App::Cybershake {
            if rng.chance(0.15) {
                // The huge-SGT tail: ~15 % of files carry most bytes.
                rng.uniform_range(2_500.0, max * 0.85)
            } else {
                rng.lognormal_clamped(160.0, 300.0, min, 2_000.0)
            }
        } else {
            rng.lognormal_clamped(mean, stdev, min, max)
        };
        (mb * 1024.0 * 1024.0).round() as u64
    }

    fn sample_edge_bytes(self, rng: &mut SimRng) -> u64 {
        let mean = self.stats().edge_mb;
        (rng.lognormal_clamped(mean, mean, mean * 0.05, mean * 10.0) * 1024.0 * 1024.0).round()
            as u64
    }

    /// Generate a DAG of approximately `target_ops` operators, reading
    /// the given base-table partitions at its entry operators.
    ///
    /// `reads` are distributed round-robin over the entry-level
    /// operators; pass the partitions of this app's files from the file
    /// database.
    pub fn generate(self, target_ops: usize, reads: &[PartitionId], rng: &mut SimRng) -> Dag {
        match self {
            App::Montage => montage(target_ops, reads, rng),
            App::Ligo => ligo(target_ops, reads, rng),
            App::Cybershake => cybershake(target_ops, reads, rng),
        }
    }
}

/// Incremental DAG builder used by the shape functions.
struct Builder {
    app: App,
    ops: Vec<OpSpec>,
    edges: Vec<Edge>,
}

impl Builder {
    fn new(app: App) -> Self {
        Builder {
            app,
            ops: Vec::new(),
            edges: Vec::new(),
        }
    }

    fn add(&mut self, name: &str, rng: &mut SimRng) -> OpId {
        let id = OpId::from_index(self.ops.len());
        let mut op = OpSpec::new(id, name, self.app.sample_runtime(rng));
        op.memory = rng.uniform_range(0.05, 0.5);
        op.cpu = 1.0;
        self.ops.push(op);
        id
    }

    fn connect(&mut self, from: OpId, to: OpId, rng: &mut SimRng) {
        let bytes = self.app.sample_edge_bytes(rng);
        self.edges.push(Edge { from, to, bytes });
    }

    fn finish(self, reads: &[PartitionId]) -> Dag {
        // Assign base partitions to operators cyclically so that *every*
        // operator reads base data and every partition is read by
        // multiple operators — as in the paper's Fig. 2a, where both Q1
        // and both Q2 operators read partitions A.0/A.1, and §3: every
        // operator "can make use of [indexes] associated to partitions
        // it accesses".
        let mut ops = self.ops;
        if !reads.is_empty() && !ops.is_empty() {
            let n_ops = ops.len();
            let rounds = n_ops.max(reads.len());
            for i in 0..rounds {
                ops[i % n_ops].reads.push(reads[i % reads.len()]);
            }
        }
        #[allow(clippy::expect_used)]
        // flowtune-allow(panic-hygiene): edges only connect ops this generator just created, earlier to later
        Dag::new(ops, self.edges).expect("generator produced invalid DAG")
    }
}

/// Montage (Fig. 5A): `mProject`×k → `mDiffFit`×~1.5k (each joining two
/// overlapping projections) → `mConcatFit` → `mBgModel` → `mBackground`×k
/// (also fed by its projection) → `mImgtbl` → `mAdd` → `mShrink` →
/// `mJPEG`.
fn montage(target_ops: usize, reads: &[PartitionId], rng: &mut SimRng) -> Dag {
    // ops = k (project) + d (diff) + 2 + k (background) + 3, d ≈ 1.5k.
    let k = (((target_ops.max(9) - 5) as f64) / 3.5).round().max(1.0) as usize;
    let d = ((1.5 * k as f64).round() as usize).max(1);
    let mut b = Builder::new(App::Montage);
    let projects: Vec<OpId> = (0..k).map(|_| b.add("mProject", rng)).collect();
    let diffs: Vec<OpId> = (0..d).map(|_| b.add("mDiffFit", rng)).collect();
    for (i, &diff) in diffs.iter().enumerate() {
        b.connect(projects[i % k], diff, rng);
        if k > 1 {
            b.connect(projects[(i + 1) % k], diff, rng);
        }
    }
    let concat = b.add("mConcatFit", rng);
    for &diff in &diffs {
        b.connect(diff, concat, rng);
    }
    let bg_model = b.add("mBgModel", rng);
    b.connect(concat, bg_model, rng);
    let backgrounds: Vec<OpId> = (0..k).map(|_| b.add("mBackground", rng)).collect();
    for (i, &bg) in backgrounds.iter().enumerate() {
        b.connect(bg_model, bg, rng);
        b.connect(projects[i], bg, rng);
    }
    let imgtbl = b.add("mImgtbl", rng);
    for &bg in &backgrounds {
        b.connect(bg, imgtbl, rng);
    }
    let add = b.add("mAdd", rng);
    b.connect(imgtbl, add, rng);
    let shrink = b.add("mShrink", rng);
    b.connect(add, shrink, rng);
    let jpeg = b.add("mJPEG", rng);
    b.connect(shrink, jpeg, rng);
    b.finish(reads)
}

/// LIGO (Fig. 5B): two pipelined stages; each stage is `TmpltBank`×k →
/// `Inspiral`×k → `Thinca`×⌈k/5⌉ over groups of five. Stage-2 trigger
/// banks hang off stage-1 Thincas.
fn ligo(target_ops: usize, reads: &[PartitionId], rng: &mut SimRng) -> Dag {
    let k = ((target_ops.max(10) as f64) / 4.4).round().max(1.0) as usize;
    let groups = k.div_ceil(5);
    let mut b = Builder::new(App::Ligo);
    // Stage 1.
    let banks: Vec<OpId> = (0..k).map(|_| b.add("TmpltBank", rng)).collect();
    let inspirals: Vec<OpId> = (0..k).map(|_| b.add("Inspiral", rng)).collect();
    for (bank, insp) in banks.iter().zip(&inspirals) {
        b.connect(*bank, *insp, rng);
    }
    let thincas: Vec<OpId> = (0..groups).map(|_| b.add("Thinca", rng)).collect();
    for (i, insp) in inspirals.iter().enumerate() {
        b.connect(*insp, thincas[i / 5], rng);
    }
    // Stage 2.
    let trig_banks: Vec<OpId> = (0..k).map(|_| b.add("TrigBank", rng)).collect();
    let inspirals2: Vec<OpId> = (0..k).map(|_| b.add("Inspiral2", rng)).collect();
    for (i, tb) in trig_banks.iter().enumerate() {
        b.connect(thincas[i / 5], *tb, rng);
        b.connect(*tb, inspirals2[i], rng);
    }
    let thincas2: Vec<OpId> = (0..groups).map(|_| b.add("Thinca2", rng)).collect();
    for (i, insp) in inspirals2.iter().enumerate() {
        b.connect(*insp, thincas2[i / 5], rng);
    }
    b.finish(reads)
}

/// CyberShake (Fig. 5C): two `ExtractSGT` roots feed s
/// `SeismogramSynthesis` tasks each with a `PeakValCalc`; `ZipSeis`
/// collects all seismograms and `ZipPSA` all peak values.
fn cybershake(target_ops: usize, reads: &[PartitionId], rng: &mut SimRng) -> Dag {
    let s = ((target_ops.max(6) - 4) / 2).max(1);
    let mut b = Builder::new(App::Cybershake);
    let sgt: Vec<OpId> = (0..2).map(|_| b.add("ExtractSGT", rng)).collect();
    let zip_seis = b.add("ZipSeis", rng);
    let zip_psa = b.add("ZipPSA", rng);
    for i in 0..s {
        let synth = b.add("SeismogramSynthesis", rng);
        b.connect(sgt[i % 2], synth, rng);
        let peak = b.add("PeakValCalc", rng);
        b.connect(synth, peak, rng);
        b.connect(synth, zip_seis, rng);
        b.connect(peak, zip_psa, rng);
    }
    b.finish(reads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::{FileId, OnlineStats};

    fn parts(n: u32) -> Vec<PartitionId> {
        (0..n)
            .map(|i| PartitionId::new(FileId(i / 4), i % 4))
            .collect()
    }

    #[test]
    fn generators_hit_target_size() {
        let mut rng = SimRng::seed_from_u64(1);
        for app in App::ALL {
            let dag = app.generate(100, &parts(8), &mut rng);
            let n = dag.len();
            assert!(
                (90..=110).contains(&n),
                "{} produced {n} ops for target 100",
                app.name()
            );
        }
    }

    #[test]
    fn dags_are_connected_fan_structures() {
        let mut rng = SimRng::seed_from_u64(2);
        for app in App::ALL {
            let dag = app.generate(100, &parts(8), &mut rng);
            assert!(!dag.roots().is_empty(), "{}", app.name());
            assert!(!dag.sinks().is_empty(), "{}", app.name());
            assert!(dag.width() >= 10, "{} width {}", app.name(), dag.width());
            // Multi-level pipeline: critical path strictly between one op
            // and all ops.
            assert!(dag.critical_path() > SimDuration::ZERO);
            assert!(dag.critical_path() < dag.total_work());
        }
    }

    #[test]
    fn reads_are_distributed_across_operators() {
        let mut rng = SimRng::seed_from_u64(3);
        // Fewer partitions than operators: every op still reads one.
        let dag = App::Montage.generate(100, &parts(16), &mut rng);
        assert!(dag.ops().iter().all(|o| !o.reads.is_empty()));
        let max = dag.ops().iter().map(|o| o.reads.len()).max().unwrap();
        assert_eq!(max, 1, "with P < ops each op reads exactly one partition");
        // Each partition is shared by several operators (Fig. 2a).
        let readers_of_first = dag
            .ops()
            .iter()
            .filter(|o| o.reads.contains(&parts(16)[0]))
            .count();
        assert!(readers_of_first >= 2, "{readers_of_first} readers");
        // More partitions than operators wraps the other way.
        let dag = App::Montage.generate(100, &parts(250), &mut rng);
        assert!(dag.ops().iter().all(|o| !o.reads.is_empty()));
        let attached: usize = dag.ops().iter().map(|o| o.reads.len()).sum();
        assert_eq!(attached, 250);
    }

    #[test]
    fn runtime_statistics_match_table4() {
        let mut rng = SimRng::seed_from_u64(4);
        for app in App::ALL {
            let (min, max, mean, _stdev) = app.stats().time;
            let mut stats = OnlineStats::new();
            for _ in 0..30 {
                let dag = app.generate(100, &[], &mut rng);
                for op in dag.ops() {
                    stats.push(op.runtime.as_secs_f64());
                }
            }
            assert!(
                stats.min() >= min - 1e-9,
                "{} min {}",
                app.name(),
                stats.min()
            );
            assert!(
                stats.max() <= max + 1e-9,
                "{} max {}",
                app.name(),
                stats.max()
            );
            // Clamping biases the mean slightly; accept 25 %.
            let tol = 0.25 * mean;
            assert!(
                (stats.mean() - mean).abs() < tol,
                "{} mean {} (table {})",
                app.name(),
                stats.mean(),
                mean
            );
        }
    }

    #[test]
    fn montage_shape_has_expected_stages() {
        let mut rng = SimRng::seed_from_u64(5);
        let dag = App::Montage.generate(100, &[], &mut rng);
        let names: std::collections::HashSet<&str> =
            dag.ops().iter().map(|o| o.name.as_str()).collect();
        for stage in [
            "mProject",
            "mDiffFit",
            "mConcatFit",
            "mBgModel",
            "mBackground",
            "mAdd",
        ] {
            assert!(names.contains(stage), "missing {stage}");
        }
        // mProject ops are the roots.
        for r in dag.roots() {
            assert_eq!(dag.op(r).name, "mProject");
        }
    }

    #[test]
    fn cybershake_has_two_roots_and_two_aggregators() {
        let mut rng = SimRng::seed_from_u64(6);
        let dag = App::Cybershake.generate(100, &[], &mut rng);
        assert_eq!(dag.roots().len(), 2);
        let sinks = dag.sinks();
        assert_eq!(sinks.len(), 2);
        for s in sinks {
            assert!(dag.op(s).name.starts_with("Zip"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = App::Ligo.generate(80, &parts(4), &mut SimRng::seed_from_u64(7));
        let b = App::Ligo.generate(80, &parts(4), &mut SimRng::seed_from_u64(7));
        assert_eq!(a.ops(), b.ops());
        assert_eq!(a.edges(), b.edges());
    }
}
