//! # flowtune-dataflow
//!
//! Dataflow model and workload synthesis.
//!
//! A dataflow `d(expr, R, N, t)` is a DAG of operators with data-flow
//! edges (§3, "Application Model"). The paper evaluates on synthetic
//! instances of three real scientific applications — **Montage** (sky
//! mosaics), **LIGO** (gravitational-wave analysis) and **CyberShake**
//! (earthquake characterisation) — produced by the Bharathi et al.
//! workflow generator. This crate re-implements those generators: the
//! published DAG shapes with operator runtimes and input sizes sampled
//! to match the paper's Table 4 statistics.
//!
//! It also provides the **file database** the dataflows read (125 files,
//! 76.69 GB, ≤128 MB partitions → ~713 partitions, four potential
//! indexes per file) and the **arrival clients** (Poisson arrivals;
//! random or phased application mix).

pub mod apps;
pub mod client;
pub mod dag;
pub mod dataflow;
pub mod filedb;
pub mod op;

pub use apps::{App, AppStats};
pub use client::{ArrivalClient, WorkloadKind};
pub use dag::{Dag, Edge};
pub use dataflow::{Dataflow, DataflowFactory, IndexUse};
pub use filedb::{FileDatabase, FileEntry, PartitionInfo, PotentialIndex};
pub use op::OpSpec;
