//! Dataflow operators.
//!
//! An operator is `op(cpu, memory, disk, time)` (§3): resource demands
//! plus an estimated runtime. Operators that read base-table partitions
//! list them in `reads`; these are the operators an index can
//! accelerate.

use flowtune_common::{OpId, PartitionId, SimDuration};

/// One dataflow operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpec {
    /// Identity within the dataflow.
    pub id: OpId,
    /// Stage name (e.g. `mProject`, `Inspiral`).
    pub name: String,
    /// CPU demand as a fraction of one container CPU, in `(0, 1]`.
    pub cpu: f64,
    /// Memory demand as a fraction of container memory, in `(0, 1]`.
    pub memory: f64,
    /// Scratch disk demand in bytes.
    pub disk_bytes: u64,
    /// Estimated runtime on one container.
    pub runtime: SimDuration,
    /// Base-table partitions this operator reads (empty for operators
    /// consuming only intermediate data).
    pub reads: Vec<PartitionId>,
}

impl OpSpec {
    /// Convenience constructor with unit CPU, modest memory, no reads.
    pub fn new(id: OpId, name: impl Into<String>, runtime: SimDuration) -> Self {
        OpSpec {
            id,
            name: name.into(),
            cpu: 1.0,
            memory: 0.25,
            disk_bytes: 0,
            runtime,
            reads: Vec::new(),
        }
    }

    /// Builder-style: set the partitions this operator reads.
    pub fn with_reads(mut self, reads: Vec<PartitionId>) -> Self {
        self.reads = reads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::FileId;

    #[test]
    fn construction_defaults() {
        let op = OpSpec::new(OpId(3), "mProject", SimDuration::from_secs(11));
        assert_eq!(op.id, OpId(3));
        assert_eq!(op.cpu, 1.0);
        assert!(op.reads.is_empty());
    }

    #[test]
    fn with_reads_attaches_partitions() {
        let p = PartitionId::new(FileId(1), 0);
        let op = OpSpec::new(OpId(0), "scan", SimDuration::from_secs(5)).with_reads(vec![p]);
        assert_eq!(op.reads, vec![p]);
    }
}
