//! The file database the dataflows read.
//!
//! The paper uses the input files of the three applications as "a
//! database of files": 125 files totalling 76.69 GB, split into ≤128 MB
//! partitions (713 partitions in total), with **four potential indexes
//! per file** — sized using the Table 5 column percentages of TPC-H
//! `lineitem` (`comment`, `shipinstruct`, `commitdate`, `orderkey`).

use flowtune_common::{FileId, IndexId, PartitionId, SimRng};

use crate::apps::App;

/// Maximum partition size (128 MB), as in the paper.
pub const MAX_PARTITION_BYTES: u64 = 128 * 1024 * 1024;

/// Average row size of the file contents: lineitem-like rows (~117 B),
/// used to convert partition bytes to row counts for the index models.
pub const ROW_BYTES: f64 = 117.0;

/// The four indexable columns with their average key sizes in bytes
/// (from the TPC-H `lineitem` statistics behind Table 5).
pub const INDEX_COLUMNS: [(&str, f64); 4] = [
    ("comment", 27.0),
    ("shipinstruct", 12.0),
    ("commitdate", 10.0),
    ("orderkey", 4.0),
];

/// One partition of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionInfo {
    /// Identity.
    pub id: PartitionId,
    /// Size in bytes (≤ [`MAX_PARTITION_BYTES`]).
    pub bytes: u64,
    /// Approximate row count (`bytes / ROW_BYTES`).
    pub rows: u64,
}

/// One file in the database.
#[derive(Debug, Clone)]
pub struct FileEntry {
    /// Identity.
    pub id: FileId,
    /// The application whose dataflows read this file.
    pub app: App,
    /// Total size in bytes.
    pub bytes: u64,
    /// Partitions (≤ 128 MB each).
    pub partitions: Vec<PartitionInfo>,
}

/// A potential (advisor-suggested) index over one column of one file.
///
/// The id is stable: the `flowtune-core` service registers potential
/// indexes into the `flowtune-index` catalog in this exact order, so the
/// ordinal here *is* the catalog [`IndexId`].
#[derive(Debug, Clone)]
pub struct PotentialIndex {
    /// Stable identity (position in [`FileDatabase::potential_indexes`]).
    pub id: IndexId,
    /// Indexed file.
    pub file: FileId,
    /// Indexed column name.
    pub column: &'static str,
    /// Average key size in bytes (index record = key + 8-byte row
    /// pointer).
    pub key_bytes: f64,
}

impl PotentialIndex {
    /// Average index record size: key plus an 8-byte row pointer.
    pub fn rec_bytes(&self) -> f64 {
        self.key_bytes + 8.0
    }
}

/// The full file database.
#[derive(Debug, Clone)]
pub struct FileDatabase {
    files: Vec<FileEntry>,
    indexes: Vec<PotentialIndex>,
}

impl FileDatabase {
    /// Generate the database: for each application, its Table 4 file
    /// count with sizes sampled from its input-size distribution, split
    /// into partitions, plus four potential indexes per file.
    pub fn generate(rng: &mut SimRng) -> Self {
        let mut files = Vec::new();
        for app in App::ALL {
            for _ in 0..app.stats().input_files {
                let id = FileId::from_index(files.len());
                let bytes = app.sample_file_bytes(rng);
                files.push(FileEntry {
                    id,
                    app,
                    bytes,
                    partitions: partition(id, bytes),
                });
            }
        }
        let mut indexes = Vec::new();
        for f in &files {
            for (column, key_bytes) in INDEX_COLUMNS {
                indexes.push(PotentialIndex {
                    id: IndexId::from_index(indexes.len()),
                    file: f.id,
                    column,
                    key_bytes,
                });
            }
        }
        FileDatabase { files, indexes }
    }

    /// All files.
    pub fn files(&self) -> &[FileEntry] {
        &self.files
    }

    /// File by id.
    pub fn file(&self, id: FileId) -> &FileEntry {
        &self.files[id.index()]
    }

    /// Files read by one application's dataflows.
    pub fn files_of(&self, app: App) -> impl Iterator<Item = &FileEntry> {
        self.files.iter().filter(move |f| f.app == app)
    }

    /// All partitions of one application's files, in id order.
    pub fn partitions_of(&self, app: App) -> Vec<PartitionId> {
        self.files_of(app)
            .flat_map(|f| f.partitions.iter().map(|p| p.id))
            .collect()
    }

    /// Partition info by id.
    pub fn partition(&self, id: PartitionId) -> &PartitionInfo {
        &self.files[id.file.index()].partitions[id.part as usize]
    }

    /// All potential indexes (four per file), id-ordered.
    pub fn potential_indexes(&self) -> &[PotentialIndex] {
        &self.indexes
    }

    /// Potential indexes over one file.
    pub fn indexes_of(&self, file: FileId) -> impl Iterator<Item = &PotentialIndex> {
        self.indexes.iter().filter(move |i| i.file == file)
    }

    /// The file's *primary* candidate index — the one an index advisor
    /// would suggest most often for this file's dominant access pattern.
    /// Deterministic per file, spread across the four columns.
    pub fn primary_index_of(&self, file: FileId) -> &PotentialIndex {
        let pick = (file.0 as usize).wrapping_mul(2654435761) % INDEX_COLUMNS.len();
        #[allow(clippy::expect_used)]
        self.indexes_of(file)
            .nth(pick)
            // flowtune-allow(panic-hygiene): indexes_of yields one entry per INDEX_COLUMNS and pick < its length
            .expect("every file has four indexes")
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.bytes).sum()
    }

    /// Total number of partitions.
    pub fn total_partitions(&self) -> usize {
        self.files.iter().map(|f| f.partitions.len()).sum()
    }
}

fn partition(file: FileId, bytes: u64) -> Vec<PartitionInfo> {
    let mut parts = Vec::new();
    let mut remaining = bytes.max(1);
    let mut ordinal = 0u32;
    while remaining > 0 {
        let sz = remaining.min(MAX_PARTITION_BYTES);
        parts.push(PartitionInfo {
            id: PartitionId::new(file, ordinal),
            bytes: sz,
            rows: (sz as f64 / ROW_BYTES).round() as u64,
        });
        remaining -= sz;
        ordinal += 1;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> FileDatabase {
        FileDatabase::generate(&mut SimRng::seed_from_u64(42))
    }

    #[test]
    fn file_counts_match_table4() {
        let db = db();
        assert_eq!(db.files().len(), 125);
        assert_eq!(db.files_of(App::Montage).count(), 20);
        assert_eq!(db.files_of(App::Ligo).count(), 53);
        assert_eq!(db.files_of(App::Cybershake).count(), 52);
    }

    #[test]
    fn totals_are_in_the_papers_ballpark() {
        let db = db();
        let gb = db.total_bytes() as f64 / (1024.0 * 1024.0 * 1024.0);
        // Paper: 76.69 GB and 713 partitions. Sampling noise allowed.
        assert!((40.0..120.0).contains(&gb), "total {gb:.1} GB");
        let parts = db.total_partitions();
        assert!((400..1100).contains(&parts), "{parts} partitions");
    }

    #[test]
    fn partitions_respect_max_size_and_cover_file() {
        let db = db();
        for f in db.files() {
            let sum: u64 = f.partitions.iter().map(|p| p.bytes).sum();
            assert_eq!(sum, f.bytes.max(1), "file {}", f.id);
            for p in &f.partitions {
                assert!(p.bytes <= MAX_PARTITION_BYTES);
                assert_eq!(p.id.file, f.id);
            }
        }
    }

    #[test]
    fn four_potential_indexes_per_file_with_stable_ids() {
        let db = db();
        assert_eq!(db.potential_indexes().len(), 125 * 4);
        for (i, idx) in db.potential_indexes().iter().enumerate() {
            assert_eq!(idx.id.index(), i);
        }
        let on_f3: Vec<_> = db.indexes_of(FileId(3)).collect();
        assert_eq!(on_f3.len(), 4);
        let cols: Vec<&str> = on_f3.iter().map(|i| i.column).collect();
        assert_eq!(cols, ["comment", "shipinstruct", "commitdate", "orderkey"]);
    }

    #[test]
    fn index_record_sizes_reproduce_table5_ordering() {
        let db = db();
        let recs: Vec<f64> = db.indexes_of(FileId(0)).map(|i| i.rec_bytes()).collect();
        // comment > shipinstruct > commitdate > orderkey, as in Table 5.
        assert!(recs.windows(2).all(|w| w[0] > w[1]), "{recs:?}");
        // Percent of table size: comment ≈ 30 %, orderkey ≈ 10 %.
        let pct: Vec<f64> = recs.iter().map(|r| r / ROW_BYTES * 100.0).collect();
        assert!((25.0..35.0).contains(&pct[0]), "comment {:.1} %", pct[0]);
        assert!((8.0..13.0).contains(&pct[3]), "orderkey {:.1} %", pct[3]);
    }

    #[test]
    fn partition_lookup_round_trips() {
        let db = db();
        let app_parts = db.partitions_of(App::Montage);
        assert!(!app_parts.is_empty());
        for pid in app_parts {
            let info = db.partition(pid);
            assert_eq!(info.id, pid);
            assert!(info.rows > 0);
        }
    }

    #[test]
    fn primary_index_is_stable_and_covers_columns() {
        let db = db();
        let a = db.primary_index_of(FileId(3)).id;
        assert_eq!(db.primary_index_of(FileId(3)).id, a);
        // The primaries are spread over different columns.
        let distinct: std::collections::HashSet<&str> = (0..20)
            .map(|i| db.primary_index_of(FileId(i)).column)
            .collect();
        assert!(distinct.len() >= 2, "primaries all collapsed to one column");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = FileDatabase::generate(&mut SimRng::seed_from_u64(7));
        let b = FileDatabase::generate(&mut SimRng::seed_from_u64(7));
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_eq!(a.total_partitions(), b.total_partitions());
    }
}
