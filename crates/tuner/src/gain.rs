//! The gain model (Eq. 3–5).
//!
//! Quantities follow the paper's units: `gt` and all per-dataflow gains
//! are in **quanta**, `gm` and `g` in **dollars** (per-dataflow money
//! gains `gmd` are in quanta of VM cost and are multiplied by `Mc`, so
//! the two objectives share a unit before the α-weighting).

use flowtune_common::{pricing, Money, Quanta, SimDuration, TunerConfig};

/// One dataflow's contribution to an index's gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainContribution {
    /// Quanta elapsed since the dataflow executed (`ΔT`, 0 for the
    /// currently running/queued dataflow).
    pub quanta_ago: Quanta,
    /// Time gain `gtd(idx, d)` in quanta.
    pub gtd: f64,
    /// Money gain `gmd(idx, d)` in quanta of VM cost (includes the cost
    /// of reading the index from the storage service).
    pub gmd: f64,
}

/// Evaluated gain of one index at one time point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexGains {
    /// `gt(idx, t)` in quanta (Eq. 5).
    pub gt: f64,
    /// `gm(idx, t)` in dollars (Eq. 4).
    pub gm: f64,
    /// `g(idx, t)` in dollars (Eq. 3).
    pub g: f64,
}

impl IndexGains {
    /// Beneficial: both component gains strictly positive (§5.1).
    pub fn is_beneficial(&self) -> bool {
        self.gt > 0.0 && self.gm > 0.0
    }

    /// Deletable: both component gains non-positive (Alg. 1, lines
    /// 13–19).
    pub fn is_deletable(&self) -> bool {
        self.gt <= 0.0 && self.gm <= 0.0
    }
}

/// Evaluates Eq. 3–5.
#[derive(Debug, Clone)]
pub struct GainModel {
    /// Tuner parameters (α, D, W).
    pub tuner: TunerConfig,
    /// Billing quantum.
    pub quantum: SimDuration,
    /// Per-quantum VM price `Mc`.
    pub vm_price: Money,
    /// Per-MB-per-quantum storage price `Mst`.
    pub storage_price: Money,
}

impl GainModel {
    /// Build a model; panics on invalid tuner parameters.
    pub fn new(
        tuner: TunerConfig,
        quantum: SimDuration,
        vm_price: Money,
        storage_price: Money,
    ) -> Self {
        #[allow(clippy::expect_used)]
        // flowtune-allow(panic-hygiene): documented contract: new panics on invalid tuner parameters
        tuner.validate().expect("invalid tuner configuration");
        GainModel {
            tuner,
            quantum,
            vm_price,
            storage_price,
        }
    }

    /// The fading function `dc(t) = e^{−t/D}` (`t` in quanta).
    pub fn fading(&self, quanta_ago: Quanta) -> f64 {
        self.fading_with_d(quanta_ago, self.tuner.fading_d)
    }

    /// Fading with an explicit controller `D` — used by the adaptive
    /// per-index learner ([`crate::AdaptiveFading`]).
    pub fn fading_with_d(&self, quanta_ago: Quanta, d: f64) -> f64 {
        debug_assert!(d > 0.0, "fading D must be positive");
        (-quanta_ago.get().max(0.0) / d).exp()
    }

    /// Storage cost `st(idx, W)` of keeping `bytes` over the decision
    /// commitment horizon, in dollars.
    pub fn window_storage_cost(&self, bytes: u64) -> Money {
        pricing::storage_cost(bytes, self.tuner.storage_window_w, self.storage_price)
    }

    /// Evaluate Eq. 3–5 for one index.
    ///
    /// * `contributions` — the related dataflows inside the window plus
    ///   the currently queued one.
    /// * `remaining_build_quanta` — `ti(idx)`: time still needed to
    ///   finish building the index (0 when fully built).
    /// * `stored_bytes` — bytes the index occupies when fully built
    ///   (drives `st(idx, W)`).
    pub fn evaluate(
        &self,
        contributions: &[GainContribution],
        remaining_build_quanta: Quanta,
        stored_bytes: u64,
    ) -> IndexGains {
        self.evaluate_with_d(
            contributions,
            remaining_build_quanta,
            stored_bytes,
            self.tuner.fading_d,
        )
    }

    /// Evaluate Eq. 3–5 with an explicit per-index fading controller.
    pub fn evaluate_with_d(
        &self,
        contributions: &[GainContribution],
        remaining_build_quanta: Quanta,
        stored_bytes: u64,
        d: f64,
    ) -> IndexGains {
        let mut gt = 0.0;
        let mut gm_quanta = 0.0;
        for c in contributions {
            let f = self.fading_with_d(c.quanta_ago, d);
            gt += f * c.gtd;
            gm_quanta += f * c.gmd;
        }
        gt -= remaining_build_quanta.get();
        // mi(idx): the build consumes compute time which is money at Mc
        // per quantum (even when prepaid, this is the conservative
        // charge the paper applies).
        let gm = self.vm_price.as_dollars() * (gm_quanta - remaining_build_quanta.get())
            - self.window_storage_cost(stored_bytes).as_dollars();
        let g = self.tuner.alpha * self.vm_price.as_dollars() * gt + (1.0 - self.tuner.alpha) * gm;
        IndexGains { gt, gm, g }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GainModel {
        GainModel::new(
            TunerConfig::default(),
            SimDuration::from_secs(60),
            Money::from_dollars(0.1),
            Money::from_dollars(1e-4),
        )
    }

    #[test]
    fn fading_is_exponential_in_d() {
        let m = model(); // D = 1 quantum
        assert!((m.fading(Quanta::ZERO) - 1.0).abs() < 1e-12);
        assert!((m.fading(Quanta::new(1.0)) - (-1.0f64).exp()).abs() < 1e-12);
        assert!((m.fading(Quanta::new(3.0)) - (-3.0f64).exp()).abs() < 1e-12);
        // Negative ages clamp to "now".
        assert!((m.fading(Quanta::new(-5.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unused_index_has_negative_gain() {
        let m = model();
        let g = m.evaluate(&[], Quanta::new(2.0), 500 * 1024 * 1024);
        assert!(g.gt < 0.0);
        assert!(g.gm < 0.0);
        assert!(g.g < 0.0);
        assert!(g.is_deletable());
        assert!(!g.is_beneficial());
    }

    #[test]
    fn fresh_contributions_outweigh_costs() {
        let m = model();
        let contributions = [
            GainContribution {
                quanta_ago: Quanta::new(0.0),
                gtd: 3.0,
                gmd: 5.0,
            },
            GainContribution {
                quanta_ago: Quanta::new(0.5),
                gtd: 2.0,
                gmd: 4.0,
            },
        ];
        let g = m.evaluate(&contributions, Quanta::new(0.5), 10 * 1024 * 1024);
        assert!(g.gt > 0.0, "gt {}", g.gt);
        assert!(g.gm > 0.0, "gm {}", g.gm);
        assert!(g.is_beneficial());
    }

    #[test]
    fn old_contributions_fade_away() {
        let m = model(); // D = 1: after 10 quanta, e^-10 ≈ 4.5e-5
        let old = [GainContribution {
            quanta_ago: Quanta::new(10.0),
            gtd: 100.0,
            gmd: 100.0,
        }];
        let g = m.evaluate(&old, Quanta::new(0.1), 1024 * 1024);
        assert!(g.gt < 0.0, "faded gain must lose to build time: {}", g.gt);
    }

    #[test]
    fn storage_cost_scales_with_size() {
        let m = model();
        let c = [GainContribution {
            quanta_ago: Quanta::new(0.0),
            gtd: 1.0,
            gmd: 1.0,
        }];
        let small = m.evaluate(&c, Quanta::ZERO, 1024 * 1024);
        let big = m.evaluate(&c, Quanta::ZERO, 4 * 1024 * 1024 * 1024);
        assert!(small.gm > big.gm);
        assert_eq!(small.gt, big.gt, "storage affects money only");
    }

    #[test]
    fn alpha_shifts_the_weighting() {
        let q = SimDuration::from_secs(60);
        let mc = Money::from_dollars(0.1);
        let mst = Money::from_dollars(1e-4);
        let c = [GainContribution {
            quanta_ago: Quanta::new(0.0),
            gtd: 10.0,
            gmd: -2.0,
        }];
        let time_heavy = GainModel::new(
            TunerConfig {
                alpha: 0.9,
                ..Default::default()
            },
            q,
            mc,
            mst,
        )
        .evaluate(&c, Quanta::ZERO, 0);
        let money_heavy = GainModel::new(
            TunerConfig {
                alpha: 0.1,
                ..Default::default()
            },
            q,
            mc,
            mst,
        )
        .evaluate(&c, Quanta::ZERO, 0);
        assert!(time_heavy.g > money_heavy.g);
    }

    #[test]
    fn table2_example_index_b_becomes_beneficial() {
        // The §4 worked example: index B (500 MB) with dataflows at time
        // points 10 and 30 (D = 60, α = 0.5). After d2 at t=30 the gain
        // is positive.
        let m = GainModel::new(
            TunerConfig {
                alpha: 0.5,
                fading_d: 60.0,
                window_w: 2.0,
                storage_window_w: 2.0,
            },
            SimDuration::from_secs(60),
            Money::from_dollars(0.1),
            Money::from_dollars(1e-4),
        );
        let at_30 = m.evaluate(
            &[
                GainContribution {
                    quanta_ago: Quanta::new(20.0),
                    gtd: 1.0,
                    gmd: 3.0,
                },
                GainContribution {
                    quanta_ago: Quanta::new(0.0),
                    gtd: 2.0,
                    gmd: 5.0,
                },
            ],
            Quanta::new(0.2),
            500 * 1024 * 1024,
        );
        assert!(at_30.g > 0.0, "B at t=30: {}", at_30.g);
        // Long after the last related dataflow, it stops being useful.
        let at_300 = m.evaluate(
            &[
                GainContribution {
                    quanta_ago: Quanta::new(290.0),
                    gtd: 1.0,
                    gmd: 3.0,
                },
                GainContribution {
                    quanta_ago: Quanta::new(270.0),
                    gtd: 2.0,
                    gmd: 5.0,
                },
            ],
            Quanta::ZERO,
            500 * 1024 * 1024,
        );
        assert!(at_300.g < 0.0, "B at t=300: {}", at_300.g);
    }
}
