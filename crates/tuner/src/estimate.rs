//! Per-dataflow index gain estimation: `gtd(idx, d)` and `gmd(idx, d)`.
//!
//! The time gain of an index on a dataflow is the operator work it
//! saves: every operator reading partitions of the indexed file runs its
//! per-partition share at `1/speedup`. The money gain is the same saved
//! compute minus the cost of reading the index from the storage service
//! ("equivalent to the time to read the index, as both are measured in
//! quanta", §4).

use std::collections::BTreeMap;

use flowtune_common::{CloudConfig, IndexId};
use flowtune_dataflow::Dataflow;
use flowtune_index::IndexCatalog;

/// Estimate `(gtd, gmd)` in quanta for every index the dataflow uses.
pub fn dataflow_index_gains(
    df: &Dataflow,
    catalog: &IndexCatalog,
    cloud: &CloudConfig,
) -> BTreeMap<IndexId, (f64, f64)> {
    let quantum_secs = cloud.quantum.as_secs_f64();
    let mut gains: BTreeMap<IndexId, (f64, f64)> = BTreeMap::new();
    for u in &df.index_uses {
        // Work saved across operators reading the indexed file.
        let mut saved_secs = 0.0;
        for op in df.dag.ops() {
            if op.reads.is_empty() {
                continue;
            }
            let share =
                op.reads.iter().filter(|p| p.file == u.file).count() as f64 / op.reads.len() as f64;
            if share > 0.0 {
                saved_secs += op.runtime.as_secs_f64() * share * (1.0 - 1.0 / u.speedup);
            }
        }
        let gtd = saved_secs / quantum_secs;
        // Cost of reading the index from storage, in quanta.
        let read_secs = catalog.spec(u.index).total_bytes() as f64 / cloud.network_bandwidth;
        let gmd = gtd - read_secs / quantum_secs;
        gains.insert(u.index, (gtd, gmd));
    }
    gains
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::{DataflowId, SimRng, SimTime};
    use flowtune_dataflow::{App, DataflowFactory, FileDatabase};
    use flowtune_index::{IndexCostModel, IndexKind, IndexSpec};

    fn setup() -> (Dataflow, IndexCatalog, CloudConfig) {
        let mut rng = SimRng::seed_from_u64(21);
        let db = FileDatabase::generate(&mut rng);
        let mut catalog = IndexCatalog::new();
        for pi in db.potential_indexes() {
            let rows: Vec<u64> = db.file(pi.file).partitions.iter().map(|p| p.rows).collect();
            catalog.add(IndexSpec::single_column(
                pi.id,
                pi.file,
                pi.column,
                IndexKind::BTree,
                IndexCostModel::new(pi.rec_bytes(), flowtune_dataflow::filedb::ROW_BYTES),
                rows,
            ));
        }
        let mut factory = DataflowFactory::new(db, 100, rng);
        let df = factory.make(DataflowId(0), App::Montage, SimTime::ZERO);
        (df, catalog, CloudConfig::default())
    }

    #[test]
    fn every_used_index_gets_a_gain() {
        let (df, catalog, cloud) = setup();
        let gains = dataflow_index_gains(&df, &catalog, &cloud);
        assert_eq!(gains.len(), df.index_uses.len());
    }

    #[test]
    fn time_gain_is_positive_and_bounded_by_total_work() {
        let (df, catalog, cloud) = setup();
        let gains = dataflow_index_gains(&df, &catalog, &cloud);
        let total_work_quanta = df.dag.total_work().as_quanta(cloud.quantum);
        for (idx, (gtd, gmd)) in &gains {
            assert!(*gtd > 0.0, "{idx}: gtd {gtd}");
            assert!(*gtd < total_work_quanta, "{idx}: gtd {gtd}");
            assert!(gmd <= gtd, "{idx}: money gain includes read cost");
        }
    }

    #[test]
    fn higher_speedup_means_higher_gain() {
        let (df, catalog, cloud) = setup();
        let gains = dataflow_index_gains(&df, &catalog, &cloud);
        // Compare two uses of different speedups over files with similar
        // partition counts; the trend holds on aggregate.
        let mut by_speedup: Vec<(f64, f64)> = df
            .index_uses
            .iter()
            .map(|u| (u.speedup, gains[&u.index].0))
            .collect();
        by_speedup.sort_by(|a, b| a.0.total_cmp(&b.0));
        let lows: Vec<f64> = by_speedup
            .iter()
            .filter(|(s, _)| *s < 100.0)
            .map(|(_, g)| *g)
            .collect();
        let highs: Vec<f64> = by_speedup
            .iter()
            .filter(|(s, _)| *s > 300.0)
            .map(|(_, g)| *g)
            .collect();
        if !lows.is_empty() && !highs.is_empty() {
            let lo = lows.iter().sum::<f64>() / lows.len() as f64;
            let hi = highs.iter().sum::<f64>() / highs.len() as f64;
            assert!(hi >= lo * 0.5, "speedup trend wildly off: lo {lo}, hi {hi}");
        }
    }
}
