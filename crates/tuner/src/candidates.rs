//! Composite-index candidate generation from observed predicate sets.
//!
//! The paper's advisor proposes one single-column index per predicate
//! column; real dataflow predicates touch several columns at once, and
//! an index advisor that cannot propose `(a, b)` leaves the
//! multi-predicate speedups of Table 6 on the floor. This module turns
//! each observed predicate set into one composite candidate in **ESR
//! order** (equalities first, at most one range last — the only order
//! the leftmost-prefix rule can exploit), then prunes the pool by
//! **leftmost-prefix subsumption**: a candidate whose column list is a
//! strict prefix of another's serves a subset of the probes at the
//! same asymptotic cost, so building both wastes storage and build
//! time. The survivors feed the Eq. 3–5 gain model like any other
//! candidate, via the what-if savings estimate below.

use flowtune_common::FileId;
use flowtune_index::MAX_TUPLE_ARITY;
use flowtune_query::composite::cost_with_index;
use flowtune_query::{CompositeStats, IndexDef, Predicate, QuerySpec};
use std::collections::BTreeSet;

/// One observed multi-predicate query against one file — the raw
/// workload signal candidate generation consumes.
#[derive(Debug, Clone)]
pub struct ObservedQuery {
    /// The file the predicates ran against.
    pub file: FileId,
    /// The (already normalized) predicate set and output columns.
    pub query: QuerySpec,
}

/// A composite candidate: an ordered column list over one file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CompositeCandidate {
    /// File the index would be built over.
    pub file: FileId,
    /// Key columns in ESR order.
    pub columns: Vec<String>,
}

impl CompositeCandidate {
    /// True when `self`'s columns are a strict leftmost prefix of
    /// `other`'s over the same file — `other` subsumes `self`.
    pub fn is_prefix_of(&self, other: &CompositeCandidate) -> bool {
        self.file == other.file
            && self.columns.len() < other.columns.len()
            && other.columns.starts_with(&self.columns)
    }
}

/// The candidate column list for one query, in ESR order: equality
/// columns first (sorted by name — deterministic, and selectivity
/// enters through the gain model, not the column order), then the
/// first range/order column, capped at [`MAX_TUPLE_ARITY`]. Empty when
/// the query has no predicates a B+Tree prefix can serve.
pub fn esr_columns(query: &QuerySpec) -> Vec<String> {
    let mut eq_cols: Vec<String> = Vec::new();
    let mut range_col: Option<String> = None;
    // QuerySpec predicates are sorted by (column, predicate), so this
    // walk — and therefore the candidate — is deterministic.
    for p in query.predicates() {
        match p.pred {
            Predicate::Equals(_) => {
                if !eq_cols.contains(&p.column) {
                    eq_cols.push(p.column.clone());
                }
            }
            Predicate::Between(_, _) | Predicate::OrderBy => {
                if range_col.is_none() {
                    range_col = Some(p.column.clone());
                }
            }
        }
    }
    // An equality column also seen as a range keeps its equality slot.
    if let Some(rc) = &range_col {
        if eq_cols.contains(rc) {
            range_col = None;
        }
    }
    let keep = MAX_TUPLE_ARITY - usize::from(range_col.is_some());
    eq_cols.truncate(keep);
    eq_cols.extend(range_col);
    eq_cols
}

/// Generate the candidate pool for a batch of observed queries:
/// per-query ESR candidates, deduped, then leftmost-prefix
/// subsumption. Returns the survivors in deterministic (file, column
/// list) order.
pub fn composite_candidates(observed: &[ObservedQuery]) -> Vec<CompositeCandidate> {
    let pool: BTreeSet<CompositeCandidate> = observed
        .iter()
        .filter_map(|o| {
            let columns = esr_columns(&o.query);
            (!columns.is_empty()).then_some(CompositeCandidate {
                file: o.file,
                columns,
            })
        })
        .collect();
    let survivors: Vec<CompositeCandidate> = pool
        .iter()
        .filter(|c| !pool.iter().any(|other| c.is_prefix_of(other)))
        .cloned()
        .collect();
    // Fires only when composite generation runs — absent from the
    // default service smoke trace, hence waived instead of golden-listed.
    // flowtune-allow(obs-discipline): composite metrics fire outside the pinned smoke run
    flowtune_obs::count("tuner.composite_candidates", survivors.len() as u64);
    // flowtune-allow(obs-discipline): composite metrics fire outside the pinned smoke run
    flowtune_obs::count(
        "tuner.composite_subsumed",
        (pool.len() - survivors.len()) as u64,
    );
    survivors
}

/// What-if time saving of `candidate` for one query, as the fraction
/// of the scan cost the composite plan avoids, in `[0, 1)`. This is
/// the `gtd` ingredient the Eq. 3–5 gain model sums over the history
/// window — a candidate serving none of the query saves nothing.
pub fn candidate_saving(
    candidate: &CompositeCandidate,
    query: &QuerySpec,
    stats: &CompositeStats,
) -> f64 {
    let def = IndexDef {
        columns: candidate.columns.clone(),
        kind: flowtune_index::IndexKind::BTree,
    };
    let scan = stats.rows.max(1) as f64;
    match cost_with_index(&def, query, stats) {
        Some((_, _, cost)) if cost < scan => (scan - cost) / scan,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_query::ColPredicate;

    fn eq(col: &str, v: i64) -> ColPredicate {
        ColPredicate::new(col, Predicate::Equals(v))
    }

    fn between(col: &str, lo: i64, hi: i64) -> ColPredicate {
        ColPredicate::new(col, Predicate::Between(lo, hi))
    }

    fn observed(file: u32, preds: Vec<ColPredicate>) -> ObservedQuery {
        ObservedQuery {
            file: FileId(file),
            query: QuerySpec::new(preds, vec![]),
        }
    }

    #[test]
    fn esr_puts_equalities_before_the_range() {
        let q = QuerySpec::new(
            vec![
                between("shipdate", 0, 9),
                eq("quantity", 5),
                eq("linenumber", 2),
            ],
            vec![],
        );
        assert_eq!(esr_columns(&q), ["linenumber", "quantity", "shipdate"]);
    }

    #[test]
    fn duplicate_predicates_cannot_widen_a_candidate() {
        // The same predicate observed twice dedupes in QuerySpec; the
        // candidate is identical to the single-observation one.
        let once = QuerySpec::new(vec![eq("quantity", 5), between("shipdate", 0, 9)], vec![]);
        let twice = QuerySpec::new(
            vec![
                eq("quantity", 5),
                between("shipdate", 0, 9),
                eq("quantity", 5),
                between("shipdate", 0, 9),
            ],
            vec![],
        );
        assert_eq!(esr_columns(&once), esr_columns(&twice));
    }

    #[test]
    fn arity_caps_at_the_tuple_limit() {
        let q = QuerySpec::new(
            vec![
                eq("a", 1),
                eq("b", 2),
                eq("c", 3),
                eq("d", 4),
                between("e", 0, 1),
            ],
            vec![],
        );
        let cols = esr_columns(&q);
        assert_eq!(cols.len(), MAX_TUPLE_ARITY);
        assert_eq!(
            cols.last().map(String::as_str),
            Some("e"),
            "range stays last"
        );
    }

    #[test]
    fn subsumption_never_keeps_both_a_and_ab() {
        let obs = [
            observed(0, vec![eq("linenumber", 2), eq("quantity", 5)]),
            observed(
                0,
                vec![
                    eq("linenumber", 2),
                    eq("quantity", 5),
                    between("shipdate", 0, 9),
                ],
            ),
            observed(0, vec![eq("quantity", 5), between("shipdate", 0, 9)]),
            observed(0, vec![between("shipdate", 0, 9)]),
        ];
        let cands = composite_candidates(&obs);
        let cols: Vec<Vec<&str>> = cands
            .iter()
            .map(|c| c.columns.iter().map(String::as_str).collect())
            .collect();
        // (linenumber, quantity) is a strict prefix of
        // (linenumber, quantity, shipdate): subsumed. (quantity,
        // shipdate) and (shipdate) are not prefixes of anything.
        assert_eq!(
            cols,
            [
                vec!["linenumber", "quantity", "shipdate"],
                vec!["quantity", "shipdate"],
                vec!["shipdate"],
            ]
        );
    }

    #[test]
    fn subsumption_is_per_file() {
        let obs = [
            observed(0, vec![eq("quantity", 5)]),
            observed(1, vec![eq("quantity", 5), between("shipdate", 0, 9)]),
        ];
        let cands = composite_candidates(&obs);
        assert_eq!(cands.len(), 2, "a prefix on another file is not subsumed");
    }

    #[test]
    fn saving_is_positive_only_when_the_candidate_serves_the_query() {
        let stats = CompositeStats {
            rows: 1_000_000,
            distinct: [("quantity".to_owned(), 50), ("shipdate".to_owned(), 2500)]
                .into_iter()
                .collect(),
        };
        let cand = CompositeCandidate {
            file: FileId(0),
            columns: vec!["quantity".to_owned(), "shipdate".to_owned()],
        };
        let served = QuerySpec::new(vec![eq("quantity", 5), between("shipdate", 0, 9)], vec![]);
        let unserved = QuerySpec::new(vec![between("shipdate", 0, 9)], vec![]);
        let s = candidate_saving(&cand, &served, &stats);
        assert!(
            s > 0.9,
            "high-selectivity prefix saves most of the scan: {s}"
        );
        assert_eq!(candidate_saving(&cand, &unserved, &stats), 0.0);
    }
}
