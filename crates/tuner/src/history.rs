//! The historical dataflow list `Hd`.

use std::collections::BTreeMap;

use flowtune_common::{DataflowId, IndexId, SimDuration, SimTime};

use crate::gain::GainContribution;

/// One executed dataflow with its per-index gains.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// The dataflow.
    pub dataflow: DataflowId,
    /// When it finished executing.
    pub finished_at: SimTime,
    /// `idx -> (gtd, gmd)` in quanta, for every index the dataflow uses.
    pub index_gains: BTreeMap<IndexId, (f64, f64)>,
}

/// The list of historical dataflows.
#[derive(Debug, Clone, Default)]
pub struct History {
    entries: Vec<HistoryEntry>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a finished dataflow. Entries may arrive slightly out of
    /// time order (concurrently executing dataflows finish in any
    /// order); the list is kept sorted by finish time.
    pub fn record(&mut self, entry: HistoryEntry) {
        let pos = self
            .entries
            .partition_point(|e| e.finished_at <= entry.finished_at);
        self.entries.insert(pos, entry);
    }

    /// Number of recorded dataflows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has executed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[HistoryEntry] {
        &self.entries
    }

    /// Contributions of `idx` from dataflows inside the window
    /// `[t − W, t]` (δ of Eq. 4/5), as gain-model inputs.
    pub fn contributions(
        &self,
        idx: IndexId,
        now: SimTime,
        window: SimDuration,
        quantum: SimDuration,
    ) -> Vec<GainContribution> {
        let cutoff = if window.as_millis() >= now.as_millis() {
            SimTime::ZERO
        } else {
            now - window
        };
        self.entries
            .iter()
            .rev()
            .take_while(|e| e.finished_at >= cutoff)
            .filter(|e| e.finished_at <= now)
            .filter_map(|e| {
                e.index_gains.get(&idx).map(|&(gtd, gmd)| GainContribution {
                    quanta_ago: now.saturating_since(e.finished_at).quanta(quantum),
                    gtd,
                    gmd,
                })
            })
            .collect()
    }

    /// Drop entries older than `t − keep` (memory bound for long runs).
    pub fn prune(&mut self, now: SimTime, keep: SimDuration) {
        let cutoff = if keep.as_millis() >= now.as_millis() {
            SimTime::ZERO
        } else {
            now - keep
        };
        self.entries.retain(|e| e.finished_at >= cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: SimDuration = SimDuration::from_secs(60);

    fn entry(df: u32, finished_secs: u64, gains: &[(u32, f64, f64)]) -> HistoryEntry {
        HistoryEntry {
            dataflow: DataflowId(df),
            finished_at: SimTime::from_secs(finished_secs),
            index_gains: gains
                .iter()
                .map(|&(i, gt, gm)| (IndexId(i), (gt, gm)))
                .collect(),
        }
    }

    #[test]
    fn window_filters_old_entries() {
        let mut h = History::new();
        h.record(entry(0, 60, &[(1, 1.0, 2.0)]));
        h.record(entry(1, 300, &[(1, 3.0, 4.0)]));
        h.record(entry(2, 500, &[(2, 9.0, 9.0)]));
        // Window of 5 quanta (300 s) at t = 540 s covers [240, 540].
        let c = h.contributions(IndexId(1), SimTime::from_secs(540), Q * 5, Q);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].gtd, 3.0);
        assert!((c[0].quanta_ago.get() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn indexes_not_used_by_a_dataflow_contribute_nothing() {
        let mut h = History::new();
        h.record(entry(0, 60, &[(1, 1.0, 2.0)]));
        assert!(h
            .contributions(IndexId(9), SimTime::from_secs(100), Q * 10, Q)
            .is_empty());
    }

    #[test]
    fn window_larger_than_elapsed_time_covers_everything() {
        let mut h = History::new();
        h.record(entry(0, 10, &[(1, 1.0, 1.0)]));
        h.record(entry(1, 20, &[(1, 2.0, 2.0)]));
        let c = h.contributions(IndexId(1), SimTime::from_secs(30), Q * 1000, Q);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn out_of_order_recording_keeps_entries_sorted() {
        let mut h = History::new();
        h.record(entry(0, 100, &[(1, 1.0, 1.0)]));
        h.record(entry(1, 50, &[(1, 2.0, 2.0)]));
        h.record(entry(2, 75, &[(1, 3.0, 3.0)]));
        let times: Vec<_> = h.entries().iter().map(|e| e.finished_at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn prune_bounds_memory() {
        let mut h = History::new();
        for i in 0..100u32 {
            h.record(entry(i, (i as u64 + 1) * 10, &[(1, 1.0, 1.0)]));
        }
        h.prune(SimTime::from_secs(1000), SimDuration::from_secs(200));
        assert!(h.len() <= 21);
        assert!(h
            .entries()
            .iter()
            .all(|e| e.finished_at >= SimTime::from_secs(800)));
    }
}
