//! # flowtune-tuner
//!
//! The online auto-tuning approach of §4–5: assess the usefulness of
//! every candidate index from the *historical* dataflow workload, build
//! the ones whose gain turns positive, delete the ones whose gain turns
//! non-positive.
//!
//! The gain of an index at time `t` (Eq. 3) is
//!
//! ```text
//! g(idx, t)  = α · Mc · gt(idx, t)  +  (1 − α) · gm(idx, t)
//! gt(idx, t) = Σ_i δ(d_i, t) · dc(ΔT_i) · gtd(idx, d_i)  −  ti(idx)       (Eq. 5)
//! gm(idx, t) = Σ_i δ(d_i, t) · dc(ΔT_i) · Mc · gmd(idx, d_i)
//!              − (Mc · mi(idx) + st(idx, W))                              (Eq. 4)
//! dc(t)      = e^{−t/D}
//! ```
//!
//! where `gtd`/`gmd` are the per-dataflow time/money gains of the index
//! (estimated in [`estimate`]), `δ` restricts to dataflows inside the
//! sliding window `[t−W, t]` plus the currently queued one, `dc` fades
//! historical gains, and `ti`/`mi`/`st` are the index's remaining build
//! time, build cost and storage cost over the window.

pub mod adaptive;
pub mod candidates;
pub mod estimate;
pub mod gain;
pub mod history;
pub mod rank;
pub mod tuning;

pub use adaptive::AdaptiveFading;
pub use candidates::{
    candidate_saving, composite_candidates, esr_columns, CompositeCandidate, ObservedQuery,
};
pub use estimate::dataflow_index_gains;
pub use gain::{GainModel, IndexGains};
pub use history::{History, HistoryEntry};
pub use rank::rank_indexes;
pub use tuning::{OnlineTuner, TuningDecision};
