//! Online index tuning — Algorithm 1.
//!
//! Triggered every time a dataflow is issued or finishes (and
//! periodically when idle): compute the gain of every candidate index
//! over the historical window plus the queued dataflow, rank the
//! beneficial ones for interleaving, and mark the built indexes whose
//! gain has gone non-positive for deletion.

use std::collections::BTreeMap;

use flowtune_common::{IndexId, SimTime};
use flowtune_index::IndexCatalog;

use crate::adaptive::AdaptiveFading;
use crate::gain::{GainModel, IndexGains};
use crate::history::History;
use crate::rank::rank_indexes;

/// What the tuner decided at one trigger point.
#[derive(Debug, Clone, Default)]
pub struct TuningDecision {
    /// Beneficial indexes, best first — the candidates to interleave
    /// with the queued dataflow (Alg. 1 lines 2–9).
    pub beneficial: Vec<(IndexId, IndexGains)>,
    /// Built indexes whose gain is non-positive — to delete (lines
    /// 13–19).
    pub deletions: Vec<IndexId>,
}

/// The online tuner: gain model plus workload history.
#[derive(Debug)]
pub struct OnlineTuner {
    /// The gain model.
    pub model: GainModel,
    /// The historical dataflows `Hd`.
    pub history: History,
    /// Optional per-index fading learner (§7 future work); when absent
    /// the global `D` of the gain model applies.
    pub adaptive: Option<AdaptiveFading>,
}

impl OnlineTuner {
    /// Create a tuner with the global fading controller.
    pub fn new(model: GainModel) -> Self {
        OnlineTuner {
            model,
            history: History::new(),
            adaptive: None,
        }
    }

    /// Create a tuner that learns a fading controller per index.
    pub fn with_adaptive_fading(model: GainModel) -> Self {
        let adaptive = AdaptiveFading::new(model.tuner.fading_d, model.quantum);
        OnlineTuner {
            model,
            history: History::new(),
            adaptive: Some(adaptive),
        }
    }

    /// Record that the (just-issued) dataflow uses these indexes — feeds
    /// the adaptive fading learner; a no-op without one.
    pub fn observe_uses(&mut self, indexes: &[IndexId], now: SimTime) {
        if let Some(adaptive) = &mut self.adaptive {
            for idx in indexes {
                adaptive.record_use(*idx, now);
            }
        }
    }

    /// Gains of one index at `now`, over the history window plus the
    /// estimated gains of the queued and currently *running* dataflows
    /// (`extras`, each at `δT = 0` per Eq. 4/5).
    pub fn gains_of(
        &self,
        idx: IndexId,
        now: SimTime,
        catalog: &IndexCatalog,
        extras: &[(f64, f64)],
    ) -> IndexGains {
        let window = self.model.quantum.mul_f64(self.model.tuner.window_w);
        let mut contributions = self
            .history
            .contributions(idx, now, window, self.model.quantum);
        for &(gtd, gmd) in extras {
            contributions.push(crate::gain::GainContribution {
                quanta_ago: flowtune_common::Quanta::ZERO,
                gtd,
                gmd,
            });
        }
        let remaining_build = catalog.remaining_build_time(idx).quanta(self.model.quantum);
        let d = self
            .adaptive
            .as_ref()
            .map_or(self.model.tuner.fading_d, |a| a.d_for(idx));
        self.model.evaluate_with_d(
            &contributions,
            remaining_build,
            catalog.spec(idx).total_bytes(),
            d,
        )
    }

    /// Run one tuning step (Alg. 1): `active` carries the per-index gain
    /// estimates of the queued dataflow *and* every currently running
    /// dataflow — all contribute at `δT = 0` (empty when triggered
    /// periodically with nothing queued or running).
    pub fn decide(
        &self,
        now: SimTime,
        catalog: &IndexCatalog,
        active: &[&BTreeMap<IndexId, (f64, f64)>],
    ) -> TuningDecision {
        let mut all: Vec<(IndexId, IndexGains)> = Vec::with_capacity(catalog.len());
        let mut extras: Vec<(f64, f64)> = Vec::new();
        for idx in catalog.ids() {
            extras.clear();
            extras.extend(active.iter().filter_map(|m| m.get(&idx).copied()));
            let gains = self.gains_of(idx, now, catalog, &extras);
            // Eq. 5 (time gain), Eq. 4 (money gain), Eq. 3 (combined).
            flowtune_obs::obs_event!(
                "tuner.gain",
                index = idx.0,
                gt = gains.gt,
                gm = gains.gm,
                g = gains.g,
            );
            flowtune_obs::count("tuner.gain_evals", 1);
            flowtune_obs::observe("tuner.gain", gains.g);
            all.push((idx, gains));
        }
        let beneficial = rank_indexes(&all);
        let deletions: Vec<IndexId> = all
            .iter()
            .filter(|(idx, g)| g.is_deletable() && !catalog.state(*idx).empty())
            .map(|(idx, _)| *idx)
            .collect();
        flowtune_obs::obs_event!(
            "tuner.decide",
            evaluated = all.len(),
            beneficial = beneficial.len(),
            deletions = deletions.len(),
        );
        flowtune_obs::count("tuner.decisions", 1);
        TuningDecision {
            beneficial,
            deletions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryEntry;
    use flowtune_common::{DataflowId, FileId, Money, SimDuration, TunerConfig};
    use flowtune_index::{IndexCostModel, IndexKind, IndexSpec};

    fn small_catalog(n: usize) -> IndexCatalog {
        let mut cat = IndexCatalog::new();
        for i in 0..n {
            cat.add(IndexSpec::single_column(
                IndexId(0),
                FileId(i as u32),
                "orderkey",
                IndexKind::BTree,
                IndexCostModel::new(12.0, 117.0),
                vec![200_000; 2],
            ));
        }
        cat
    }

    fn tuner() -> OnlineTuner {
        OnlineTuner::new(GainModel::new(
            TunerConfig {
                alpha: 0.5,
                fading_d: 1.0,
                window_w: 10.0,
                storage_window_w: 10.0,
            },
            SimDuration::from_secs(60),
            Money::from_dollars(0.1),
            Money::from_dollars(1e-4),
        ))
    }

    #[test]
    fn cold_start_builds_nothing_and_deletes_nothing() {
        let t = tuner();
        let cat = small_catalog(4);
        let d = t.decide(SimTime::ZERO, &cat, &[]);
        assert!(d.beneficial.is_empty());
        assert!(
            d.deletions.is_empty(),
            "unbuilt indexes are never 'deleted'"
        );
    }

    #[test]
    fn queued_dataflow_makes_its_index_beneficial() {
        let t = tuner();
        let cat = small_catalog(4);
        let current = BTreeMap::from([(IndexId(2), (5.0, 4.0))]);
        let d = t.decide(SimTime::ZERO, &cat, &[&current]);
        assert_eq!(d.beneficial.len(), 1);
        assert_eq!(d.beneficial[0].0, IndexId(2));
    }

    #[test]
    fn history_keeps_indexes_beneficial_until_they_fade() {
        let mut t = tuner();
        let mut cat = small_catalog(2);
        cat.mark_built(IndexId(0), 0, SimTime::ZERO, 0);
        cat.mark_built(IndexId(0), 1, SimTime::ZERO, 0);
        t.history.record(HistoryEntry {
            dataflow: DataflowId(0),
            finished_at: SimTime::from_secs(60),
            index_gains: BTreeMap::from([(IndexId(0), (6.0, 6.0))]),
        });
        // Shortly after: still beneficial (built => no build cost).
        let d = t.decide(SimTime::from_secs(120), &cat, &[]);
        assert!(d.beneficial.iter().any(|(i, _)| *i == IndexId(0)));
        assert!(d.deletions.is_empty());
        // At 8 quanta the money gain has faded below the storage cost
        // (e^-8 * 6 ≈ 0.002), so the index is no longer beneficial — but
        // gt is still marginally positive, so it is not yet deleted.
        let d = t.decide(SimTime::from_secs(60 * 9), &cat, &[]);
        assert!(!d.beneficial.iter().any(|(i, _)| *i == IndexId(0)));
        assert!(!d.deletions.contains(&IndexId(0)));
        // Once the contribution leaves the W = 10 quanta window entirely,
        // both gains are non-positive and the built index is deleted.
        let d = t.decide(SimTime::from_secs(60 * 12), &cat, &[]);
        assert!(
            d.deletions.contains(&IndexId(0)),
            "faded built index is deleted"
        );
    }

    #[test]
    fn adaptive_fading_keeps_slow_reused_indexes_alive() {
        // An index reused every 5 quanta: with the global D = 1 its gain
        // at a 5-quanta gap is dead (e^-5); the adaptive learner sets
        // D ~ 7.5 and keeps it warm.
        let mut global = tuner();
        let mut adaptive = OnlineTuner::with_adaptive_fading(global.model.clone());
        let mut cat = small_catalog(1);
        cat.mark_built(IndexId(0), 0, SimTime::ZERO, 0);
        cat.mark_built(IndexId(0), 1, SimTime::ZERO, 0);
        for k in 0..6u64 {
            let at = SimTime::from_secs(60 * 5 * k);
            let entry = HistoryEntry {
                dataflow: DataflowId(k as u32),
                finished_at: at,
                index_gains: BTreeMap::from([(IndexId(0), (6.0, 6.0))]),
            };
            global.history.record(entry.clone());
            adaptive.history.record(entry);
            adaptive.observe_uses(&[IndexId(0)], at);
        }
        let now = SimTime::from_secs(60 * 5 * 5 + 60 * 4); // 4q after last use
        let g_global = global.gains_of(IndexId(0), now, &cat, &[]);
        let g_adaptive = adaptive.gains_of(IndexId(0), now, &cat, &[]);
        assert!(
            g_adaptive.g > g_global.g,
            "adaptive {} must beat global {}",
            g_adaptive.g,
            g_global.g
        );
        assert!(g_adaptive.is_beneficial());
    }

    #[test]
    fn ranking_prefers_higher_gain_indexes() {
        let t = tuner();
        let cat = small_catalog(3);
        let current = BTreeMap::from([
            (IndexId(0), (2.0, 2.0)),
            (IndexId(1), (9.0, 9.0)),
            (IndexId(2), (4.0, 4.0)),
        ]);
        let d = t.decide(SimTime::ZERO, &cat, &[&current]);
        let ids: Vec<IndexId> = d.beneficial.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![IndexId(1), IndexId(2), IndexId(0)]);
    }
}
