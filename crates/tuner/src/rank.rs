//! Index ranking in the 2-D gain space (§5.1, Fig. 4).
//!
//! Indexes are points in the `(gt, gm)` plane. Only those with both
//! gains positive are beneficial; among them, higher weighted gain `g`
//! (whose iso-lines have slope set by α) ranks first.

use flowtune_common::IndexId;

use crate::gain::IndexGains;

/// Rank indexes: keep the beneficial ones, sort by descending `g`.
pub fn rank_indexes(gains: &[(IndexId, IndexGains)]) -> Vec<(IndexId, IndexGains)> {
    let mut beneficial: Vec<(IndexId, IndexGains)> = gains
        .iter()
        .filter(|(_, g)| g.is_beneficial())
        .copied()
        .collect();
    beneficial.sort_by(|a, b| b.1.g.total_cmp(&a.1.g).then(a.0.cmp(&b.0)));
    beneficial
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(gt: f64, gm: f64, weighted: f64) -> IndexGains {
        IndexGains {
            gt,
            gm,
            g: weighted,
        }
    }

    #[test]
    fn filters_non_beneficial_quadrants() {
        // Fig. 4: X1..X4 live outside the positive quadrant.
        let pts = vec![
            (IndexId(0), g(1.0, 1.0, 2.0)),    // beneficial
            (IndexId(1), g(-1.0, 1.0, 0.5)),   // X: negative time gain
            (IndexId(2), g(1.0, -1.0, 0.5)),   // X: negative money gain
            (IndexId(3), g(-1.0, -1.0, -2.0)), // X: both negative
            (IndexId(4), g(0.0, 1.0, 0.5)),    // boundary: not beneficial
        ];
        let ranked = rank_indexes(&pts);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].0, IndexId(0));
    }

    #[test]
    fn sorts_by_weighted_gain_descending() {
        let pts = vec![
            (IndexId(0), g(1.0, 1.0, 1.0)),
            (IndexId(1), g(2.0, 2.0, 5.0)),
            (IndexId(2), g(3.0, 0.5, 3.0)),
        ];
        let ranked = rank_indexes(&pts);
        let ids: Vec<IndexId> = ranked.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![IndexId(1), IndexId(2), IndexId(0)]);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let pts = vec![
            (IndexId(7), g(1.0, 1.0, 2.0)),
            (IndexId(3), g(1.0, 1.0, 2.0)),
        ];
        let ranked = rank_indexes(&pts);
        assert_eq!(ranked[0].0, IndexId(3));
    }

    #[test]
    fn empty_input() {
        assert!(rank_indexes(&[]).is_empty());
    }
}
