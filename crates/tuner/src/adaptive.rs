//! Per-index adaptive fading — the paper's stated future work:
//! "automatic learning of the index gain fading controller to select
//! proper respective values for each index" (§7).
//!
//! The controller `D` decides how fast historical gains fade
//! (`dc(t) = e^{-t/D}`). A single global `D` is wrong for mixed
//! workloads: an index reused every 2 quanta should keep its gain hot
//! across a 2-quanta gap, while one reused every 50 quanta should not
//! hold storage for 50 quanta on the off-chance of reuse.
//!
//! [`AdaptiveFading`] learns `D` per index from the observed *reuse
//! intervals*: an exponentially weighted moving average of the gaps
//! between consecutive uses, scaled by a safety factor and clamped. An
//! index reused regularly gets `D ≈ factor × typical gap`, so its gain
//! survives exactly the gaps it actually exhibits.

use std::collections::BTreeMap;

use flowtune_common::{IndexId, SimDuration, SimTime};

/// Learns one fading controller `D` per index from reuse intervals.
#[derive(Debug, Clone)]
pub struct AdaptiveFading {
    /// Fallback `D` (quanta) for indexes never seen or seen once.
    pub default_d: f64,
    /// Smoothing factor of the interval EWMA, in `(0, 1]`.
    pub ewma_alpha: f64,
    /// `D = safety_factor × EWMA(gap)`.
    pub safety_factor: f64,
    /// Clamp range for learned values (quanta).
    pub clamp: (f64, f64),
    quantum: SimDuration,
    state: BTreeMap<IndexId, UseState>,
}

#[derive(Debug, Clone, Copy)]
struct UseState {
    last_use: SimTime,
    ewma_gap_quanta: Option<f64>,
}

impl AdaptiveFading {
    /// Create a learner with the given global default `D` (quanta).
    pub fn new(default_d: f64, quantum: SimDuration) -> Self {
        AdaptiveFading {
            default_d,
            ewma_alpha: 0.3,
            safety_factor: 1.5,
            clamp: (0.25, 32.0),
            quantum,
            state: BTreeMap::new(),
        }
    }

    /// Record that a dataflow used `idx` at time `now`.
    pub fn record_use(&mut self, idx: IndexId, now: SimTime) {
        match self.state.get_mut(&idx) {
            None => {
                self.state.insert(
                    idx,
                    UseState {
                        last_use: now,
                        ewma_gap_quanta: None,
                    },
                );
            }
            Some(st) => {
                let gap = now.saturating_since(st.last_use).as_quanta(self.quantum);
                st.ewma_gap_quanta = Some(match st.ewma_gap_quanta {
                    None => gap,
                    Some(prev) => prev + self.ewma_alpha * (gap - prev),
                });
                st.last_use = now;
            }
        }
    }

    /// The learned controller for `idx` (the default until at least two
    /// uses have been observed).
    pub fn d_for(&self, idx: IndexId) -> f64 {
        match self.state.get(&idx).and_then(|s| s.ewma_gap_quanta) {
            None => self.default_d,
            Some(gap) => (self.safety_factor * gap).clamp(self.clamp.0, self.clamp.1),
        }
    }

    /// Number of indexes with learned state.
    pub fn tracked(&self) -> usize {
        self.state.len()
    }

    /// Drop state for an index (e.g. when it is deleted and its file
    /// retired).
    pub fn forget(&mut self, idx: IndexId) {
        self.state.remove(&idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: SimDuration = SimDuration::from_secs(60);

    fn t(quanta: u64) -> SimTime {
        SimTime::from_millis(quanta * Q.as_millis())
    }

    #[test]
    fn unseen_indexes_use_the_default() {
        let a = AdaptiveFading::new(1.0, Q);
        assert_eq!(a.d_for(IndexId(9)), 1.0);
        assert_eq!(a.tracked(), 0);
    }

    #[test]
    fn single_use_is_not_enough_to_learn() {
        let mut a = AdaptiveFading::new(1.0, Q);
        a.record_use(IndexId(0), t(5));
        assert_eq!(a.d_for(IndexId(0)), 1.0);
        assert_eq!(a.tracked(), 1);
    }

    #[test]
    fn regular_reuse_learns_the_gap() {
        let mut a = AdaptiveFading::new(1.0, Q);
        for k in 0..10 {
            a.record_use(IndexId(0), t(4 * k));
        }
        // Gap is exactly 4 quanta; D = 1.5 x 4 = 6.
        assert!((a.d_for(IndexId(0)) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn hot_index_gets_small_d_cold_index_gets_large_d() {
        let mut a = AdaptiveFading::new(1.0, Q);
        for k in 0..20 {
            a.record_use(IndexId(0), t(k)); // every quantum
        }
        for k in 0..4 {
            a.record_use(IndexId(1), t(20 * k)); // every 20 quanta
        }
        assert!(a.d_for(IndexId(0)) < a.d_for(IndexId(1)));
        assert!((a.d_for(IndexId(0)) - 1.5).abs() < 1e-9);
        assert!((a.d_for(IndexId(1)) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn clamping_bounds_pathological_gaps() {
        let mut a = AdaptiveFading::new(1.0, Q);
        a.record_use(IndexId(0), t(0));
        a.record_use(IndexId(0), t(1000));
        assert_eq!(a.d_for(IndexId(0)), 32.0);
        // Same-instant double use clamps below.
        let mut b = AdaptiveFading::new(1.0, Q);
        b.record_use(IndexId(1), t(3));
        b.record_use(IndexId(1), t(3));
        assert_eq!(b.d_for(IndexId(1)), 0.25);
    }

    #[test]
    fn ewma_tracks_workload_shifts() {
        let mut a = AdaptiveFading::new(1.0, Q);
        // Long gaps first, then the index becomes hot.
        for k in 0..5 {
            a.record_use(IndexId(0), t(10 * k));
        }
        let cold = a.d_for(IndexId(0));
        for k in 0..20 {
            a.record_use(IndexId(0), t(50 + k));
        }
        let hot = a.d_for(IndexId(0));
        assert!(
            hot < cold,
            "D must shrink when reuse accelerates: {cold} -> {hot}"
        );
    }

    #[test]
    fn forget_removes_state() {
        let mut a = AdaptiveFading::new(1.0, Q);
        a.record_use(IndexId(0), t(0));
        a.record_use(IndexId(0), t(2));
        a.forget(IndexId(0));
        assert_eq!(a.d_for(IndexId(0)), 1.0);
    }
}
