//! Regression bars over the committed perf baselines.
//!
//! `BENCH_sched.json` and `BENCH_interleave.json` at the repository
//! root are full-mode runs of `bench_sched` / `bench_interleave`
//! (regen commands in `EXPERIMENTS.md`). These tests parse the
//! committed files and enforce the DESIGN §5f/§5i speedup bars, so a
//! committed baseline that regresses below a bar — or a schema drift
//! in either file — fails plain `cargo test`. The bars are set well
//! below measured medians (e.g. 2x vs a measured ~19–33x headline) so
//! container timer noise between regen runs cannot trip them.
//!
//! The smoke-mode runs in `ci/check.sh` exercise the harness itself;
//! only the committed full-mode files carry bars.

// Test helpers assert freely (clippy's in-test detection misses
// non-#[test] helper fns in integration tests).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use flowtune_analyze::json::{parse, Json};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/bench has a grandparent")
        .to_path_buf()
}

fn load(name: &str) -> Json {
    let path = workspace_root().join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    parse(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"))
}

fn as_num(v: &Json) -> Option<f64> {
    match v {
        Json::Int(n) => Some(*n as f64),
        Json::Float(f) => Some(*f),
        _ => None,
    }
}

/// The `speedup` field of the comparison row with this name.
fn speedup(doc: &Json, name: &str) -> f64 {
    let comps = doc
        .get("comparisons")
        .and_then(Json::as_arr)
        .expect("comparisons array");
    let row = comps
        .iter()
        .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
        .unwrap_or_else(|| panic!("no comparison row named `{name}`"));
    as_num(row.get("speedup").expect("speedup field")).expect("numeric speedup")
}

fn assert_full_mode(doc: &Json, file: &str, schema: &str) {
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(schema),
        "{file}: schema field drifted"
    );
    assert_eq!(
        doc.get("mode").and_then(Json::as_str),
        Some("full"),
        "{file}: committed baseline must be a full-mode run, not smoke"
    );
    assert!(
        !doc.get("benchmarks")
            .and_then(Json::as_arr)
            .expect("benchmarks array")
            .is_empty(),
        "{file}: empty benchmarks array"
    );
}

#[test]
fn sched_baseline_meets_speedup_bars() {
    let doc = load("BENCH_sched.json");
    assert_full_mode(&doc, "BENCH_sched.json", "flowtune.bench_sched.v1");
    // DESIGN §5f acceptance bar: >= 2x on every 100-op headline row.
    for app in ["Montage", "Ligo", "Cybershake"] {
        let s = speedup(&doc, &format!("schedule/{app}"));
        assert!(s >= 2.0, "schedule/{app} speedup {s:.2}x below the 2x bar");
    }
    // DESIGN §5i scale row: the incremental search must beat the
    // reference by an order of magnitude at 1k ops (measured ~450x).
    let s = speedup(&doc, "scale/montage/1000");
    assert!(
        s >= 10.0,
        "scale/montage/1000 speedup {s:.2}x below the 10x bar"
    );
}

#[test]
fn sched_baseline_carries_the_scale_grid() {
    let doc = load("BENCH_sched.json");
    let benches = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .expect("benchmarks array");
    let names: Vec<&str> = benches
        .iter()
        .filter_map(|b| b.get("name").and_then(Json::as_str))
        .collect();
    // The optimized-only 5k/10k rows (no reference at that scale) must
    // stay in the committed baseline alongside the 1k comparison row.
    for want in [
        "sched/scale/montage/1000",
        "reference/scale/montage/1000",
        "sched/scale/montage/5000",
        "sched/scale/montage/10000",
    ] {
        assert!(names.contains(&want), "missing scale row `{want}`");
    }
}

#[test]
fn interleave_baseline_meets_speedup_bars() {
    let doc = load("BENCH_interleave.json");
    assert_full_mode(
        &doc,
        "BENCH_interleave.json",
        "flowtune.bench_interleave.v1",
    );
    // DESIGN §5i bar: the state table must collapse the equal-density
    // adversary by at least 5x (measured ~18–27x; the reference tree is
    // ~64x larger at n=18). The random/correlated/pack rows share the
    // reference's code path below the engagement threshold, so they are
    // honesty rows, not bars — timer noise on a 1-CPU container swings
    // them either side of 1.0x.
    let s = speedup(&doc, "solve/equal_density/n18");
    assert!(
        s >= 5.0,
        "solve/equal_density/n18 speedup {s:.2}x below the 5x bar"
    );
    // The never-engaging rows must still be present (they pin that the
    // optimized solver does not regress tiny searches catastrophically:
    // an honest 0.5x here would mean the lazy-engagement guard broke).
    for row in ["solve/random/n18", "solve/correlated/n18"] {
        let s = speedup(&doc, row);
        assert!(
            s >= 0.5,
            "{row} speedup {s:.2}x: small-search overhead regression"
        );
    }
}
