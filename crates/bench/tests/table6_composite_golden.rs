//! Pins the deterministic smoke report of `exp_table6_composite` to
//! `tests/golden/table6_composite_smoke.txt` and asserts the ISSUE's
//! acceptance properties on the structured report: a composite or
//! covering plan beats the best single-column plan on at least one
//! multi-predicate class, and leftmost-prefix subsumption never keeps
//! both `(a)` and `(a, b)`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use flowtune_bench::table6_composite::{build_report, CompositeReport, SMOKE_ROWS};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate sits two levels below the workspace root")
        .to_path_buf()
}

/// The report is deterministic but not free to build (five B+Trees);
/// share one across the assertions.
fn report() -> &'static CompositeReport {
    static REPORT: OnceLock<CompositeReport> = OnceLock::new();
    REPORT.get_or_init(|| build_report(SMOKE_ROWS))
}

#[test]
fn smoke_report_matches_golden() {
    let golden_path = workspace_root().join("tests/golden/table6_composite_smoke.txt");
    let golden = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(
        report().text,
        golden,
        "regenerate with: cargo run --release -p flowtune-bench --bin \
         exp_table6_composite -- --smoke > tests/golden/table6_composite_smoke.txt"
    );
}

#[test]
fn composite_beats_best_single_on_multi_predicate_classes() {
    let r = report();
    assert!(
        r.classes
            .iter()
            .any(|c| c.multi_predicate && c.pool_touched < c.single_touched),
        "no multi-predicate class improved over its best single-column plan"
    );
    // The covering class is index-only and also wins.
    assert!(r
        .classes
        .iter()
        .any(|c| c.covering && c.pool_touched < c.single_touched));
    // The bare-range class is the leftmost-prefix negative: the pool
    // cannot beat the single-column shipdate plan.
    let bare = r.classes.iter().find(|c| c.name == "bare range").unwrap();
    assert_eq!(bare.pool_touched, bare.single_touched);
}

#[test]
fn every_plan_returns_the_scan_row_set() {
    assert!(report().classes.iter().all(|c| c.rows_match));
}

#[test]
fn subsumption_never_keeps_both_a_and_ab() {
    let r = report();
    assert!(r.subsumed() > 0, "the workload must exercise subsumption");
    for a in &r.survivors {
        for b in &r.survivors {
            assert!(
                !a.is_prefix_of(b),
                "{:?} and {:?} both survived subsumption",
                a.columns,
                b.columns
            );
        }
    }
}
