//! Shared report builder for `exp_table6_composite` and its golden
//! test: a Table-6-style speedup matrix over single-column, composite
//! and covering plans on multi-predicate `lineitem` queries.
//!
//! The smoke report is fully deterministic — modelled costs and
//! touched-row counts ([`flowtune_query::ExecCounts`]), never wall
//! times — so CI diffs it byte-for-byte against
//! `tests/golden/table6_composite_smoke.txt` and the golden test in
//! `crates/bench/tests/table6_composite_golden.rs` re-derives it in
//! process. Wall-clock numbers exist only in the binary's full
//! (non-smoke) mode, outside the golden.

use flowtune_common::{FileId, Money, Quanta, SimDuration, TunerConfig};
use flowtune_core::tablefmt::render_table;
use flowtune_index::{BPlusTree, IndexKind, TupleKey};
use flowtune_query::{
    build_composite, choose_composite, composite_select, scan_multi, ColPredicate, CompositePlan,
    CompositeStats, ExecResult, IndexDef, MultiTable, Predicate, QuerySpec,
};
use flowtune_storage::{ColumnData, LineitemGenerator, LineitemParams};
use flowtune_tuner::gain::GainContribution;
use flowtune_tuner::{
    candidate_saving, composite_candidates, esr_columns, CompositeCandidate, GainModel,
    ObservedQuery,
};
use std::collections::BTreeSet;

/// Row count of the pinned smoke run (the golden's table size).
pub const SMOKE_ROWS: usize = 60_000;

/// B+Tree node order used for every index the experiment builds.
const TREE_ORDER: usize = 64;

/// Gain attributed to avoiding one full scan of the file, in the gain
/// model's quanta unit — scales the per-class fractional savings. A
/// plain scale factor, not a measured duration, hence no newtype.
const SCAN_GAIN_SCALE: f64 = 2.0;

/// One observed query class and its deterministic outcome.
#[derive(Debug, Clone)]
pub struct ClassOutcome {
    /// Human-readable class name.
    pub name: &'static str,
    /// More than one predicate column (the classes composites target).
    pub multi_predicate: bool,
    /// Rows touched by the full-scan baseline.
    pub scan_touched: u64,
    /// Columns of the best single-column plan (`"scan"` when none wins).
    pub single_cols: String,
    /// Rows touched by the best single-column plan.
    pub single_touched: u64,
    /// Columns of the best plan over the tuner's surviving candidates.
    pub pool_cols: String,
    /// Rows touched by that plan.
    pub pool_touched: u64,
    /// Whether the pool plan is index-only.
    pub covering: bool,
    /// All three executions returned the same row set.
    pub rows_match: bool,
}

impl ClassOutcome {
    /// Touched-row speedup of the pool plan over the best single plan.
    pub fn speedup_vs_single(&self) -> f64 {
        self.single_touched as f64 / self.pool_touched.max(1) as f64
    }
}

/// The full deterministic report plus the data the golden test asserts
/// on.
#[derive(Debug, Clone)]
pub struct CompositeReport {
    /// Rendered smoke report (what the binary prints under `--smoke`).
    pub text: String,
    /// Candidate pool before leftmost-prefix subsumption.
    pub pool: Vec<CompositeCandidate>,
    /// Survivors after subsumption — the indexes actually built.
    pub survivors: Vec<CompositeCandidate>,
    /// Per-class outcomes.
    pub classes: Vec<ClassOutcome>,
}

impl CompositeReport {
    /// Candidates dropped by subsumption.
    pub fn subsumed(&self) -> usize {
        self.pool.len() - self.survivors.len()
    }
}

fn to_i64(col: &ColumnData) -> Vec<i64> {
    match col {
        ColumnData::I32(v) => v.iter().map(|&x| i64::from(x)).collect(),
        ColumnData::I64(v) => v.clone(),
        // Lineitem quantities are integral floats (uniform 1..51).
        ColumnData::F64(v) => v.iter().map(|&x| x as i64).collect(),
        ColumnData::Date(v) => v.iter().map(|&x| i64::from(x)).collect(),
        ColumnData::Str(_) => panic!("string columns cannot key a composite index"),
    }
}

/// The three predicate columns every class draws from, in the order
/// the table is materialized.
const COLS: [&str; 3] = ["linenumber", "quantity", "shipdate"];

/// Materialize the synthetic `lineitem` predicate columns as an `i64`
/// column store.
pub fn lineitem_table(rows: usize) -> MultiTable {
    let gen = LineitemGenerator::new(LineitemParams {
        rows,
        ..Default::default()
    });
    let data = gen.generate_columns(&COLS);
    MultiTable::new(
        COLS.iter()
            .zip(data.columns())
            .map(|(name, c)| ((*name).to_owned(), to_i64(c)))
            .collect(),
    )
}

/// The observed multi-predicate query classes. The bare-range class is
/// the deliberate leftmost-prefix *negative*: no composite whose first
/// column is an equality can serve it.
pub fn query_classes() -> Vec<(&'static str, QuerySpec)> {
    let eq = |c: &str, v: i64| ColPredicate::new(c, Predicate::Equals(v));
    let bt = |c: &str, lo: i64, hi: i64| ColPredicate::new(c, Predicate::Between(lo, hi));
    let out = |cols: &[&str]| cols.iter().map(|c| (*c).to_owned()).collect::<Vec<_>>();
    vec![
        (
            "lookup eq+eq",
            QuerySpec::new(
                vec![eq("quantity", 25), eq("linenumber", 3)],
                out(&["orderkey"]),
            ),
        ),
        (
            "eq + range",
            QuerySpec::new(
                vec![eq("quantity", 25), bt("shipdate", 8400, 8500)],
                out(&["orderkey"]),
            ),
        ),
        (
            "eq+eq + range",
            QuerySpec::new(
                vec![
                    eq("quantity", 25),
                    eq("linenumber", 3),
                    bt("shipdate", 8400, 8700),
                ],
                out(&["orderkey"]),
            ),
        ),
        (
            "bare range",
            QuerySpec::new(vec![bt("shipdate", 8400, 8500)], out(&["orderkey"])),
        ),
        (
            "covering eq + range",
            QuerySpec::new(
                vec![eq("quantity", 25), bt("shipdate", 8400, 8500)],
                out(&["quantity", "shipdate"]),
            ),
        ),
    ]
}

fn cols_label(cols: &[String]) -> String {
    format!("({})", cols.join(", "))
}

fn execute(
    plan: &CompositePlan,
    defs: &[IndexDef],
    trees: &[BPlusTree<TupleKey>],
    query: &QuerySpec,
    table: &MultiTable,
    scan: &ExecResult,
) -> (String, ExecResult) {
    match plan.index {
        Some(i) => {
            // The planner only picks indexes that serve the query.
            #[allow(clippy::expect_used)]
            let r = composite_select(&trees[i], &defs[i], query, table)
                .expect("planner-chosen index serves the query");
            (cols_label(&defs[i].columns), r)
        }
        None => ("scan".to_owned(), scan.clone()),
    }
}

fn sorted_rows(r: &ExecResult) -> Vec<u32> {
    let mut rows = r.rows.clone();
    rows.sort_unstable();
    rows
}

/// Build the deterministic report at `rows` table rows.
#[allow(clippy::too_many_lines)]
pub fn build_report(rows: usize) -> CompositeReport {
    let table = lineitem_table(rows);
    let classes = query_classes();

    let stats = CompositeStats {
        rows: rows as u64,
        distinct: COLS
            .iter()
            .map(|c| {
                // COLS are exactly the materialized columns.
                #[allow(clippy::expect_used)]
                let vals = table.column(c).expect("predicate column materialized");
                let d = vals.iter().collect::<BTreeSet<_>>().len() as u64;
                ((*c).to_owned(), d)
            })
            .collect(),
    };

    // --- candidate generation + subsumption ---
    let observed: Vec<ObservedQuery> = classes
        .iter()
        .map(|(_, q)| ObservedQuery {
            file: FileId(0),
            query: q.clone(),
        })
        .collect();
    let pool: Vec<CompositeCandidate> = observed
        .iter()
        .filter_map(|o| {
            let columns = esr_columns(&o.query);
            (!columns.is_empty()).then_some(CompositeCandidate {
                file: o.file,
                columns,
            })
        })
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let survivors = composite_candidates(&observed);

    // --- index sets: per-column singles vs the surviving candidates ---
    let single_defs: Vec<IndexDef> = COLS.iter().map(|c| IndexDef::btree(&[c])).collect();
    let pool_defs: Vec<IndexDef> = survivors
        .iter()
        .map(|c| IndexDef {
            columns: c.columns.clone(),
            kind: IndexKind::BTree,
        })
        .collect();
    let single_trees: Vec<_> = single_defs
        .iter()
        .map(|d| build_composite(&table, &d.columns, TREE_ORDER))
        .collect();
    let pool_trees: Vec<_> = pool_defs
        .iter()
        .map(|d| build_composite(&table, &d.columns, TREE_ORDER))
        .collect();

    let mut text = String::new();
    text.push_str("=== Table 6 (composite) ===\n");
    text.push_str("reproduces: multi-predicate speedups, single vs composite vs covering\n\n");
    text.push_str(&format!("table rows: {rows}\n"));
    let d = |c: &str| stats.distinct.get(c).copied().unwrap_or(0);
    text.push_str(&format!(
        "distinct values: linenumber={} quantity={} shipdate={}\n\n",
        d("linenumber"),
        d("quantity"),
        d("shipdate")
    ));

    text.push_str("-- observed query classes --\n");
    let mut tbl = vec![vec![
        "class".to_owned(),
        "predicates".to_owned(),
        "output".to_owned(),
    ]];
    for (name, q) in &classes {
        let preds = q
            .predicates()
            .iter()
            .map(|p| match p.pred {
                Predicate::Equals(v) => format!("{}={v}", p.column),
                Predicate::Between(lo, hi) => format!("{} in [{lo}, {hi}]", p.column),
                Predicate::OrderBy => format!("order by {}", p.column),
            })
            .collect::<Vec<_>>()
            .join(" and ");
        tbl.push(vec![(*name).to_owned(), preds, q.output().join(", ")]);
    }
    text.push_str(&render_table(&tbl));

    text.push_str("\n-- composite candidates (ESR order, leftmost-prefix subsumption) --\n");
    for cand in &pool {
        let fate = survivors.iter().find(|s| cand.is_prefix_of(s)).map_or_else(
            || "kept".to_owned(),
            |winner| format!("subsumed by {}", cols_label(&winner.columns)),
        );
        text.push_str(&format!("{:<36} {fate}\n", cols_label(&cand.columns)));
    }

    // --- Eq. 3–5 gain model over the surviving candidates ---
    text.push_str("\n-- gain model (Eq. 3-5, all classes just observed) --\n");
    let model = GainModel::new(
        TunerConfig::default(),
        SimDuration::from_secs(60),
        Money::from_dollars(0.1),
        Money::from_dollars(1e-4),
    );
    let mut tbl = vec![vec![
        "candidate".to_owned(),
        "classes served".to_owned(),
        "gt (quanta)".to_owned(),
        "g ($)".to_owned(),
        "beneficial".to_owned(),
    ]];
    for cand in &survivors {
        let contributions: Vec<GainContribution> = classes
            .iter()
            .filter_map(|(_, q)| {
                let s = candidate_saving(cand, q, &stats);
                (s > 0.0).then_some(GainContribution {
                    quanta_ago: Quanta::ZERO,
                    gtd: s * SCAN_GAIN_SCALE,
                    gmd: s * SCAN_GAIN_SCALE,
                })
            })
            .collect();
        let bytes = rows as u64 * 16 * cand.columns.len() as u64;
        let gains = model.evaluate(&contributions, Quanta::new(0.25), bytes);
        tbl.push(vec![
            cols_label(&cand.columns),
            contributions.len().to_string(),
            format!("{:.3}", gains.gt),
            format!("{:.4}", gains.g),
            gains.is_beneficial().to_string(),
        ]);
    }
    text.push_str(&render_table(&tbl));

    // --- plan matrix: modelled costs ---
    text.push_str("\n-- planner choices (modelled work units) --\n");
    let mut tbl = vec![vec![
        "class".to_owned(),
        "scan".to_owned(),
        "best single".to_owned(),
        "cost".to_owned(),
        "best composite".to_owned(),
        "cost".to_owned(),
        "covering".to_owned(),
    ]];
    let mut outcomes = Vec::new();
    for (name, q) in &classes {
        let scan = scan_multi(&table, q);
        let plan_single = choose_composite(q, &stats, &single_defs);
        let plan_pool = choose_composite(q, &stats, &pool_defs);
        let (single_cols, r_single) =
            execute(&plan_single, &single_defs, &single_trees, q, &table, &scan);
        let (pool_cols, r_pool) = execute(&plan_pool, &pool_defs, &pool_trees, q, &table, &scan);
        tbl.push(vec![
            (*name).to_owned(),
            format!("{:.0}", rows as f64),
            single_cols.clone(),
            format!("{:.1}", plan_single.work),
            pool_cols.clone(),
            format!("{:.1}", plan_pool.work),
            plan_pool.covering.to_string(),
        ]);
        let rows_match = sorted_rows(&scan) == sorted_rows(&r_single)
            && sorted_rows(&scan) == sorted_rows(&r_pool);
        outcomes.push(ClassOutcome {
            name,
            multi_predicate: q.predicates().len() > 1,
            scan_touched: scan.counts.touched(),
            single_cols,
            single_touched: r_single.counts.touched(),
            pool_cols,
            pool_touched: r_pool.counts.touched(),
            covering: plan_pool.covering,
            rows_match,
        });
    }
    text.push_str(&render_table(&tbl));

    // --- measured (deterministic) touched-row matrix ---
    text.push_str("\n-- measured touched rows (deterministic) --\n");
    let mut tbl = vec![vec![
        "class".to_owned(),
        "scan".to_owned(),
        "single".to_owned(),
        "composite".to_owned(),
        "speedup vs single".to_owned(),
        "rows match".to_owned(),
    ]];
    for o in &outcomes {
        tbl.push(vec![
            o.name.to_owned(),
            o.scan_touched.to_string(),
            o.single_touched.to_string(),
            o.pool_touched.to_string(),
            format!("{:.1}x", o.speedup_vs_single()),
            o.rows_match.to_string(),
        ]);
    }
    text.push_str(&render_table(&tbl));

    let wins = outcomes
        .iter()
        .filter(|o| o.multi_predicate && o.pool_touched < o.single_touched)
        .count();
    text.push_str(&format!(
        "\nsubsumed candidates: {} (pool {} -> survivors {})\n",
        pool.len() - survivors.len(),
        pool.len(),
        survivors.len()
    ));
    text.push_str(&format!(
        "composite beats best single on {wins} multi-predicate classes\n"
    ));

    CompositeReport {
        text,
        pool,
        survivors,
        classes: outcomes,
    }
}
