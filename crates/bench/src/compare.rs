//! Shared optimized-vs-reference comparison harness for the pinned
//! perf baselines (`bench_sched`, `bench_interleave`).
//!
//! Both binaries time an optimized implementation against its retained
//! pre-optimization reference in the same process and serialize the
//! paired rows into a committed `BENCH_*.json` (schemas
//! `flowtune.bench_sched.v1` / `flowtune.bench_interleave.v1`,
//! documented field-by-field in `EXPERIMENTS.md`). The JSON layout is
//! deliberately identical across schemas so `tests/bench_baselines.rs`
//! can enforce speedup bars on either file with one parser.

use crate::micro::{run_captured, BenchStats};

/// One optimized-vs-reference pairing of [`BenchStats`] rows.
#[derive(Debug)]
pub struct Comparison {
    /// Scenario name (shared by both rows, minus the label prefix).
    pub name: String,
    /// Stats for the optimized implementation (`<prefix>/<name>`).
    pub optimized: BenchStats,
    /// Stats for the reference implementation (`reference/<name>`).
    pub reference: BenchStats,
}

impl Comparison {
    /// Median-over-median speedup of optimized vs reference.
    pub fn speedup(&self) -> f64 {
        self.reference.median_ns / self.optimized.median_ns
    }
}

/// Benchmark one scenario under both implementations; pushes the
/// paired comparison. Sets `ok` to false on a benchmark error (no
/// samples).
pub fn compare<F, G>(
    prefix: &str,
    name: &str,
    samples: usize,
    mut fast: F,
    mut slow: G,
    out: &mut Vec<Comparison>,
    ok: &mut bool,
) where
    F: FnMut(),
    G: FnMut(),
{
    let optimized = run_captured(&format!("{prefix}/{name}"), samples, |b| b.iter(&mut fast));
    let reference = run_captured(&format!("reference/{name}"), samples, |b| b.iter(&mut slow));
    match (optimized, reference) {
        (Some(optimized), Some(reference)) => {
            let c = Comparison {
                name: name.to_owned(),
                optimized,
                reference,
            };
            println!(
                "{:<44} optimized {:>10.1} us   reference {:>10.1} us   speedup {:>5.2}x",
                c.name,
                c.optimized.median_ns / 1e3,
                c.reference.median_ns / 1e3,
                c.speedup()
            );
            out.push(c);
        }
        _ => {
            eprintln!("error: benchmark {name} produced no samples");
            *ok = false;
        }
    }
}

/// Benchmark an optimized-only scenario (the reference is infeasible at
/// this scale); pushes a standalone stats row. Sets `ok` to false on a
/// benchmark error.
pub fn measure_standalone<F>(
    prefix: &str,
    name: &str,
    samples: usize,
    mut fast: F,
    out: &mut Vec<BenchStats>,
    ok: &mut bool,
) where
    F: FnMut(),
{
    match run_captured(&format!("{prefix}/{name}"), samples, |b| b.iter(&mut fast)) {
        Some(stats) => {
            println!(
                "{:<44} optimized {:>10.1} us   (no reference at this scale)",
                name,
                stats.median_ns / 1e3,
            );
            out.push(stats);
        }
        None => {
            eprintln!("error: benchmark {name} produced no samples");
            *ok = false;
        }
    }
}

fn json_f64(v: f64) -> String {
    format!("{v:.1}")
}

fn stats_json(s: &BenchStats) -> String {
    format!(
        "    {{\"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}}}",
        s.name,
        json_f64(s.median_ns),
        json_f64(s.min_ns),
        json_f64(s.max_ns),
        s.samples
    )
}

/// Render the `BENCH_*.json` document: schema and mode, any
/// schema-specific scalar fields (`extra`, emitted in order as raw
/// JSON values), all stats rows (paired rows first, then standalone
/// optimized-only rows), and the paired comparisons.
pub fn render_json(
    schema: &str,
    mode: &str,
    extra: &[(&str, String)],
    comparisons: &[Comparison],
    standalone: &[BenchStats],
) -> String {
    let mut benchmarks = Vec::new();
    let mut comps = Vec::new();
    for c in comparisons {
        benchmarks.push(stats_json(&c.optimized));
        benchmarks.push(stats_json(&c.reference));
        comps.push(format!(
            "    {{\"name\": \"{}\", \"optimized_median_ns\": {}, \"reference_median_ns\": {}, \"speedup\": {:.2}}}",
            c.name,
            json_f64(c.optimized.median_ns),
            json_f64(c.reference.median_ns),
            c.speedup()
        ));
    }
    for s in standalone {
        benchmarks.push(stats_json(s));
    }
    let extra_fields: String = extra
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v},\n"))
        .collect();
    format!(
        "{{\n  \"schema\": \"{schema}\",\n  \"mode\": \"{mode}\",\n{extra_fields}  \"benchmarks\": [\n{}\n  ],\n  \"comparisons\": [\n{}\n  ]\n}}\n",
        benchmarks.join(",\n"),
        comps.join(",\n"),
    )
}

/// Parse `--smoke` / `--out <path>` from the argument list; returns
/// `(smoke, out_path)` with `default_out` when `--out` is absent.
pub fn parse_bench_args(args: &[String], default_out: &str) -> (bool, String) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path = default_out.to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            if let Some(p) = it.next() {
                out_path = p.clone();
            }
        }
    }
    (smoke, out_path)
}
