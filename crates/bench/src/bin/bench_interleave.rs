//! Pinned interleaver perf baseline: memoized-bound + dominance-pruning
//! knapsack solver vs the retained pre-optimization reference.
//!
//! Runs both implementations on the same seeded workloads in the same
//! process and writes `BENCH_interleave.json` (schema
//! `flowtune.bench_interleave.v1`, documented in `EXPERIMENTS.md`). The
//! committed full-run file at the repository root pins the DESIGN §5i
//! acceptance criterion (enforced by `tests/bench_baselines.rs`). The
//! golden equivalence suite in `flowtune-interleave` separately proves
//! both solvers produce element-wise identical solutions; this binary
//! re-asserts that on every instance it times, then measures.
//!
//! Scenario families:
//!
//! * `solve/random` — independent sizes (1..=30) and values: bound
//!   pruning already works well here, so this row keeps the state
//!   table honest on instances where it has little to do.
//! * `solve/correlated` — values ~ 10x size + noise: near-equal
//!   densities blunt the Dantzig bound, the tree grows, and many DFS
//!   prefixes land on the same (depth, remaining) state for dominance
//!   pruning to collapse.
//! * `solve/equal_density` — identical items (the subset-sum-like
//!   adversary of Algorithm 3's docs): equal densities defeat bound
//!   pruning entirely; only the state table keeps the search
//!   polynomial.
//! * `pack/montage` — end-to-end Algorithm 2: `LpInterleaver` over a
//!   real scheduled skyline vs the reference packer.
//!
//! Flags:
//!
//! * `--smoke` — small instances and few samples; exercises every code
//!   path in seconds for CI. Smoke numbers are not a baseline.
//! * `--out <path>` — where to write the JSON (default
//!   `BENCH_interleave.json` in the current directory).
//!
//! Exits nonzero if any benchmark fails to produce samples or the
//! reference implementation was never exercised.

use flowtune_bench::compare::{compare, parse_bench_args, render_json};
use flowtune_common::{BuildOpId, IndexId, SimDuration, SimRng};
use flowtune_dataflow::App;
use flowtune_interleave::{reference, solve_knapsack, BuildOp, LpInterleaver};
use flowtune_sched::{BuildRef, SchedulerConfig, SkylineScheduler};
use std::hint::black_box;

const Q: SimDuration = SimDuration::from_secs(60);

/// A seeded batch of knapsack instances solved once per iteration.
struct Instance {
    capacity: u64,
    sizes: Vec<u64>,
    values: Vec<f64>,
}

fn random_instances(count: usize, items: u64, max_size: u64, seed: u64) -> Vec<Instance> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let n = rng.uniform_u64(items / 2, items) as usize;
            let sizes: Vec<u64> = (0..n).map(|_| rng.uniform_u64(1, max_size)).collect();
            let values: Vec<f64> = (0..n).map(|_| rng.uniform_u64(0, 100) as f64).collect();
            let total: u64 = sizes.iter().sum();
            Instance {
                capacity: total / 3,
                sizes,
                values,
            }
        })
        .collect()
}

/// Strongly correlated items (value = 10*size + 30), the classic hard
/// family for Dantzig-bound branch and bound: the constant offset
/// makes small items look denser than they pack, so the LP bound stays
/// loose, the tree grows — and the narrow size range makes DFS
/// prefixes collide on the same (depth, remaining) state constantly,
/// the dominance table's home turf.
fn correlated_instances(count: usize, items: u64, seed: u64) -> Vec<Instance> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let n = rng.uniform_u64(items / 2, items) as usize;
            let sizes: Vec<u64> = (0..n).map(|_| rng.uniform_u64(3, 12)).collect();
            let values: Vec<f64> = sizes.iter().map(|&s| (s * 10 + 30) as f64).collect();
            let total: u64 = sizes.iter().sum();
            Instance {
                capacity: total / 3,
                sizes,
                values,
            }
        })
        .collect()
}

/// Identical items: size 3, value 7, capacity chosen so the fractional
/// root bound is integrally unreachable (the search cannot finish
/// early) and bound pruning gets no traction. Three sizes around
/// `items` for a stabler timing row — the reference tree grows ~4x per
/// added item while the state table caps the optimized search at
/// O(items x capacity).
fn equal_density_instances(items: usize) -> Vec<Instance> {
    [items, items - 1, items - 2]
        .into_iter()
        .map(|n| Instance {
            capacity: (n as u64 / 2) * 3 + 1,
            sizes: vec![3; n],
            values: vec![7.0; n],
        })
        .collect()
}

fn solve_all_optimized(instances: &[Instance]) -> u64 {
    let mut acc = 0u64;
    for inst in instances {
        acc += solve_knapsack(inst.capacity, &inst.sizes, &inst.values).size;
    }
    acc
}

fn solve_all_reference(instances: &[Instance]) -> u64 {
    let mut acc = 0u64;
    for inst in instances {
        acc += reference::solve_knapsack(inst.capacity, &inst.sizes, &inst.values).size;
    }
    acc
}

/// Element-wise equivalence re-assertion over a whole family (the
/// debug-mode golden suite covers the same ground; this run covers the
/// exact instances being timed).
fn assert_family_equivalent(name: &str, instances: &[Instance]) {
    for (i, inst) in instances.iter().enumerate() {
        let got = solve_knapsack(inst.capacity, &inst.sizes, &inst.values);
        let want = reference::solve_knapsack(inst.capacity, &inst.sizes, &inst.values);
        assert_eq!(got.chosen, want.chosen, "{name}[{i}]: chosen sets differ");
        assert!(
            got.value == want.value,
            "{name}[{i}]: values differ ({} vs {})",
            got.value,
            want.value
        );
        assert_eq!(got.size, want.size, "{name}[{i}]: packed sizes differ");
    }
}

fn build_ops(n: u32, seed: u64) -> Vec<BuildOp> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| BuildOp {
            id: BuildOpId(i),
            build: BuildRef {
                index: IndexId(i / 4),
                part: i % 4,
            },
            duration: SimDuration::from_secs(1 + rng.uniform_u64(0, 40)),
            gain: 0.5 + rng.uniform_u64(0, 1000) as f64 / 100.0,
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (smoke, out_path) = parse_bench_args(&args, "BENCH_interleave.json");
    // Item counts stay <= 18 so the reference's worst case (< 2^19
    // nodes) finishes far under the node budget: every timed row is a
    // complete, equivalence-checked search on both sides.
    let (items, instances, dag_ops, builds, samples) = if smoke {
        (10u64, 5usize, 30usize, 16u32, 3usize)
    } else {
        (18, 25, 100, 80, 10)
    };
    flowtune_bench::banner(
        "bench_interleave",
        "DESIGN 5i: memoized-bound + dominance-pruning knapsack vs retained reference",
    );
    println!(
        "mode: {}   items/instance: <= {items}   instances/family: {instances}   samples/bench: {samples}",
        if smoke { "smoke" } else { "full" }
    );
    println!();

    let mut comparisons = Vec::new();
    let mut ok = true;

    let families: Vec<(String, Vec<Instance>)> = vec![
        (
            format!("solve/random/n{items}"),
            random_instances(instances, items, 30, 0xB11),
        ),
        (
            format!("solve/correlated/n{items}"),
            correlated_instances(instances, items, 0xB12),
        ),
        (
            format!("solve/equal_density/n{items}"),
            equal_density_instances(items as usize),
        ),
    ];
    for (name, insts) in &families {
        assert_family_equivalent(name, insts);
        compare(
            "interleave",
            name,
            samples,
            || {
                black_box(solve_all_optimized(black_box(insts)));
            },
            || {
                black_box(solve_all_reference(black_box(insts)));
            },
            &mut comparisons,
            &mut ok,
        );
    }

    // End-to-end Algorithm 2 pack over a real scheduled skyline.
    {
        let mut rng = SimRng::seed_from_u64(0xB13);
        let dag = App::Montage.generate(dag_ops, &[], &mut rng);
        let scheduler = SkylineScheduler::new(SchedulerConfig::default());
        let skyline = scheduler.schedule(&dag);
        let pending = build_ops(builds, 0xB14);
        let interleaver = LpInterleaver::new(Q);
        // Equivalence of the full pack on every schedule in the skyline.
        for (i, s) in skyline.iter().enumerate() {
            let mut opt = s.clone();
            let opt_placed = interleaver.interleave(&mut opt, &pending);
            let mut rf = s.clone();
            let ref_placed = reference::pack_reference(Q, &mut rf, &pending);
            assert_eq!(opt_placed, ref_placed, "pack[{i}]: placed ops differ");
            assert_eq!(opt, rf, "pack[{i}]: packed schedules differ");
        }
        let first = skyline.first().cloned();
        if let Some(base) = first {
            compare(
                "interleave",
                &format!("pack/montage/{dag_ops}ops_{builds}builds"),
                samples,
                || {
                    let mut s = base.clone();
                    black_box(interleaver.interleave(&mut s, black_box(&pending)));
                },
                || {
                    let mut s = base.clone();
                    black_box(reference::pack_reference(Q, &mut s, black_box(&pending)));
                },
                &mut comparisons,
                &mut ok,
            );
        } else {
            eprintln!("error: scheduler produced an empty skyline");
            ok = false;
        }
    }

    if !ok {
        eprintln!("error: one or more benchmarks failed");
        std::process::exit(1);
    }
    if comparisons.is_empty() {
        eprintln!("error: the reference implementation was never exercised");
        std::process::exit(1);
    }

    let json = render_json(
        "flowtune.bench_interleave.v1",
        if smoke { "smoke" } else { "full" },
        &[("knapsack_items", items.to_string())],
        &comparisons,
        &[],
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    }
    println!();
    let min_solve = comparisons
        .iter()
        .filter(|c| c.name.starts_with("solve/"))
        .map(|c| c.speedup())
        .fold(f64::INFINITY, f64::min);
    println!(
        "solve speedups: min {min_solve:.2}x across {} rows   reference rows: {}",
        comparisons
            .iter()
            .filter(|c| c.name.starts_with("solve/"))
            .count(),
        comparisons.len()
    );
    println!("wrote {out_path}");
}
