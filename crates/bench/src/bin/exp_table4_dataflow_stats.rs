//! Table 4: basic statistics of the scientific dataflows.
//!
//! Generates a batch of Montage / LIGO / CyberShake dataflows and
//! reports operator-runtime and input-file statistics next to the
//! paper's published numbers.

use flowtune_common::{OnlineStats, SimRng};
use flowtune_core::tablefmt::render_table;
use flowtune_dataflow::{App, FileDatabase};

fn main() {
    let _obs = flowtune_bench::obs_guard();
    flowtune_bench::banner("Table 4", "basic statistics of the scientific dataflows");
    let mut rng = SimRng::seed_from_u64(4);
    let filedb = FileDatabase::generate(&mut rng);

    let mut rows = vec![vec![
        "app".to_string(),
        "metric".to_string(),
        "#".to_string(),
        "min".to_string(),
        "max".to_string(),
        "mean".to_string(),
        "stdev".to_string(),
        "paper (min/max/mean/stdev)".to_string(),
    ]];
    // Runtime stats over 50 generated dataflows per app (8 for --smoke).
    let samples = if flowtune_bench::smoke() { 8 } else { 50 };
    for app in App::ALL {
        let mut time = OnlineStats::new();
        for i in 0..samples {
            let dag = app.generate(100, &[], &mut SimRng::seed_from_u64(1000 + i));
            for op in dag.ops() {
                time.push(op.runtime.as_secs_f64());
            }
        }
        let p = app.stats();
        rows.push(vec![
            app.name().to_string(),
            "time (sec)".to_string(),
            "100".to_string(),
            format!("{:.2}", time.min()),
            format!("{:.2}", time.max()),
            format!("{:.2}", time.mean()),
            format!("{:.2}", time.stdev()),
            format!("{} / {} / {} / {}", p.time.0, p.time.1, p.time.2, p.time.3),
        ]);
        // Input file sizes from the generated file database.
        let input = OnlineStats::from_iter(
            filedb
                .files_of(app)
                .map(|f| f.bytes as f64 / (1024.0 * 1024.0)),
        );
        rows.push(vec![
            app.name().to_string(),
            "input (MB)".to_string(),
            format!("{}", input.count()),
            format!("{:.2}", input.min()),
            format!("{:.2}", input.max()),
            format!("{:.2}", input.mean()),
            format!("{:.2}", input.stdev()),
            format!(
                "{} / {} / {} / {}",
                p.input_mb.0, p.input_mb.1, p.input_mb.2, p.input_mb.3
            ),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();
    let total_gb = filedb.total_bytes() as f64 / (1024.0f64).powi(3);
    println!(
        "file database: {} files, {:.2} GB, {} partitions (paper: 125 files, 76.69 GB, 713 partitions)",
        filedb.files().len(),
        total_gb,
        filedb.total_partitions()
    );
}
