//! Ablation: slot-only interleaving vs deferred batch building (the
//! paper's §7 "delayed building" future work).
//!
//! Two parts:
//!
//! 1. **Library-level short-slot scenario** — when idle slots are shorter
//!    than most build operators, slot interleaving strands gain on the
//!    table; the deferred queue accumulates the unplaceable operators
//!    and flushes a paid batch once its gain covers the lease.
//! 2. **Service-level sanity check** under the paper's defaults — there,
//!    partitioned builds are deliberately small enough to fit slots (the
//!    paper's core premise), so deferral is expected to change nothing.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_common::{BuildOpId, IndexId, Money, SimDuration};
use flowtune_core::tablefmt::render_table;
use flowtune_core::{IndexPolicy, QaasService, ServiceConfig};
use flowtune_dataflow::WorkloadKind;
use flowtune_interleave::{BuildOp, DeferredBuildQueue};
use flowtune_sched::BuildRef;

fn short_slot_scenario() {
    println!("part 1: short-slot scenario (slots 8-20 s, builds 25-55 s)");
    println!();
    let quantum = SimDuration::from_secs(60);
    let vm_price = Money::from_dollars(0.1);
    // Ten dataflow rounds, each exposing only short slots; one build op
    // per round wants to run, each worth $0.15 of gain.
    let slots_per_round: [u64; 3] = [8, 14, 20]; // seconds
    let mut stranded_gain = 0.0;
    let mut batched_gain = 0.0;
    let mut batch_cost = Money::ZERO;
    let mut queue = DeferredBuildQueue::new(quantum, vm_price);
    let mut batches = 0;
    for round in 0..10u32 {
        let op = BuildOp {
            id: BuildOpId(round),
            build: BuildRef {
                index: IndexId(round),
                part: 0,
            },
            duration: SimDuration::from_secs(25 + (round as u64 * 7) % 31),
            gain: 0.15,
        };
        let fits = slots_per_round
            .iter()
            .any(|&s| s >= op.duration.as_secs_f64() as u64);
        assert!(!fits, "scenario must make slots too short");
        // Slot-only: the op is stranded forever.
        stranded_gain += op.gain;
        // Deferred: queue it; flush when profitable.
        queue.defer([op]);
        if let Some(batch) = queue.try_flush() {
            batches += 1;
            batched_gain += batch.ops.iter().map(|o| o.gain).sum::<f64>();
            batch_cost += batch.cost;
        }
    }
    let rows = vec![
        vec![
            "variant".into(),
            "gain realised ($)".into(),
            "lease paid ($)".into(),
            "net ($)".into(),
        ],
        vec![
            "slot-only".into(),
            "0.000".into(),
            "0.000".into(),
            format!("0.000 (stranded {stranded_gain:.3})"),
        ],
        vec![
            "deferred batches".into(),
            format!("{batched_gain:.3}"),
            format!("{:.3}", batch_cost.as_dollars()),
            format!(
                "{:+.3} ({batches} batches)",
                batched_gain - batch_cost.as_dollars()
            ),
        ],
    ];
    print!("{}", render_table(&rows));
    assert!(
        batched_gain - batch_cost.as_dollars() > 0.0,
        "batches must be net-positive"
    );
    println!();
}

fn service_sanity(quanta: u64) {
    println!("part 2: service under paper defaults (builds fit slots by design)");
    println!();
    let mut rows = vec![vec![
        "variant".to_string(),
        "#dataflows finished".to_string(),
        "cost / dataflow ($)".to_string(),
        "builds completed".to_string(),
    ]];
    for (label, deferred) in [("slot-only", false), ("with deferred batches", true)] {
        let mut config = ServiceConfig::default();
        config.params.total_quanta = quanta;
        config.policy = IndexPolicy::Gain { delete: true };
        config.workload = WorkloadKind::paper_phases();
        config.deferred_builds = deferred;
        let r = QaasService::new(config).run().expect("service run failed");
        rows.push(vec![
            label.to_string(),
            r.dataflows_finished.to_string(),
            format!("{:.3}", r.cost_per_dataflow()),
            r.builds_completed.to_string(),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();
    println!("expected: near-identical — partitioned builds are sized to fit idle slots, which is the paper's whole point; deferral only matters when they don't (part 1)");
}

fn main() {
    let _obs = flowtune_bench::obs_guard();
    let quanta = flowtune_bench::horizon_quanta();
    flowtune_bench::banner(
        "Ablation: deferred batch builds",
        "slot-only interleaving vs gain-justified paid batches (§7)",
    );
    let smoke_tag = if flowtune_bench::smoke() {
        " (smoke)"
    } else {
        ""
    };
    println!("horizon: {quanta} quanta{smoke_tag}");
    println!();
    short_slot_scenario();
    service_sanity(quanta);
}
