//! Ablation: global fading controller `D` vs the per-index adaptive
//! learner (the paper's §7 future work, implemented in
//! `flowtune_tuner::adaptive`).
//!
//! Runs the Gain policy under the phase workload with (a) several
//! global `D` values and (b) the adaptive learner, and compares
//! throughput, cost and deletion churn. Expected: small global `D`
//! deletes too eagerly, large global `D` hoards storage; the adaptive
//! learner tracks each index's observed reuse interval and lands near
//! the best of both.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_core::tablefmt::render_table;
use flowtune_core::{IndexPolicy, QaasService, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn main() {
    let _obs = flowtune_bench::obs_guard();
    let quanta = flowtune_bench::horizon_quanta();
    flowtune_bench::banner(
        "Ablation: fading controller",
        "global D vs per-index adaptive learning (§7 future work)",
    );
    let smoke_tag = if flowtune_bench::smoke() {
        " (smoke)"
    } else {
        ""
    };
    println!("horizon: {quanta} quanta{smoke_tag}, phase workload, Gain policy");
    println!();
    let mut rows = vec![vec![
        "fading".to_string(),
        "#dataflows finished".to_string(),
        "cost / dataflow ($)".to_string(),
        "avg time (quanta)".to_string(),
        "indexes deleted".to_string(),
        "builds killed".to_string(),
    ]];
    let mut configs: Vec<(String, f64, bool)> = vec![
        ("global D=0.5".into(), 0.5, false),
        ("global D=1 (Table 3)".into(), 1.0, false),
        ("global D=4".into(), 4.0, false),
        ("global D=16".into(), 16.0, false),
        ("adaptive per-index".into(), 1.0, true),
    ];
    for (label, d, adaptive) in configs.drain(..) {
        let mut config = ServiceConfig::default();
        config.params.total_quanta = quanta;
        config.params.tuner.fading_d = d;
        config.policy = IndexPolicy::Gain { delete: true };
        config.workload = WorkloadKind::paper_phases();
        config.adaptive_fading = adaptive;
        let r = QaasService::new(config).run().expect("service run failed");
        rows.push(vec![
            label,
            r.dataflows_finished.to_string(),
            format!("{:.3}", r.cost_per_dataflow()),
            format!("{:.2}", r.avg_makespan_quanta()),
            r.indexes_deleted.to_string(),
            r.builds_killed.to_string(),
        ]);
    }
    print!("{}", render_table(&rows));
}
