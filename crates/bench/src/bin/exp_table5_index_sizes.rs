//! Table 5: sizes of the four indexes on TPC-H `lineitem` (scale 2).
//!
//! Applies the paper's B+Tree size model (§3) to the synthetic
//! `lineitem` statistics: index record = average column value + 8-byte
//! row pointer, fan-out from an 8 KB block. Prints size in MB and the
//! percentage of the 1.4 GB table, next to the paper's measurements.

use flowtune_core::tablefmt::render_table;
use flowtune_index::IndexCostModel;
use flowtune_storage::lineitem::SF2_ROWS;
use flowtune_storage::LineitemGenerator;

/// Paper's Table 5 rows: (column, size MB, % of table).
const PAPER: [(&str, f64, f64); 4] = [
    ("comment", 422.30, 30.16),
    ("shipinstruct", 248.95, 17.78),
    ("commitdate", 225.91, 16.13),
    ("orderkey", 146.99, 10.49),
];

fn main() {
    let _obs = flowtune_bench::obs_guard();
    flowtune_bench::banner("Table 5", "indexes on table lineitem (SF 2, ~12 M rows)");
    let schema = LineitemGenerator::schema();
    let table_rec = schema.avg_row_bytes();
    let table_bytes = SF2_ROWS as f64 * table_rec;
    println!(
        "table: {} rows x {:.1} B/row = {:.2} GB (paper: 1.4 GB)",
        SF2_ROWS,
        table_rec,
        table_bytes / (1024.0f64).powi(3)
    );
    println!();
    let mut rows = vec![vec![
        "column".to_string(),
        "size (MB)".to_string(),
        "% table".to_string(),
        "paper MB".to_string(),
        "paper %".to_string(),
    ]];
    // The model is analytic, so --smoke just trims the table to one row.
    let columns: &[(&str, f64, f64)] = if flowtune_bench::smoke() {
        &PAPER[..1]
    } else {
        &PAPER
    };
    for &(column, paper_mb, paper_pct) in columns {
        let key_bytes = schema
            .column(column)
            .unwrap_or_else(|| panic!("missing column {column}"))
            .ty
            .avg_value_bytes();
        let model = IndexCostModel::new(key_bytes + 8.0, table_rec);
        let size = model.size_bytes(SF2_ROWS) as f64;
        rows.push(vec![
            column.to_string(),
            format!("{:.2}", size / (1024.0 * 1024.0)),
            format!("{:.2} %", size / table_bytes * 100.0),
            format!("{paper_mb:.2}"),
            format!("{paper_pct:.2} %"),
        ]);
    }
    print!("{}", render_table(&rows));
}
