//! Figure 13: adaptation of the tuner to workload phases.
//!
//! Runs the Gain policy under the phase workload and prints the number
//! of built indexes and the cumulative index storage cost over time.
//! The expected shape: indexes accumulate during each phase, get
//! deleted after the phase ends (their gain fades), and some CyberShake
//! indexes are *recreated* when CyberShake returns in the final phase.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_core::tablefmt::render_table;
use flowtune_core::{IndexPolicy, QaasService, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn main() {
    let _obs = flowtune_bench::obs_guard();
    let quanta = flowtune_bench::horizon_quanta();
    flowtune_bench::banner(
        "Figure 13",
        "indexes built and storage cost over time (phase workload)",
    );
    let smoke_tag = if flowtune_bench::smoke() {
        " (smoke)"
    } else {
        ""
    };
    println!("horizon: {quanta} quanta{smoke_tag}");
    println!();
    let mut config = ServiceConfig::default();
    config.params.total_quanta = quanta;
    config.policy = IndexPolicy::Gain { delete: true };
    config.workload = WorkloadKind::paper_phases();
    let mut svc = QaasService::new(config);
    let report = svc.run().expect("service run failed");

    let mut rows = vec![vec![
        "time (quanta)".to_string(),
        "#indexes built".to_string(),
        "#index partitions".to_string(),
        "stored (MB)".to_string(),
        "cum. storage cost ($)".to_string(),
    ]];
    // Sample the timeline at ~24 evenly spaced points.
    let step = (report.timeline.len() / 24).max(1);
    for point in report.timeline.iter().step_by(step) {
        rows.push(vec![
            format!("{:.0}", point.time_quanta),
            point.indexes_built.to_string(),
            point.index_partitions.to_string(),
            format!("{:.1}", point.stored_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.3}", point.storage_cost.as_dollars()),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();
    println!(
        "indexes deleted during the run: {}; built at end: {}",
        report.indexes_deleted,
        report.timeline.last().map_or(0, |p| p.indexes_built)
    );
    println!("paper finding: the index set tracks the phases — created when a phase makes them beneficial, deleted when it ends, recreated when CyberShake returns");
}
