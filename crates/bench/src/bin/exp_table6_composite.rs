//! Table 6 (composite): multi-predicate speedups from composite and
//! covering indexes on synthetic `lineitem`.
//!
//! The paper's Table 6 measures single-column index speedups; its
//! multi-predicate dataflows leave composite wins on the table. This
//! experiment observes five query classes, runs the tuner's composite
//! candidate generation (ESR order + leftmost-prefix subsumption),
//! scores the survivors through the Eq. 3–5 gain model, and compares
//! scan vs best-single vs best-composite plans both by modelled cost
//! and by deterministic touched-row counts.
//!
//! `--smoke` prints only the deterministic report, pinned byte-for-byte
//! by `tests/golden/table6_composite_smoke.txt`. The full run repeats
//! the matrix at a larger table and adds measured wall times.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_bench::table6_composite::{build_report, lineitem_table, query_classes, SMOKE_ROWS};
use flowtune_index::IndexKind;
use flowtune_query::timer::time_median;
use flowtune_query::{build_composite, composite_select, scan_multi, IndexDef};

fn main() {
    let _obs = flowtune_bench::obs_guard();
    let smoke = flowtune_bench::smoke();
    let rows = if smoke { SMOKE_ROWS } else { 600_000 };
    let report = build_report(rows);
    print!("{}", report.text);
    if smoke {
        return;
    }

    // Full mode: wall-clock comparison of the same plans (not golden —
    // timings are machine-dependent).
    println!("\n-- measured wall times (median of 5) --");
    let table = lineitem_table(rows);
    for (name, q) in &query_classes() {
        let scan_t = time_median(5, || scan_multi(&table, q));
        let mut line = format!("{name:<24} scan {:>9.3} ms", scan_t.as_secs_f64() * 1e3);
        for cand in &report.survivors {
            let def = IndexDef {
                columns: cand.columns.clone(),
                kind: IndexKind::BTree,
            };
            let tree = build_composite(&table, &def.columns, 64);
            if composite_select(&tree, &def, q, &table).is_some() {
                let t = time_median(5, || composite_select(&tree, &def, q, &table));
                line.push_str(&format!(
                    "  ({}) {:>9.3} ms",
                    def.columns.join(", "),
                    t.as_secs_f64() * 1e3
                ));
            }
        }
        println!("{line}");
    }
}
