//! Figure 4: index ordering in the 2-D gain space.
//!
//! Indexes are points in the plane `(Mc·gt, gm)` — both axes in dollars
//! so the α-weighted gain `g = α·(Mc·gt) + (1−α)·gm` is a rotating
//! family of iso-lines, exactly the figure's geometry. Non-beneficial
//! points (any coordinate ≤ 0: X1..X4) never rank; among the rest the
//! ranking order changes with α, and at α = 0.7 point 1 is best, as the
//! figure states.

use flowtune_common::IndexId;
use flowtune_core::tablefmt::render_table;
use flowtune_tuner::gain::IndexGains;
use flowtune_tuner::rank_indexes;

/// The figure's nine numbered points plus the four X points, as
/// `(Mc·gt, gm)` dollar coordinates (time-gain-heavy points to the
/// right, money-gain-heavy points up).
const POINTS: [(&str, f64, f64); 13] = [
    ("1", 0.95, 0.62),
    ("2", 0.60, 0.70),
    ("3", 0.72, 0.88),
    ("4", 0.40, 0.30),
    ("5", 0.20, 0.20),
    ("6", 0.55, 0.50),
    ("7", 0.65, 0.40),
    ("8", 0.10, 0.45),
    ("9", 0.30, 0.55),
    ("X1", -0.20, 0.50),
    ("X2", -0.10, -0.10),
    ("X3", 0.20, -0.20),
    ("X4", 0.60, -0.15),
];

fn ranked_at(alpha: f64) -> Vec<&'static str> {
    let gains: Vec<(IndexId, IndexGains)> = POINTS
        .iter()
        .enumerate()
        .map(|(i, (_, x, y))| {
            let g = alpha * x + (1.0 - alpha) * y;
            // gt carries the sign of the x coordinate (x = Mc·gt).
            (IndexId(i as u32), IndexGains { gt: *x, gm: *y, g })
        })
        .collect();
    rank_indexes(&gains)
        .into_iter()
        .map(|(id, _)| POINTS[id.index()].0)
        .collect()
}

fn main() {
    let _obs = flowtune_bench::obs_guard();
    flowtune_bench::banner("Figure 4", "index ordering based on α (§5.1)");
    let mut rows = vec![vec![
        "alpha".to_string(),
        "ranking (best first)".to_string(),
    ]];
    let alphas: &[f64] = if flowtune_bench::smoke() {
        &[0.1, 0.5, 0.9]
    } else {
        &[0.1, 0.3, 0.5, 0.7, 0.9]
    };
    for &alpha in alphas {
        rows.push(vec![format!("{alpha:.1}"), ranked_at(alpha).join(" > ")]);
    }
    print!("{}", render_table(&rows));
    println!();
    let at_07 = ranked_at(0.7);
    println!(
        "at α = 0.7 the best index is point {} (paper: point 1); X1..X4 never rank",
        at_07[0]
    );
    assert_eq!(at_07[0], "1", "point 1 must win at α = 0.7");
    assert!(
        !at_07.iter().any(|p| p.starts_with('X')),
        "non-beneficial points must be filtered"
    );
    // The ordering genuinely rotates with α.
    assert_ne!(ranked_at(0.1), ranked_at(0.9));
}
