//! Figures 10–11: knapsack packing quality.
//!
//! Reproduces the §6.4 micro-benchmark: 8 idle time segments and ~24
//! build-operator durations (Fig. 10's histograms), gains equal to
//! execution times, packed by (a) the Graham-style greedy baseline,
//! (b) the LP/branch-and-bound per-slot algorithm, (c) the merged-slot
//! theoretical upper bound. The paper reports LP within 5 % of the
//! bound.

use flowtune_common::Histogram;
use flowtune_core::tablefmt::render_table;
use flowtune_interleave::{graham_greedy, merged_upper_bound, solve_knapsack};

/// Idle segment sizes in quanta (Fig. 10 right: ~0.1–0.6 quanta each).
const SLOTS_QUANTA: [f64; 8] = [0.55, 0.48, 0.40, 0.33, 0.28, 0.22, 0.15, 0.10];

/// Build-operator durations in quanta (Fig. 10 left: ~0.02–0.2).
const OPS_QUANTA: [f64; 24] = [
    0.02, 0.03, 0.03, 0.04, 0.05, 0.05, 0.06, 0.07, 0.08, 0.08, 0.09, 0.10, 0.10, 0.11, 0.12, 0.13,
    0.14, 0.15, 0.16, 0.17, 0.18, 0.19, 0.19, 0.20,
];

fn to_ms(q: f64) -> u64 {
    (q * 60_000.0).round() as u64
}

/// LP interleaving over discrete slots: solve a knapsack per slot,
/// largest slot first, removing placed items.
fn lp_pack(slots: &[u64], sizes: &[u64], values: &[f64]) -> f64 {
    let mut order: Vec<usize> = (0..slots.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(slots[i]));
    let mut available: Vec<bool> = vec![true; sizes.len()];
    let mut total = 0.0;
    for &slot in &order {
        let idx: Vec<usize> = (0..sizes.len()).filter(|&i| available[i]).collect();
        let s: Vec<u64> = idx.iter().map(|&i| sizes[i]).collect();
        let v: Vec<f64> = idx.iter().map(|&i| values[i]).collect();
        let sol = solve_knapsack(slots[slot], &s, &v);
        for &chosen in &sol.chosen {
            available[idx[chosen]] = false;
        }
        total += sol.value;
    }
    total
}

fn main() {
    let _obs = flowtune_bench::obs_guard();
    flowtune_bench::banner(
        "Figures 10-11",
        "knapsack packing vs Graham baseline and upper bound",
    );
    // Fig. 10: histograms (--smoke packs half the operator pool).
    let ops: &[f64] = if flowtune_bench::smoke() {
        &OPS_QUANTA[..OPS_QUANTA.len() / 2]
    } else {
        &OPS_QUANTA
    };
    println!("build-operator durations (quanta):");
    let mut h = Histogram::new(0.0, 0.25, 5);
    for &op in ops {
        h.record(op);
    }
    for (lo, hi, n) in h.iter() {
        println!("  [{lo:.2}, {hi:.2})  {}", "*".repeat(n as usize));
    }
    println!("idle segments (quanta): {SLOTS_QUANTA:?}");
    println!();

    let slots: Vec<u64> = SLOTS_QUANTA.iter().map(|&q| to_ms(q)).collect();
    let sizes: Vec<u64> = ops.iter().map(|&q| to_ms(q)).collect();
    // Gain of each operator equals its execution time (in quanta).
    let values: Vec<f64> = ops.to_vec();

    let (_, graham) = graham_greedy(&slots, &sizes, &values);
    let lp = lp_pack(&slots, &sizes, &values);
    let upper = merged_upper_bound(&slots, &sizes, &values);

    let mut rows = vec![vec![
        "algorithm".to_string(),
        "total gain (quanta)".to_string(),
        "% of upper bound".to_string(),
    ]];
    for (name, value) in [
        ("Graham", graham),
        ("Linear Prog.", lp),
        ("Upper Bound", upper),
    ] {
        rows.push(vec![
            name.to_string(),
            format!("{value:.3}"),
            format!("{:.1} %", value / upper * 100.0),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();
    println!(
        "LP within {:.1} % of the theoretical upper bound (paper: within 5 %)",
        (1.0 - lp / upper) * 100.0
    );
    assert!(
        lp >= graham - 1e-9,
        "LP must not lose to the greedy baseline"
    );
}
