//! Pinned scheduler perf baseline: optimized incremental skyline
//! scheduler vs the retained pre-optimization reference.
//!
//! Runs both implementations on the same seeded workloads in the same
//! process and writes `BENCH_sched.json` (schema
//! `flowtune.bench_sched.v1`, documented in `EXPERIMENTS.md`). The
//! committed full-run file at the repository root pins the DESIGN §5f
//! acceptance criterion: >= 2x median speedup on the 100-op
//! scientific-DAG `schedule()` benchmark (enforced by
//! `tests/bench_baselines.rs`). The golden equivalence suite in
//! `flowtune-sched` separately proves both implementations produce
//! byte-identical skylines, so this binary only measures time — except
//! at the 1k-op scale row, where the debug-mode suite cannot afford
//! the reference and equivalence is re-asserted here in release mode
//! before timing (DESIGN §5i).
//!
//! Scale grid (full mode): a 1k-op comparison row plus optimized-only
//! 5k/10k rows (the reference needs tens of seconds *per run* at 1k
//! and would need hours beyond it); the parallel expansion path is
//! asserted equal to the sequential one at every scale-grid size.
//!
//! Flags:
//!
//! * `--smoke` — small DAGs and few samples; exercises every code path
//!   in seconds for CI. Smoke numbers are not a baseline.
//! * `--out <path>` — where to write the JSON (default
//!   `BENCH_sched.json` in the current directory).
//!
//! Exits nonzero if any benchmark fails to produce samples or the
//! reference implementation was never exercised.

use flowtune_bench::compare::{compare, measure_standalone, parse_bench_args, render_json};
use flowtune_common::{IndexId, OpId, SimDuration, SimRng};
use flowtune_dataflow::{App, Dag};
use flowtune_sched::reference::ReferenceSkylineScheduler;
use flowtune_sched::skyline::OptionalOp;
use flowtune_sched::{BuildRef, SchedulerConfig, SkylineScheduler};
use std::hint::black_box;

fn optional_ops(n: u32, seed: u64) -> Vec<OptionalOp> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| OptionalOp {
            op: OpId(100_000 + i),
            duration: SimDuration::from_secs(1 + rng.uniform_u64(0, 120)),
            build: BuildRef {
                index: IndexId(i / 4),
                part: i % 4,
            },
        })
        .collect()
}

fn app_dag(app: App, ops: usize) -> Dag {
    app.generate(ops, &[], &mut SimRng::seed_from_u64(1))
}

fn config(width: usize) -> SchedulerConfig {
    SchedulerConfig {
        max_skyline: width,
        ..SchedulerConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (smoke, out_path) = parse_bench_args(&args, "BENCH_sched.json");
    let (ops, opt_n, samples) = if smoke { (30, 8, 3) } else { (100, 32, 15) };
    flowtune_bench::banner(
        "bench_sched",
        "DESIGN 5f/5i: incremental skyline search vs retained reference",
    );
    println!(
        "mode: {}   dag ops: {ops}   samples/bench: {samples}",
        if smoke { "smoke" } else { "full" }
    );
    println!();

    let mut comparisons = Vec::new();
    let mut standalone = Vec::new();
    let mut ok = true;

    // Headline: schedule() on each application's 100-op DAG, width 8 —
    // the committed baseline's >= 2x criterion reads these rows.
    for app in App::ALL {
        let dag = app_dag(app, ops);
        let fast = SkylineScheduler::new(config(8));
        let slow = ReferenceSkylineScheduler::new(config(8));
        compare(
            "sched",
            &format!("schedule/{}", app.name()),
            samples,
            || {
                black_box(fast.schedule(black_box(&dag)));
            },
            || {
                black_box(slow.schedule(black_box(&dag)));
            },
            &mut comparisons,
            &mut ok,
        );
    }

    // Optional build operators: stresses preemption + tie-collapse.
    {
        let dag = app_dag(App::Montage, ops);
        let optional = optional_ops(opt_n, 7);
        let fast = SkylineScheduler::new(config(8));
        let slow = ReferenceSkylineScheduler::new(config(8));
        compare(
            "sched",
            "schedule_with_optional/montage",
            samples,
            || {
                black_box(fast.schedule_with_optional(black_box(&dag), black_box(&optional)));
            },
            || {
                black_box(slow.schedule_with_optional(black_box(&dag), black_box(&optional)));
            },
            &mut comparisons,
            &mut ok,
        );
    }

    // Width ablation, including the once-panicking width 1.
    {
        let dag = app_dag(App::Montage, ops);
        for width in [1usize, 8, 24] {
            let fast = SkylineScheduler::new(config(width));
            let slow = ReferenceSkylineScheduler::new(config(width));
            compare(
                "sched",
                &format!("width/{width}"),
                samples,
                || {
                    black_box(fast.schedule(black_box(&dag)));
                },
                || {
                    black_box(slow.schedule(black_box(&dag)));
                },
                &mut comparisons,
                &mut ok,
            );
        }
    }

    // Scale grid (DESIGN §5i). The comparison scale gets a release-mode
    // equivalence re-assertion (the in-crate golden suite pins 60–100
    // ops; the debug-mode reference is infeasible at 1k); every scale
    // additionally asserts the forced-parallel expansion path equals
    // the sequential one.
    let (cmp_scale, solo_scales, scale_samples) = if smoke {
        (60usize, vec![120usize], 3usize)
    } else {
        (1000, vec![5000, 10_000], 3)
    };
    {
        let dag = app_dag(App::Montage, cmp_scale);
        let fast = SkylineScheduler::new(config(8));
        let slow = ReferenceSkylineScheduler::new(config(8));
        println!("asserting optimized == reference at {cmp_scale} ops (one run each)...");
        assert_eq!(
            fast.schedule(&dag),
            slow.schedule(&dag),
            "optimized scheduler diverged from reference at {cmp_scale} ops"
        );
        compare(
            "sched",
            &format!("scale/montage/{cmp_scale}"),
            scale_samples,
            || {
                black_box(fast.schedule(black_box(&dag)));
            },
            || {
                black_box(slow.schedule(black_box(&dag)));
            },
            &mut comparisons,
            &mut ok,
        );
    }
    for n in solo_scales {
        let dag = app_dag(App::Montage, n);
        let fast = SkylineScheduler::new(config(8));
        let par = SkylineScheduler::new(SchedulerConfig {
            max_skyline: 8,
            expand_threads: 4,
            expand_threshold: 1,
            ..SchedulerConfig::default()
        });
        println!("asserting parallel == sequential at {n} ops (one run each)...");
        assert_eq!(
            fast.schedule(&dag),
            par.schedule(&dag),
            "parallel expansion diverged from sequential at {n} ops"
        );
        measure_standalone(
            "sched",
            &format!("scale/montage/{n}"),
            scale_samples,
            || {
                black_box(fast.schedule(black_box(&dag)));
            },
            &mut standalone,
            &mut ok,
        );
    }

    if !ok {
        eprintln!("error: one or more benchmarks failed");
        std::process::exit(1);
    }
    if comparisons.is_empty() {
        eprintln!("error: the reference implementation was never exercised");
        std::process::exit(1);
    }

    let json = render_json(
        "flowtune.bench_sched.v1",
        if smoke { "smoke" } else { "full" },
        &[("dag_ops", ops.to_string())],
        &comparisons,
        &standalone,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    }
    println!();
    let headline: Vec<f64> = comparisons
        .iter()
        .filter(|c| c.name.starts_with("schedule/"))
        .map(|c| c.speedup())
        .collect();
    let min_headline = headline.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "headline schedule() speedups: min {min_headline:.2}x across {} apps   reference rows: {}",
        headline.len(),
        comparisons.len()
    );
    println!("wrote {out_path}");
}
