//! Pinned scheduler perf baseline: optimized incremental skyline
//! scheduler vs the retained pre-optimization reference.
//!
//! Runs both implementations on the same seeded workloads in the same
//! process and writes `BENCH_sched.json` (schema
//! `flowtune.bench_sched.v1`, documented in `EXPERIMENTS.md`). The
//! committed full-run file at the repository root pins the DESIGN §5f
//! acceptance criterion: >= 2x median speedup on the 100-op
//! scientific-DAG `schedule()` benchmark. The golden equivalence suite
//! in `flowtune-sched` separately proves both implementations produce
//! byte-identical skylines, so this binary only measures time.
//!
//! Flags:
//!
//! * `--smoke` — small DAGs and few samples; exercises every code path
//!   in seconds for CI. Smoke numbers are not a baseline.
//! * `--out <path>` — where to write the JSON (default
//!   `BENCH_sched.json` in the current directory).
//!
//! Exits nonzero if any benchmark fails to produce samples.

use flowtune_bench::micro::{run_captured, BenchStats};
use flowtune_common::{IndexId, OpId, SimDuration, SimRng};
use flowtune_dataflow::{App, Dag};
use flowtune_sched::reference::ReferenceSkylineScheduler;
use flowtune_sched::skyline::OptionalOp;
use flowtune_sched::{BuildRef, SchedulerConfig, SkylineScheduler};
use std::hint::black_box;

struct Comparison {
    name: String,
    optimized: BenchStats,
    reference: BenchStats,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.reference.median_ns / self.optimized.median_ns
    }
}

fn optional_ops(n: u32, seed: u64) -> Vec<OptionalOp> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| OptionalOp {
            op: OpId(100_000 + i),
            duration: SimDuration::from_secs(1 + rng.uniform_u64(0, 120)),
            build: BuildRef {
                index: IndexId(i / 4),
                part: i % 4,
            },
        })
        .collect()
}

/// Benchmark one scenario under both implementations; pushes both
/// stats rows and the paired comparison. Returns false on a benchmark
/// error (no samples).
fn compare<F, G>(
    name: &str,
    samples: usize,
    mut fast: F,
    mut slow: G,
    out: &mut Vec<Comparison>,
    ok: &mut bool,
) where
    F: FnMut(),
    G: FnMut(),
{
    let optimized = run_captured(&format!("sched/{name}"), samples, |b| b.iter(&mut fast));
    let reference = run_captured(&format!("reference/{name}"), samples, |b| b.iter(&mut slow));
    match (optimized, reference) {
        (Some(optimized), Some(reference)) => {
            let c = Comparison {
                name: name.to_owned(),
                optimized,
                reference,
            };
            println!(
                "{:<44} optimized {:>10.1} us   reference {:>10.1} us   speedup {:>5.2}x",
                c.name,
                c.optimized.median_ns / 1e3,
                c.reference.median_ns / 1e3,
                c.speedup()
            );
            out.push(c);
        }
        _ => {
            eprintln!("error: benchmark {name} produced no samples");
            *ok = false;
        }
    }
}

fn app_dag(app: App, ops: usize) -> Dag {
    app.generate(ops, &[], &mut SimRng::seed_from_u64(1))
}

fn config(width: usize) -> SchedulerConfig {
    SchedulerConfig {
        max_skyline: width,
        ..SchedulerConfig::default()
    }
}

fn json_f64(v: f64) -> String {
    format!("{v:.1}")
}

fn stats_json(s: &BenchStats) -> String {
    format!(
        "    {{\"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}}}",
        s.name,
        json_f64(s.median_ns),
        json_f64(s.min_ns),
        json_f64(s.max_ns),
        s.samples
    )
}

fn render_json(mode: &str, ops: usize, comparisons: &[Comparison]) -> String {
    let mut benchmarks = Vec::new();
    let mut comps = Vec::new();
    for c in comparisons {
        benchmarks.push(stats_json(&c.optimized));
        benchmarks.push(stats_json(&c.reference));
        comps.push(format!(
            "    {{\"name\": \"{}\", \"optimized_median_ns\": {}, \"reference_median_ns\": {}, \"speedup\": {:.2}}}",
            c.name,
            json_f64(c.optimized.median_ns),
            json_f64(c.reference.median_ns),
            c.speedup()
        ));
    }
    format!
    (
        "{{\n  \"schema\": \"flowtune.bench_sched.v1\",\n  \"mode\": \"{mode}\",\n  \"dag_ops\": {ops},\n  \"benchmarks\": [\n{}\n  ],\n  \"comparisons\": [\n{}\n  ]\n}}\n",
        benchmarks.join(",\n"),
        comps.join(",\n"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path = String::from("BENCH_sched.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            if let Some(p) = it.next() {
                out_path = p.clone();
            }
        }
    }
    let (ops, opt_n, samples) = if smoke { (30, 8, 3) } else { (100, 32, 15) };
    flowtune_bench::banner(
        "bench_sched",
        "DESIGN 5f: incremental skyline search vs retained reference",
    );
    println!(
        "mode: {}   dag ops: {ops}   samples/bench: {samples}",
        if smoke { "smoke" } else { "full" }
    );
    println!();

    let mut comparisons = Vec::new();
    let mut ok = true;

    // Headline: schedule() on each application's 100-op DAG, width 8 —
    // the committed baseline's >= 2x criterion reads these rows.
    for app in App::ALL {
        let dag = app_dag(app, ops);
        let fast = SkylineScheduler::new(config(8));
        let slow = ReferenceSkylineScheduler::new(config(8));
        compare(
            &format!("schedule/{}", app.name()),
            samples,
            || {
                black_box(fast.schedule(black_box(&dag)));
            },
            || {
                black_box(slow.schedule(black_box(&dag)));
            },
            &mut comparisons,
            &mut ok,
        );
    }

    // Optional build operators: stresses preemption + tie-collapse.
    {
        let dag = app_dag(App::Montage, ops);
        let optional = optional_ops(opt_n, 7);
        let fast = SkylineScheduler::new(config(8));
        let slow = ReferenceSkylineScheduler::new(config(8));
        compare(
            "schedule_with_optional/montage",
            samples,
            || {
                black_box(fast.schedule_with_optional(black_box(&dag), black_box(&optional)));
            },
            || {
                black_box(slow.schedule_with_optional(black_box(&dag), black_box(&optional)));
            },
            &mut comparisons,
            &mut ok,
        );
    }

    // Width ablation, including the once-panicking width 1.
    {
        let dag = app_dag(App::Montage, ops);
        for width in [1usize, 8, 24] {
            let fast = SkylineScheduler::new(config(width));
            let slow = ReferenceSkylineScheduler::new(config(width));
            compare(
                &format!("width/{width}"),
                samples,
                || {
                    black_box(fast.schedule(black_box(&dag)));
                },
                || {
                    black_box(slow.schedule(black_box(&dag)));
                },
                &mut comparisons,
                &mut ok,
            );
        }
    }

    if !ok {
        eprintln!("error: one or more benchmarks failed");
        std::process::exit(1);
    }

    let json = render_json(if smoke { "smoke" } else { "full" }, ops, &comparisons);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    }
    println!();
    let headline: Vec<f64> = comparisons
        .iter()
        .filter(|c| c.name.starts_with("schedule/"))
        .map(Comparison::speedup)
        .collect();
    let min_headline = headline.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "headline schedule() speedups: min {min_headline:.2}x across {} apps",
        headline.len()
    );
    println!("wrote {out_path}");
}
