//! Exploration: heterogeneous VM pools (the paper's §7 future work).
//!
//! Schedules each application over (a) the paper's homogeneous pool
//! (standard VMs only) and (b) a mixed pool with eco (0.5×, $0.04/q)
//! and fast (2×, $0.25/q) types. Prints the extremes of the two Pareto
//! fronts: a mixed pool stretches the front at *both* ends — faster
//! fastest schedules and cheaper cheapest schedules.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_common::{Money, SimDuration, SimRng};
use flowtune_core::tablefmt::render_table;
use flowtune_dataflow::App;
use flowtune_sched::{HeterogeneousScheduler, VmType};

fn main() {
    let _obs = flowtune_bench::obs_guard();
    flowtune_bench::banner(
        "Exploration: heterogeneous pools",
        "skyline scheduling over mixed VM types (§7 future work)",
    );
    let q = SimDuration::from_secs(60);
    let homo = HeterogeneousScheduler::new(vec![VmType::standard()]);
    let mixed = HeterogeneousScheduler::new(vec![
        VmType::new("eco", 0.5, Money::from_dollars(0.04)),
        VmType::standard(),
        VmType::new("fast", 2.0, Money::from_dollars(0.25)),
    ]);
    let mut rows = vec![vec![
        "app".to_string(),
        "pool".to_string(),
        "fastest (quanta)".to_string(),
        "fastest cost ($)".to_string(),
        "cheapest ($)".to_string(),
        "cheapest time (quanta)".to_string(),
    ]];
    let smoke = flowtune_bench::smoke();
    let apps: &[App] = if smoke { &App::ALL[..1] } else { &App::ALL };
    for app in apps {
        let dag = app.generate(
            if smoke { 30 } else { 100 },
            &[],
            &mut SimRng::seed_from_u64(17),
        );
        for (label, scheduler) in [("standard only", &homo), ("eco+std+fast", &mixed)] {
            let front = scheduler.schedule(&dag);
            let fastest = front.first().expect("non-empty front");
            let cheapest = front.last().expect("non-empty front");
            rows.push(vec![
                app.name().to_string(),
                label.to_string(),
                format!("{:.2}", fastest.makespan().as_quanta(q)),
                format!("{:.2}", fastest.money(q).as_dollars()),
                format!("{:.2}", cheapest.money(q).as_dollars()),
                format!("{:.2}", cheapest.makespan().as_quanta(q)),
            ]);
        }
    }
    print!("{}", render_table(&rows));
    println!();
    println!("a mixed pool stretches the Pareto front at both ends: fast VMs shorten the critical path, eco VMs cheapen the serial end");
}
