//! Figure 8: number of build-index operators scheduled per skyline
//! schedule — LP interleaving vs online interleaving, Montage.
//!
//! Prints, for each schedule on the two skylines, its monetary cost (in
//! quanta) and how many build operators got placed. The LP algorithm
//! sees the fragmentation up front and packs significantly more.

use flowtune_common::{BuildOpId, ExperimentParams, IndexId, SimDuration, SimRng};
use flowtune_core::experiment::ExperimentSetup;
use flowtune_core::tablefmt::render_table;
use flowtune_dataflow::App;
use flowtune_interleave::{BuildOp, LpInterleaver, OnlineInterleaver};
use flowtune_sched::{BuildRef, SkylineScheduler};

fn main() {
    let _obs = flowtune_bench::obs_guard();
    flowtune_bench::banner(
        "Figure 8",
        "indexes scheduled for the Montage dataflow (§6.4)",
    );
    let setup = ExperimentSetup::new(ExperimentParams::default());
    let quantum = setup.params.cloud.quantum;
    let smoke = flowtune_bench::smoke();
    let mut rng = SimRng::seed_from_u64(8);
    let dag = App::Montage.generate(if smoke { 30 } else { 100 }, &[], &mut rng);

    // A pool of pending build ops: 20 indexes x 4 partitions, 5-30 s
    // (a quarter of that under --smoke).
    let pending: Vec<BuildOp> = (0..if smoke { 20u32 } else { 80 })
        .map(|i| BuildOp {
            id: BuildOpId(i),
            build: BuildRef {
                index: IndexId(i / 4),
                part: i % 4,
            },
            duration: SimDuration::from_secs(5 + (i as u64 * 13) % 26),
            gain: 1.0 + (i as f64 * 0.29) % 4.0,
        })
        .collect();

    let scheduler = SkylineScheduler::new(setup.scheduler_config(12));

    // LP interleaving over the plain skyline.
    let mut lp_skyline = scheduler.schedule(&dag);
    let lp = LpInterleaver::new(quantum);
    let lp_placed = lp.interleave_skyline(&mut lp_skyline, &pending);

    // Online interleaving.
    let online = OnlineInterleaver::new(scheduler.clone());
    let online_skyline = online.schedule(&dag, &pending);

    let mut rows = vec![vec![
        "algorithm".to_string(),
        "money (quanta)".to_string(),
        "#build ops scheduled".to_string(),
    ]];
    for (s, placed) in lp_skyline.iter().zip(&lp_placed) {
        rows.push(vec![
            "LP".to_string(),
            format!("{}", s.leased_quanta(quantum)),
            format!("{}", placed.len()),
        ]);
    }
    for s in &online_skyline {
        rows.push(vec![
            "Online".to_string(),
            format!("{}", s.leased_quanta(quantum)),
            format!("{}", s.build_assignments().count()),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();
    let lp_max = lp_placed.iter().map(Vec::len).max().unwrap_or(0);
    let online_max = online_skyline
        .iter()
        .map(|s| s.build_assignments().count())
        .max()
        .unwrap_or(0);
    println!("max build ops placed: LP = {lp_max}, online = {online_max}");
    println!("paper finding: LP schedules significantly more build operators because fragmentation is known before it runs");
}
