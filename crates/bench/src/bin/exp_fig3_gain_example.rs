//! Figure 3 + Table 2: the worked gain example of §4.
//!
//! Two indexes A (100 MB) and B (500 MB); four dataflows issued at time
//! points 10, 30, 50, 100 with the Table 2 per-dataflow gains; α = 0.5,
//! D = 60 — exactly the paper's setting. The paper does not state the
//! example's build times or storage price, so those are calibrated to
//! its described shape (B beneficial at t ≈ 30, deleted at t ≈ 125):
//! build time/cost 1.5 quanta for B and 0.5 for A, storage at
//! $7·10⁻⁶/MB/quantum over a W = 150-quanta window.
//!
//! The index lifecycle is emulated: while an index is unbuilt its
//! build time/cost weigh on the gain; once the gain turns positive the
//! index is built (build terms vanish); once it turns non-positive the
//! index is deleted (build terms return).

use flowtune_common::{Money, Quanta, SimDuration, TunerConfig};
use flowtune_core::tablefmt::render_table;
use flowtune_tuner::gain::GainContribution;
use flowtune_tuner::GainModel;

/// Table 2: (issue time, gtd, gmd) per index.
const DATAFLOWS_A: [(f64, f64, f64); 2] = [(50.0, 2.0, 8.0), (100.0, 3.0, 5.0)];
const DATAFLOWS_B: [(f64, f64, f64); 3] = [(10.0, 1.0, 3.0), (30.0, 2.0, 5.0), (50.0, 3.0, 8.0)];

struct IndexTrack {
    name: &'static str,
    dataflows: &'static [(f64, f64, f64)],
    bytes: u64,
    build_quanta: Quanta,
    built: bool,
    became_beneficial: Option<f64>,
    deleted_at: Option<f64>,
}

impl IndexTrack {
    fn gain_at(&self, model: &GainModel, t: f64) -> f64 {
        let contributions: Vec<GainContribution> = self
            .dataflows
            .iter()
            .filter(|(issue, _, _)| *issue <= t)
            .map(|(issue, gtd, gmd)| GainContribution {
                quanta_ago: Quanta::new(t - issue),
                gtd: *gtd,
                gmd: *gmd,
            })
            .collect();
        let build = if self.built {
            Quanta::ZERO
        } else {
            self.build_quanta
        };
        model.evaluate(&contributions, build, self.bytes).g
    }

    fn step(&mut self, g: f64, t: f64) {
        if g > 0.0 && !self.built {
            self.built = true;
            self.became_beneficial.get_or_insert(t);
        } else if g <= 0.0 && self.built {
            self.built = false;
            if self.became_beneficial.is_some() {
                self.deleted_at.get_or_insert(t);
            }
        }
    }
}

fn main() {
    let _obs = flowtune_bench::obs_guard();
    flowtune_bench::banner(
        "Figure 3 / Table 2",
        "gain over time of indexes A and B (§4)",
    );
    let model = GainModel::new(
        TunerConfig {
            alpha: 0.5,
            fading_d: 60.0,
            window_w: 150.0,
            storage_window_w: 150.0,
        },
        SimDuration::from_secs(60),
        Money::from_dollars(0.1),
        Money::from_dollars(7e-6),
    );
    const MB: u64 = 1024 * 1024;
    let mut a = IndexTrack {
        name: "A",
        dataflows: &DATAFLOWS_A,
        bytes: 100 * MB,
        build_quanta: Quanta::new(0.5),
        built: false,
        became_beneficial: None,
        deleted_at: None,
    };
    let mut b = IndexTrack {
        name: "B",
        dataflows: &DATAFLOWS_B,
        bytes: 500 * MB,
        build_quanta: Quanta::new(1.5),
        built: false,
        became_beneficial: None,
        deleted_at: None,
    };

    let mut rows = vec![vec![
        "t".to_string(),
        "g(A,t)".to_string(),
        "g(B,t)".to_string(),
        "A built".to_string(),
        "B built".to_string(),
    ]];
    // Full resolution for the figure; a coarse sweep under --smoke.
    let step = if flowtune_bench::smoke() { 25 } else { 5 };
    for t in (0..=200).step_by(step) {
        let t = t as f64;
        let ga = a.gain_at(&model, t);
        let gb = b.gain_at(&model, t);
        a.step(ga, t);
        b.step(gb, t);
        rows.push(vec![
            format!("{t:.0}"),
            format!("{ga:+.4}"),
            format!("{gb:+.4}"),
            a.built.to_string(),
            b.built.to_string(),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();
    for idx in [&a, &b] {
        println!(
            "index {}: beneficial at t = {}, deleted at t = {}",
            idx.name,
            idx.became_beneficial
                .map_or("never".into(), |t| format!("{t:.0}")),
            idx.deleted_at
                .map_or("never (within 200)".into(), |t| format!("{t:.0}")),
        );
    }
    println!("paper: B becomes beneficial at t = 30 and is deleted around t = 125");
}
