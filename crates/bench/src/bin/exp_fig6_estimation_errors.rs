//! Figure 6: sensitivity of the offline (skyline) scheduler to
//! estimation errors.
//!
//! Schedules each dataflow from *estimated* operator runtimes and data
//! sizes, then executes with actuals perturbed by ±e %. Reports the
//! relative difference between actual and estimated execution time,
//! monetary cost and fragmentation, averaged over dataflows of all
//! three applications.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::collections::BTreeMap;

use flowtune_cloud::{perturb_dag, IndexAvailability, Simulator};
use flowtune_common::{ExperimentParams, OnlineStats, SimRng};
use flowtune_core::experiment::ExperimentSetup;
use flowtune_core::tablefmt::render_table;
use flowtune_sched::{total_fragmentation, SkylineScheduler};

fn main() {
    let _obs = flowtune_bench::obs_guard();
    flowtune_bench::banner(
        "Figure 6",
        "offline scheduler robustness to estimation errors",
    );
    let mut setup = ExperimentSetup::new(ExperimentParams::default());
    let scheduler = SkylineScheduler::new(setup.scheduler_config(8));
    let quantum = setup.params.cloud.quantum;
    let vm_price = setup.params.cloud.vm_price_per_quantum;

    let mut rows = vec![vec![
        "error %".to_string(),
        "Δtime % (cpu err)".to_string(),
        "Δmoney % (cpu err)".to_string(),
        "Δfrag % (cpu err)".to_string(),
        "Δtime % (data err)".to_string(),
        "Δmoney % (data err)".to_string(),
        "Δfrag % (data err)".to_string(),
    ]];
    let dags = setup.one_dag_per_app(42);
    let smoke = flowtune_bench::smoke();
    let grid: &[u32] = if smoke {
        &[0, 20, 80]
    } else {
        &[0, 5, 10, 20, 40, 60, 80, 100]
    };
    let seeds = if smoke { 2u64 } else { 5 };
    for &error_pct in grid {
        let e = (error_pct as f64 / 100.0).min(0.999);
        let mut cells = vec![format!("{error_pct}")];
        for (time_err, data_err) in [(e, 0.0), (0.0, e)] {
            let mut dt = OnlineStats::new();
            let mut dm = OnlineStats::new();
            let mut dfrag = OnlineStats::new();
            for (_, dag) in &dags {
                let schedule = scheduler.schedule(dag).remove(0);
                let est_time = schedule.makespan().as_secs_f64();
                let est_money = schedule.money(quantum, vm_price).as_dollars();
                let est_frag = total_fragmentation(&schedule, quantum)
                    .as_secs_f64()
                    .max(1.0);
                for seed in 0..seeds {
                    let mut rng = SimRng::seed_from_u64(seed * 77 + error_pct as u64);
                    let actual = perturb_dag(dag, time_err, data_err, &mut rng);
                    let sim = Simulator::new(setup.params.cloud.clone(), &setup.filedb);
                    let exec = sim
                        .execute(
                            &actual,
                            &schedule,
                            &[],
                            &IndexAvailability::new(),
                            &BTreeMap::new(),
                        )
                        .expect("simulation failed");
                    dt.push((exec.makespan.as_secs_f64() - est_time).abs() / est_time * 100.0);
                    let money = exec.compute_cost.as_dollars();
                    dm.push((money - est_money).abs() / est_money * 100.0);
                    dfrag.push(
                        (exec.fragmentation.as_secs_f64() - est_frag).abs() / est_frag * 100.0,
                    );
                }
            }
            cells.push(format!("{:.1}", dt.mean()));
            cells.push(format!("{:.1}", dm.mean()));
            cells.push(format!("{:.1}", dfrag.mean()));
        }
        rows.push(cells);
    }
    print!("{}", render_table(&rows));
    println!();
    println!("paper finding: estimates are robust up to ~20 % error; very large errors degrade the offline plan");
}
