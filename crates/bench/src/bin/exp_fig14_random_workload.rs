//! Figure 14: the random dataflow workload (§6.5.2).
//!
//! Same four policies as Figure 12 but with a uniformly random
//! application per arrival. Cost per dataflow improves less than in the
//! phased experiment: with a random mix, indexes essentially never stop
//! being useful, so they are stored for much longer.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_core::tablefmt::render_table;
use flowtune_core::{IndexPolicy, QaasService, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn main() {
    let _obs = flowtune_bench::obs_guard();
    let quanta = flowtune_bench::horizon_quanta();
    flowtune_bench::banner(
        "Figure 14",
        "random workload: dataflows finished and cost per dataflow",
    );
    let smoke_tag = if flowtune_bench::smoke() {
        " (smoke)"
    } else {
        ""
    };
    println!("horizon: {quanta} quanta{smoke_tag} (paper: 720)");
    println!();
    let policies = [
        IndexPolicy::NoIndex,
        IndexPolicy::Random,
        IndexPolicy::Gain { delete: false },
        IndexPolicy::Gain { delete: true },
    ];
    let mut rows = vec![vec![
        "policy".to_string(),
        "#dataflows finished".to_string(),
        "cost / dataflow ($)".to_string(),
        "avg time / dataflow (quanta)".to_string(),
        "indexes deleted".to_string(),
    ]];
    for policy in policies {
        let mut config = ServiceConfig::default();
        config.params.total_quanta = quanta;
        config.policy = policy;
        config.workload = WorkloadKind::Random;
        let report = QaasService::new(config).run().expect("service run failed");
        rows.push(vec![
            policy.label().to_string(),
            report.dataflows_finished.to_string(),
            format!("{:.3}", report.cost_per_dataflow()),
            format!("{:.2}", report.avg_makespan_quanta()),
            report.indexes_deleted.to_string(),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();
    println!("paper finding: Gain still finishes the most dataflows; the cost gap vs the phase workload narrows because random mixes keep indexes useful (few deletions)");
}
