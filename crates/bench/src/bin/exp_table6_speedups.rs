//! Table 6: measured index speedups on `lineitem.orderkey`.
//!
//! Runs the paper's four query classes (order-by, large range select,
//! small range select, point lookup) over the synthetic `lineitem` with
//! and without a B+Tree index — real executions on real data
//! structures, not model numbers. Absolute times differ from the
//! paper's DBMS/hardware; the ordering and magnitudes reproduce.
//!
//! Set `FLOWTUNE_TABLE6_ROWS` to scale the table (default 2 M rows;
//! the paper uses ~12 M).

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_core::tablefmt::render_table;
use flowtune_query::measure_table6;

/// Paper's Table 6: (query, no-index s, index s, speedup).
const PAPER: [(&str, f64, f64, f64); 4] = [
    ("Order by", 44.730, 6.010, 7.44),
    ("Select range (large)", 5.103, 0.054, 94.44),
    ("Select range (small)", 4.921, 0.016, 307.50),
    ("Lookup", 4.393, 0.007, 627.14),
];

fn main() {
    let _obs = flowtune_bench::obs_guard();
    let smoke = flowtune_bench::smoke();
    let rows_n = if smoke {
        200_000
    } else {
        flowtune_bench::table6_rows()
    };
    flowtune_bench::banner("Table 6", "index speedup (measured on real B+Tree)");
    println!("table rows: {rows_n} (paper: ~12 M at SF 2)");
    println!();
    let measured = if smoke {
        measure_table6(rows_n, 2, 1)
    } else {
        measure_table6(rows_n, 6, 3)
    };
    let mut rows = vec![vec![
        "query".to_string(),
        "no-index".to_string(),
        "index".to_string(),
        "speedup".to_string(),
        "paper speedup".to_string(),
    ]];
    for m in &measured {
        let paper = PAPER
            .iter()
            .find(|(q, ..)| *q == m.query)
            .expect("query class present in paper table");
        rows.push(vec![
            m.query.to_string(),
            format!("{:.3} ms", m.no_index.as_secs_f64() * 1e3),
            format!("{:.3} ms", m.with_index.as_secs_f64() * 1e3),
            format!("{:.2}x", m.speedup()),
            format!("{:.2}x", paper.3),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();
    // The qualitative shape: lookup >= small range >= large range, and
    // every indexed path wins.
    let speedups: Vec<f64> = measured.iter().map(|m| m.speedup()).collect();
    println!(
        "ordering check (order-by < large < small <= lookup): {}",
        speedups[0] < speedups[1] && speedups[1] < speedups[2]
    );
}
