//! Figure 7: skyline (offline) scheduler vs online load-balance
//! scheduler.
//!
//! Left sweep: operator runtimes scaled ×1..10 with tiny data (×0.01) —
//! CPU-intensive dataflows, where load balancing does fine (slightly
//! faster, slightly more expensive). Right sweep: data sizes scaled
//! ×1..100 — data-intensive dataflows, where ignoring data placement
//! costs the online scheduler up to ~2× time and ~4× money.
//!
//! Uses CyberShake, as the paper does ("results are similar for the
//! other dataflows").

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_common::{ExperimentParams, SimRng};
use flowtune_core::experiment::ExperimentSetup;
use flowtune_core::tablefmt::render_table;
use flowtune_dataflow::{App, Dag, Edge};
use flowtune_sched::{OnlineLoadBalanceScheduler, SkylineScheduler};

// flowtune-allow(newtype-discipline): time_factor is a dimensionless scale factor, not a time
fn scale_dag(dag: &Dag, time_factor: f64, data_factor: f64) -> Dag {
    let ops = dag
        .ops()
        .iter()
        .map(|op| {
            let mut o = op.clone();
            o.runtime = op.runtime.mul_f64(time_factor);
            o
        })
        .collect();
    let edges = dag
        .edges()
        .iter()
        .map(|e| Edge {
            from: e.from,
            to: e.to,
            bytes: (e.bytes as f64 * data_factor).round() as u64,
        })
        .collect();
    Dag::new(ops, edges).expect("scaling preserves structure")
}

fn main() {
    let _obs = flowtune_bench::obs_guard();
    flowtune_bench::banner(
        "Figure 7",
        "online load-balance vs offline skyline scheduler",
    );
    let setup = ExperimentSetup::new(ExperimentParams::default());
    let quantum = setup.params.cloud.quantum;
    let vm_price = setup.params.cloud.vm_price_per_quantum;
    let offline = SkylineScheduler::new(setup.scheduler_config(8));
    let online = OnlineLoadBalanceScheduler::new(
        setup.params.cloud.max_containers,
        setup.params.cloud.network_bandwidth,
    );
    let mut rng = SimRng::seed_from_u64(7);
    let smoke = flowtune_bench::smoke();
    let base = App::Cybershake.generate(if smoke { 30 } else { 100 }, &[], &mut rng);

    let compare = |dag: &Dag| -> (f64, f64) {
        let off = offline.schedule(dag).remove(0);
        let on = online.schedule(dag);
        let dt = (on.makespan().as_secs_f64() - off.makespan().as_secs_f64())
            / off.makespan().as_secs_f64()
            * 100.0;
        let off_m = off.money(quantum, vm_price).as_dollars();
        let on_m = on.money(quantum, vm_price).as_dollars();
        let dm = (on_m - off_m) / off_m * 100.0;
        (dt, dm)
    };

    println!("CPU-intensive sweep (runtime x, data x0.01):");
    let mut rows = vec![vec![
        "cpu scale".to_string(),
        "Δtime %".to_string(),
        "Δmoney %".to_string(),
    ]];
    let cpu_scales: &[f64] = if smoke {
        &[1.0, 4.0, 10.0]
    } else {
        &[1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
    };
    for &scale in cpu_scales {
        let dag = scale_dag(&base, scale, 0.01);
        let (dt, dm) = compare(&dag);
        rows.push(vec![
            format!("{scale:.0}x"),
            format!("{dt:+.1}"),
            format!("{dm:+.1}"),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();

    println!("data-intensive sweep (data x, runtime x1):");
    let mut rows = vec![vec![
        "data scale".to_string(),
        "Δtime %".to_string(),
        "Δmoney %".to_string(),
    ]];
    let data_scales: &[f64] = if smoke {
        &[1.0, 10.0, 100.0]
    } else {
        &[1.0, 5.0, 10.0, 25.0, 50.0, 100.0]
    };
    for &scale in data_scales {
        let dag = scale_dag(&base, 1.0, scale);
        let (dt, dm) = compare(&dag);
        rows.push(vec![
            format!("{scale:.0}x"),
            format!("{dt:+.1}"),
            format!("{dm:+.1}"),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();
    println!("paper finding: online is competitive on CPU-bound dataflows but up to ~2x slower and ~4x more expensive on data-intensive ones");
}
