//! Fault matrix: fault rate × recovery policy.
//!
//! Sweeps the master fault rate against the three recovery policies
//! (no-retry, retry, retry-gain-penalty) and reports dataflows
//! finished/failed, cost per dataflow, retries, wasted money, and the
//! recovery-latency tail. Demonstrates the PR-2 acceptance criterion:
//! under faults, retry with gain penalty finishes strictly more
//! dataflows at a lower cost per dataflow than giving up.
//!
//! A second sweep drives the page-level fault kinds (crash-during-build
//! and torn-page-write) in isolation and reports the crash-consistency
//! pipeline: bad pages detected by the post-commit verification scan,
//! partitions invalidated, rebuilds completed, and the compute wasted
//! on discarded builds.
//!
//! `--smoke` shrinks the horizon and the rate grids for CI; set
//! `FLOWTUNE_QUANTA` to override the full-run horizon.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_cloud::FaultConfig;
use flowtune_core::tablefmt::render_table;
use flowtune_core::{QaasService, RecoveryConfig, RecoveryPolicyKind, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn main() {
    let _obs = flowtune_bench::obs_guard();
    let smoke = flowtune_bench::smoke();
    let quanta = if smoke {
        40
    } else {
        flowtune_bench::horizon_quanta()
    };
    let rates: &[f64] = if smoke {
        &[0.0, 0.3]
    } else {
        &[0.0, 0.1, 0.2, 0.3, 0.5]
    };
    flowtune_bench::banner(
        "Fault matrix",
        "robustness extension: fault rate x recovery policy",
    );
    println!(
        "horizon: {quanta} quanta{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!();

    let mut rows = vec![vec![
        "fault rate".to_string(),
        "policy".to_string(),
        "finished".to_string(),
        "failed".to_string(),
        "cost/df ($)".to_string(),
        "retries".to_string(),
        "wasted ($)".to_string(),
        "recovery p95 (q)".to_string(),
    ]];
    for &rate in rates {
        for policy in RecoveryPolicyKind::ALL {
            let mut config = ServiceConfig {
                workload: WorkloadKind::paper_phases(),
                faults: FaultConfig::with_rate(rate, FaultConfig::default().seed),
                recovery: RecoveryConfig::with_policy(policy),
                ..Default::default()
            };
            config.params.total_quanta = quanta;
            let report = QaasService::new(config).run().expect("service run failed");
            rows.push(vec![
                format!("{rate:.1}"),
                policy.label().to_string(),
                report.dataflows_finished.to_string(),
                report.dataflows_failed.to_string(),
                format!("{:.3}", report.cost_per_dataflow()),
                report.retries.to_string(),
                format!("{:.3}", report.wasted_cost.as_dollars()),
                format!("{:.2}", report.recovery_latency_percentile(95.0)),
            ]);
        }
    }
    print!("{}", render_table(&rows));
    println!();

    // --- Page-level faults: crash-during-build + torn-page-write. ---
    // Only the two page kinds fire (all other shares zeroed) so the
    // table isolates the detect -> invalidate -> rebuild pipeline.
    let page_rates: &[f64] = if smoke { &[0.3] } else { &[0.1, 0.2, 0.4] };
    println!("page-level faults (crash_build_share 0.5, torn_write_share 0.5, policy retry)");
    println!();
    let mut rows = vec![vec![
        "fault rate".to_string(),
        "crashed".to_string(),
        "verify pages".to_string(),
        "bad pages".to_string(),
        "invalidated".to_string(),
        "rebuilt".to_string(),
        "wasted (q)".to_string(),
        "wasted ($)".to_string(),
    ]];
    for &rate in page_rates {
        let mut faults = FaultConfig::with_rate(rate, FaultConfig::default().seed);
        faults.revocation_share = 0.0;
        faults.storage_share = 0.0;
        faults.straggler_share = 0.0;
        faults.build_failure_share = 0.0;
        faults.crash_build_share = 0.5;
        faults.torn_write_share = 0.5;
        let mut config = ServiceConfig {
            workload: WorkloadKind::paper_phases(),
            faults,
            recovery: RecoveryConfig::with_policy(RecoveryPolicyKind::Retry),
            ..Default::default()
        };
        config.params.total_quanta = quanta;
        let report = QaasService::new(config).run().expect("service run failed");
        rows.push(vec![
            format!("{rate:.1}"),
            report.builds_crashed.to_string(),
            report.verify_pages_scanned.to_string(),
            report.bad_pages_detected.to_string(),
            report.partitions_invalidated.to_string(),
            report.rebuilds_completed.to_string(),
            format!("{:.3}", report.wasted_compute_quanta.get()),
            format!("{:.3}", report.wasted_cost.as_dollars()),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();
    println!("finding: at rate 0 all policies coincide with the fault-free goldens; under faults, retry policies convert wasted quanta into finished dataflows and the gain penalty steers the tuner away from partitions that keep failing to build; page-level corruption is always caught by the post-commit scan — detected partitions are invalidated before any probe and rebuilt under throttle, with the discarded build time accounted as waste");
}
