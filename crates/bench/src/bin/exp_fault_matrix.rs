//! Fault matrix: fault rate × recovery policy.
//!
//! Sweeps the master fault rate against the three recovery policies
//! (no-retry, retry, retry-gain-penalty) and reports dataflows
//! finished/failed, cost per dataflow, retries, wasted money, and the
//! recovery-latency tail. Demonstrates the PR-2 acceptance criterion:
//! under faults, retry with gain penalty finishes strictly more
//! dataflows at a lower cost per dataflow than giving up.
//!
//! `--smoke` shrinks the horizon and the rate grid for CI; set
//! `FLOWTUNE_QUANTA` to override the full-run horizon.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_cloud::FaultConfig;
use flowtune_core::tablefmt::render_table;
use flowtune_core::{QaasService, RecoveryConfig, RecoveryPolicyKind, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn main() {
    let _obs = flowtune_bench::obs_guard();
    let smoke = flowtune_bench::smoke();
    let quanta = if smoke {
        40
    } else {
        flowtune_bench::horizon_quanta()
    };
    let rates: &[f64] = if smoke {
        &[0.0, 0.3]
    } else {
        &[0.0, 0.1, 0.2, 0.3, 0.5]
    };
    flowtune_bench::banner(
        "Fault matrix",
        "robustness extension: fault rate x recovery policy",
    );
    println!(
        "horizon: {quanta} quanta{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!();

    let mut rows = vec![vec![
        "fault rate".to_string(),
        "policy".to_string(),
        "finished".to_string(),
        "failed".to_string(),
        "cost/df ($)".to_string(),
        "retries".to_string(),
        "wasted ($)".to_string(),
        "recovery p95 (q)".to_string(),
    ]];
    for &rate in rates {
        for policy in RecoveryPolicyKind::ALL {
            let mut config = ServiceConfig {
                workload: WorkloadKind::paper_phases(),
                faults: FaultConfig::with_rate(rate, FaultConfig::default().seed),
                recovery: RecoveryConfig::with_policy(policy),
                ..Default::default()
            };
            config.params.total_quanta = quanta;
            let report = QaasService::new(config).run().expect("service run failed");
            rows.push(vec![
                format!("{rate:.1}"),
                policy.label().to_string(),
                report.dataflows_finished.to_string(),
                report.dataflows_failed.to_string(),
                format!("{:.3}", report.cost_per_dataflow()),
                report.retries.to_string(),
                format!("{:.3}", report.wasted_cost.as_dollars()),
                format!("{:.2}", report.recovery_latency_percentile(95.0)),
            ]);
        }
    }
    print!("{}", render_table(&rows));
    println!();
    println!("finding: at rate 0 all policies coincide with the fault-free goldens; under faults, retry policies convert wasted quanta into finished dataflows and the gain penalty steers the tuner away from partitions that keep failing to build");
}
