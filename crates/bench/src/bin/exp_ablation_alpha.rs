//! Ablation: the time–money trade-off parameter α (Eq. 1–3).
//!
//! The paper fixes α = 0.5 (Table 3); this sweep shows what the knob
//! does: small α values weight the money gain (storage-heavy indexes
//! are rejected, fewer builds), large values weight the time gain
//! (build more, store more). The achieved global objective (Eq. 1,
//! evaluated against a No-Index baseline of the same seed) is reported
//! for each α.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_core::tablefmt::render_table;
use flowtune_core::{paired_objective, IndexPolicy, QaasService, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn main() {
    let _obs = flowtune_bench::obs_guard();
    let quanta = flowtune_bench::horizon_quanta();
    flowtune_bench::banner(
        "Ablation: α sweep",
        "the Eq. 1 trade-off knob (paper fixes α = 0.5)",
    );
    let smoke_tag = if flowtune_bench::smoke() {
        " (smoke)"
    } else {
        ""
    };
    println!("horizon: {quanta} quanta{smoke_tag}, phase workload");
    println!();

    let run = |policy: IndexPolicy, alpha: f64| {
        let mut config = ServiceConfig::default();
        config.params.total_quanta = quanta;
        config.params.tuner.alpha = alpha;
        config.policy = policy;
        config.workload = WorkloadKind::paper_phases();
        QaasService::new(config).run().expect("service run failed")
    };
    let baseline = run(IndexPolicy::NoIndex, 0.5);

    let mut rows = vec![vec![
        "alpha".to_string(),
        "#dataflows finished".to_string(),
        "cost / dataflow ($)".to_string(),
        "avg time (quanta)".to_string(),
        "builds".to_string(),
        "storage cost ($)".to_string(),
        "objective vs no-index ($)".to_string(),
    ]];
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let r = run(IndexPolicy::Gain { delete: true }, alpha);
        let vm = flowtune_common::Money::from_dollars(0.1);
        rows.push(vec![
            format!("{alpha:.2}"),
            r.dataflows_finished.to_string(),
            format!("{:.3}", r.cost_per_dataflow()),
            format!("{:.2}", r.avg_makespan_quanta()),
            r.builds_completed.to_string(),
            format!("{:.2}", r.index_storage_cost.as_dollars()),
            format!("{:+.2}", paired_objective(&baseline, &r, alpha, vm)),
        ]);
    }
    print!("{}", render_table(&rows));
    println!();
    println!(
        "no-index baseline: {} finished, {:.2} quanta avg",
        baseline.dataflows_finished,
        baseline.avg_makespan_quanta()
    );
}
