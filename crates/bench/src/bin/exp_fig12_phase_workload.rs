//! Figure 12 + Table 7: the phased dataflow workload (§6.5.1).
//!
//! Runs the QaaS service for 720 quanta under the paper's phase
//! schedule (CyberShake → LIGO → Montage → CyberShake) with all four
//! index-management policies, and prints:
//!
//! * dataflows finished and average cost per dataflow (Fig. 12);
//! * operators executed and killed (Table 7).
//!
//! Set `FLOWTUNE_QUANTA` for a shorter smoke run.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_core::tablefmt::render_table;
use flowtune_core::{IndexPolicy, QaasService, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn main() {
    let _obs = flowtune_bench::obs_guard();
    let quanta = flowtune_bench::horizon_quanta();
    flowtune_bench::banner(
        "Figure 12 / Table 7",
        "phase workload: dataflows finished, cost per dataflow, killed ops",
    );
    let smoke_tag = if flowtune_bench::smoke() {
        " (smoke)"
    } else {
        ""
    };
    println!("horizon: {quanta} quanta{smoke_tag} (paper: 720)");
    println!();

    let policies = [
        IndexPolicy::NoIndex,
        IndexPolicy::Random,
        IndexPolicy::Gain { delete: false },
        IndexPolicy::Gain { delete: true },
    ];
    let mut fig12 = vec![vec![
        "policy".to_string(),
        "#dataflows finished".to_string(),
        "cost / dataflow ($)".to_string(),
        "avg time / dataflow (quanta)".to_string(),
    ]];
    let mut table7 = vec![vec![
        "policy".to_string(),
        "total ops".to_string(),
        "killed ops".to_string(),
        "killed %".to_string(),
    ]];
    for policy in policies {
        let mut config = ServiceConfig::default();
        config.params.total_quanta = quanta;
        config.policy = policy;
        config.workload = WorkloadKind::paper_phases();
        let report = QaasService::new(config).run().expect("service run failed");
        fig12.push(vec![
            policy.label().to_string(),
            report.dataflows_finished.to_string(),
            format!("{:.3}", report.cost_per_dataflow()),
            format!("{:.2}", report.avg_makespan_quanta()),
        ]);
        table7.push(vec![
            policy.label().to_string(),
            report.total_ops().to_string(),
            (report.builds_killed).to_string(),
            format!("{:.1}", report.killed_percentage()),
        ]);
    }
    println!("Figure 12:");
    print!("{}", render_table(&fig12));
    println!();
    println!(
        "Table 7 (paper: No Index 22402/0, Random 25649/1143 = 4.4 %, Gain 49549/1418 = 2.8 %):"
    );
    print!("{}", render_table(&table7));
    println!();
    println!("paper finding: Gain roughly doubles the dataflows finished vs No Index and cuts cost/dataflow; Random inflates cost via untracked storage");
}
