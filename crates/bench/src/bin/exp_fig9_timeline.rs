//! Figure 9: a Montage execution timeline with interleaved build
//! operators, plus the fragmentation reduction (paper: 7.14 quanta idle
//! before interleaving, 1.6 after).
//!
//! Prints an ASCII timeline: one row per container, `#` for dataflow
//! operators, `+` for build operators, `.` for idle leased time.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_common::{BuildOpId, ExperimentParams, IndexId, SimDuration, SimRng, SimTime};
use flowtune_core::experiment::ExperimentSetup;
use flowtune_dataflow::App;
use flowtune_interleave::{BuildOp, LpInterleaver};
use flowtune_sched::{total_fragmentation, BuildRef, Schedule, SkylineScheduler};

fn render_timeline(schedule: &Schedule, quantum: SimDuration) -> String {
    let mut out = String::new();
    let end = schedule
        .assignments()
        .iter()
        .map(|a| a.end)
        .max()
        .unwrap_or(SimTime::ZERO)
        .quantum_ceil(quantum);
    let cols = 96usize;
    let total = (end - SimTime::ZERO).as_millis().max(1);
    for c in schedule.containers() {
        let mut row = vec![' '; cols];
        let (ls, le) = schedule.leased_span(c, quantum).expect("container leased");
        let pos = |t: SimTime| {
            (((t - SimTime::ZERO).as_millis() as f64 / total as f64) * cols as f64) as usize
        };
        for cell in row.iter_mut().take(pos(le).min(cols)).skip(pos(ls)) {
            *cell = '.';
        }
        for a in schedule.on_container(c) {
            let (s, e) = (pos(a.start), pos(a.end).min(cols));
            let ch = if a.is_optional() { '+' } else { '#' };
            for cell in row.iter_mut().take(e.max(s + 1).min(cols)).skip(s) {
                *cell = ch;
            }
        }
        out.push_str(&format!(
            "{:>4} |{}|\n",
            c.to_string(),
            row.iter().collect::<String>()
        ));
    }
    out
}

fn main() {
    let _obs = flowtune_bench::obs_guard();
    flowtune_bench::banner(
        "Figure 9",
        "Montage timeline with build-index operators (green = '+')",
    );
    let setup = ExperimentSetup::new(ExperimentParams::default());
    let quantum = setup.params.cloud.quantum;
    let smoke = flowtune_bench::smoke();
    let mut rng = SimRng::seed_from_u64(9);
    let dag = App::Montage.generate(if smoke { 30 } else { 100 }, &[], &mut rng);
    let scheduler = SkylineScheduler::new(setup.scheduler_config(8));
    let mut schedule = scheduler.schedule(&dag).remove(0);

    let before = total_fragmentation(&schedule, quantum);
    let pending: Vec<BuildOp> = (0..if smoke { 40u32 } else { 160 })
        .map(|i| BuildOp {
            id: BuildOpId(i),
            build: BuildRef {
                index: IndexId(i / 4),
                part: i % 4,
            },
            duration: SimDuration::from_secs(4 + (i as u64 * 11) % 22),
            gain: 1.0 + (i as f64 * 0.43) % 3.0,
        })
        .collect();
    let placed = LpInterleaver::new(quantum).interleave(&mut schedule, &pending);
    let after = total_fragmentation(&schedule, quantum);

    print!("{}", render_timeline(&schedule, quantum));
    println!();
    println!("legend: '#' dataflow op, '+' build op, '.' idle leased time");
    println!(
        "build ops placed: {}; fragmentation: {:.2} quanta -> {:.2} quanta (paper: 7.14 -> 1.6)",
        placed.len(),
        before.as_quanta(quantum),
        after.as_quanta(quantum)
    );
}
