//! # flowtune-bench
//!
//! Experiment harness: one `exp_*` binary per table/figure of the
//! paper's evaluation (§6) plus micro-benchmarks built on the in-repo
//! [`micro`] harness (no registry dependencies — DESIGN §7). Run them
//! with `cargo run --release -p flowtune-bench --bin exp_<name>` and
//! `cargo bench -p flowtune-bench`.
//!
//! Every binary prints the paper's reported values next to the measured
//! ones; `EXPERIMENTS.md` at the repository root records a full
//! comparison.
//!
//! Environment knobs:
//!
//! * `FLOWTUNE_QUANTA` — override the simulated horizon for the §6.5
//!   workload experiments (default 720, the paper's value). Useful for
//!   quick smoke runs.
//! * `FLOWTUNE_TABLE6_ROWS` — row count for the measured speedups of
//!   Table 6 (default 2,000,000).
//!
//! Every binary also honours `--trace-out <path>` / `--metrics-out
//! <path>` (see [`obs_guard`]): when either flag is present the run is
//! recorded through `flowtune-obs` and the trace (JSONL) / metrics
//! summary (JSON) are written on exit. The metrics summary is the
//! machine-readable seed for `BENCH_*.json`.

pub mod compare;
pub mod micro;
pub mod table6_composite;

/// Writes the observability outputs when dropped (end of `main`).
#[derive(Debug, Default)]
pub struct ObsGuard {
    trace: Option<String>,
    metrics: Option<String>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        let Some(rec) = flowtune_obs::uninstall() else {
            return;
        };
        if let Some(path) = &self.trace {
            if let Err(e) = std::fs::write(path, rec.trace_jsonl()) {
                eprintln!("error: writing trace {path}: {e}");
            }
        }
        if let Some(path) = &self.metrics {
            if let Err(e) = std::fs::write(path, rec.metrics_json()) {
                eprintln!("error: writing metrics {path}: {e}");
            }
        }
    }
}

/// Parse `--trace-out` / `--metrics-out` from the command line and, when
/// either is present, install a `flowtune-obs` recorder for the rest of
/// the process. Call once at the top of an experiment's `main` and keep
/// the guard alive; files are written when it drops.
pub fn obs_guard() -> ObsGuard {
    let mut guard = ObsGuard::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => guard.trace = args.next(),
            "--metrics-out" => guard.metrics = args.next(),
            _ => {}
        }
    }
    if guard.trace.is_some() || guard.metrics.is_some() {
        flowtune_obs::install();
    }
    guard
}

/// Was `--smoke` passed? Every experiment honours it by shrinking its
/// horizon and sweep grids to a CI-sized run (bin-hygiene in
/// `flowtune-analyze` enforces that each `exp_*` binary wires this).
pub fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// Read the horizon override (quanta). `FLOWTUNE_QUANTA` wins, then
/// `--smoke` shrinks the default to a short CI horizon.
pub fn horizon_quanta() -> u64 {
    std::env::var("FLOWTUNE_QUANTA")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke() { 60 } else { 720 })
}

/// Read the Table 6 row-count override.
pub fn table6_rows() -> usize {
    std::env::var("FLOWTUNE_TABLE6_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000)
}

/// Standard header each experiment prints.
pub fn banner(experiment: &str, paper_ref: &str) {
    println!("=== {experiment} ===");
    println!("reproduces: {paper_ref}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_env() {
        // Note: assumes the test environment doesn't set the overrides.
        if std::env::var("FLOWTUNE_QUANTA").is_err() {
            assert_eq!(horizon_quanta(), 720);
        }
        if std::env::var("FLOWTUNE_TABLE6_ROWS").is_err() {
            assert_eq!(table6_rows(), 2_000_000);
        }
    }
}
