//! Table 6 as a criterion benchmark: the four query classes with and
//! without a B+Tree index on `lineitem.orderkey`.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_bench::micro::Criterion;
use flowtune_bench::{criterion_group, criterion_main};
use flowtune_index::BPlusTree;
use flowtune_query::lookup::{btree_eq, btree_range, scan_eq, scan_range};
use flowtune_query::sort::{sort_index, sort_scan};
use flowtune_storage::{LineitemGenerator, LineitemParams};
use std::hint::black_box;

const ROWS: usize = 500_000;

fn setup() -> (Vec<i64>, BPlusTree<i64>) {
    let g = LineitemGenerator::new(LineitemParams {
        rows: ROWS,
        seed: 6,
        lines_per_order: 4,
    });
    let data = g.generate_columns(&["orderkey"]);
    let col = data.column(0).as_i64().expect("orderkey is i64").to_vec();
    let mut pairs: Vec<(i64, u32)> = col
        .iter()
        .enumerate()
        .map(|(i, k)| (*k, i as u32))
        .collect();
    pairs.sort_unstable();
    let index = BPlusTree::bulk_build(64, &pairs);
    (col, index)
}

fn bench_table6(c: &mut Criterion) {
    let (col, index) = setup();
    let max_key = *col.iter().max().expect("non-empty");
    let (lo_l, hi_l) = (max_key / 12, max_key / 6);
    let small_w = (max_key / 1200).max(1);
    let (lo_s, hi_s) = (max_key / 120, max_key / 120 + small_w);
    let probe = max_key / 12;

    let mut group = c.benchmark_group("table6");
    group.sample_size(10);
    group.bench_function("order_by/no_index", |b| {
        b.iter(|| sort_scan(black_box(&col)))
    });
    group.bench_function("order_by/index", |b| {
        b.iter(|| sort_index(black_box(&index)))
    });
    group.bench_function("range_large/no_index", |b| {
        b.iter(|| scan_range(black_box(&col), lo_l, hi_l))
    });
    group.bench_function("range_large/index", |b| {
        b.iter(|| btree_range(black_box(&index), lo_l, hi_l))
    });
    group.bench_function("range_small/no_index", |b| {
        b.iter(|| scan_range(black_box(&col), lo_s, hi_s))
    });
    group.bench_function("range_small/index", |b| {
        b.iter(|| btree_range(black_box(&index), lo_s, hi_s))
    });
    group.bench_function("lookup/no_index", |b| {
        b.iter(|| scan_eq(black_box(&col), probe))
    });
    group.bench_function("lookup/index", |b| {
        b.iter(|| btree_eq(black_box(&index), probe))
    });
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
