//! Substrate micro-benchmarks: the LRU cache and the synthetic
//! `lineitem` generator.

use flowtune_bench::micro::{BenchmarkId, Criterion};
use flowtune_bench::{criterion_group, criterion_main};
use flowtune_storage::{LineitemGenerator, LineitemParams, LruCache};
use std::hint::black_box;

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache/lru");
    group.bench_function("insert_evict_1000", |b| {
        b.iter(|| {
            let mut cache: LruCache<u32> = LruCache::new(100 * 1024);
            for i in 0..1000u32 {
                cache.insert(black_box(i), 1024);
            }
            cache.used_bytes()
        })
    });
    group.bench_function("hit_heavy_workload", |b| {
        let mut cache: LruCache<u32> = LruCache::new(1024 * 1024);
        for i in 0..512u32 {
            cache.insert(i, 1024);
        }
        let mut k = 0u32;
        b.iter(|| {
            k = (k + 7) % 512;
            cache.get(black_box(&k))
        })
    });
    group.finish();
}

fn bench_lineitem(c: &mut Criterion) {
    let mut group = c.benchmark_group("lineitem/generate");
    group.sample_size(10);
    for rows in [10_000usize, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("orderkey_only", rows),
            &rows,
            |b, &rows| {
                b.iter(|| {
                    let g = LineitemGenerator::new(LineitemParams {
                        rows,
                        seed: 7,
                        lines_per_order: 4,
                    });
                    g.generate_columns(black_box(&["orderkey"])).rows()
                })
            },
        );
    }
    group.bench_function("full_16_columns_10k", |b| {
        b.iter(|| {
            let g = LineitemGenerator::new(LineitemParams {
                rows: 10_000,
                seed: 7,
                lines_per_order: 4,
            });
            g.generate().rows()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lru, bench_lineitem);
criterion_main!(benches);
