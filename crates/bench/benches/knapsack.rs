//! Knapsack micro-benchmarks: exact branch-and-bound (Algorithm 3) vs
//! the Graham greedy baseline, at the instance sizes the interleaver
//! actually produces (Figs. 10–11) and well beyond.

use flowtune_bench::micro::{BenchmarkId, Criterion};
use flowtune_bench::{criterion_group, criterion_main};
use flowtune_interleave::{graham_greedy, merged_upper_bound, solve_knapsack};
use std::hint::black_box;

fn instance(n: usize) -> (Vec<u64>, Vec<f64>) {
    // Deterministic pseudo-random durations (ms) and gains.
    let sizes: Vec<u64> = (0..n)
        .map(|i| 2_000 + (i as u64 * 7_919) % 28_000)
        .collect();
    let values: Vec<f64> = (0..n)
        .map(|i| 1.0 + ((i * 31) % 97) as f64 / 10.0)
        .collect();
    (sizes, values)
}

fn bench_knapsack(c: &mut Criterion) {
    let mut group = c.benchmark_group("knapsack");
    for n in [8usize, 24, 64, 192] {
        let (sizes, values) = instance(n);
        let capacity: u64 = sizes.iter().sum::<u64>() / 3;
        group.bench_with_input(BenchmarkId::new("branch_and_bound", n), &n, |b, _| {
            b.iter(|| solve_knapsack(black_box(capacity), &sizes, &values))
        });
        group.bench_with_input(BenchmarkId::new("graham_greedy", n), &n, |b, _| {
            let slots = [capacity / 2, capacity / 3, capacity / 6];
            b.iter(|| graham_greedy(black_box(&slots), &sizes, &values))
        });
    }
    group.finish();
}

fn bench_upper_bound(c: &mut Criterion) {
    let (sizes, values) = instance(24);
    let slots: Vec<u64> = (0..8u64).map(|i| 6_000 + i * 4_000).collect();
    c.bench_function("knapsack/merged_upper_bound_fig11", |b| {
        b.iter(|| merged_upper_bound(black_box(&slots), &sizes, &values))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_knapsack, bench_upper_bound
}
criterion_main!(benches);
