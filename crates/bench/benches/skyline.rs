//! Skyline-scheduler benchmarks: planning cost per application and the
//! skyline-width ablation (DESIGN.md §6: quality vs planning cost).

use flowtune_bench::micro::{BenchmarkId, Criterion};
use flowtune_bench::{criterion_group, criterion_main};
use flowtune_common::SimRng;
use flowtune_dataflow::App;
use flowtune_sched::{OnlineLoadBalanceScheduler, SchedulerConfig, SkylineScheduler};
use std::hint::black_box;

fn bench_per_app(c: &mut Criterion) {
    let mut group = c.benchmark_group("skyline/schedule_100_ops");
    group.sample_size(10);
    for app in App::ALL {
        let dag = app.generate(100, &[], &mut SimRng::seed_from_u64(1));
        let scheduler = SkylineScheduler::new(SchedulerConfig {
            max_skyline: 8,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(app.name()), &dag, |b, dag| {
            b.iter(|| scheduler.schedule(black_box(dag)))
        });
    }
    group.finish();
}

fn bench_width_ablation(c: &mut Criterion) {
    let dag = App::Montage.generate(100, &[], &mut SimRng::seed_from_u64(2));
    let mut group = c.benchmark_group("skyline/width_ablation");
    group.sample_size(10);
    for width in [2usize, 4, 8, 16, 32] {
        let scheduler = SkylineScheduler::new(SchedulerConfig {
            max_skyline: width,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| scheduler.schedule(black_box(&dag)))
        });
    }
    group.finish();
}

fn bench_online_lb(c: &mut Criterion) {
    let dag = App::Cybershake.generate(100, &[], &mut SimRng::seed_from_u64(3));
    let scheduler = OnlineLoadBalanceScheduler::default();
    c.bench_function("skyline/online_lb_baseline_100_ops", |b| {
        b.iter(|| scheduler.schedule(black_box(&dag)))
    });
}

criterion_group!(
    benches,
    bench_per_app,
    bench_width_ablation,
    bench_online_lb
);
criterion_main!(benches);
