//! B+Tree micro-benchmarks: bulk build, incremental insert, point
//! lookup, range scan — the data-structure substrate behind every
//! indexed query path.

use flowtune_bench::micro::{BenchmarkId, Criterion};
use flowtune_bench::{criterion_group, criterion_main};
use flowtune_index::{BPlusTree, HashIndex};
use std::hint::black_box;

fn sorted_pairs(n: usize) -> Vec<(i64, u32)> {
    (0..n).map(|i| ((i / 4) as i64, i as u32)).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree/build");
    group.sample_size(10);
    for n in [10_000usize, 100_000, 1_000_000] {
        let pairs = sorted_pairs(n);
        group.bench_with_input(BenchmarkId::new("bulk", n), &pairs, |b, pairs| {
            b.iter(|| BPlusTree::bulk_build(64, black_box(pairs)))
        });
    }
    let pairs = sorted_pairs(100_000);
    group.bench_function("incremental_100k", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new(64);
            for (k, r) in &pairs {
                t.insert(*k, *r);
            }
            t
        })
    });
    group.finish();
}

fn bench_probe(c: &mut Criterion) {
    let pairs = sorted_pairs(1_000_000);
    let tree = BPlusTree::bulk_build(64, &pairs);
    let hash = HashIndex::build(pairs.iter().copied());
    let mut group = c.benchmark_group("btree/probe");
    group.bench_function("btree_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7_919) % 250_000;
            tree.get_first(black_box(&k))
        })
    });
    group.bench_function("hash_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7_919) % 250_000;
            hash.get_first(black_box(&k))
        })
    });
    group.bench_function("range_1000_keys", |b| {
        b.iter(|| tree.range(black_box(1_000), 2_000).count())
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_probe);
criterion_main!(benches);
