//! Tuner-path micro-benchmarks: the gain evaluation and full tuning
//! decision run on every dataflow issue, so their cost bounds the
//! service's scheduling overhead.

use flowtune_bench::micro::{BenchmarkId, Criterion};
use flowtune_bench::{criterion_group, criterion_main};
use std::collections::BTreeMap;
use std::hint::black_box;

use flowtune_common::{
    DataflowId, ExperimentParams, IndexId, Money, SimDuration, SimTime, TunerConfig,
};
use flowtune_core::experiment::ExperimentSetup;
use flowtune_tuner::gain::GainContribution;
use flowtune_tuner::{GainModel, HistoryEntry, OnlineTuner};

fn model() -> GainModel {
    GainModel::new(
        TunerConfig::default(),
        SimDuration::from_secs(60),
        Money::from_dollars(0.1),
        Money::from_dollars(1e-4),
    )
}

fn bench_gain_evaluation(c: &mut Criterion) {
    let m = model();
    let mut group = c.benchmark_group("tuner/evaluate");
    for n in [1usize, 10, 100] {
        let contributions: Vec<GainContribution> = (0..n)
            .map(|i| GainContribution {
                quanta_ago: flowtune_common::Quanta::new(i as f64 * 0.5),
                gtd: 2.0,
                gmd: 3.0,
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &contributions, |b, cs| {
            b.iter(|| {
                m.evaluate(
                    black_box(cs),
                    flowtune_common::Quanta::new(0.5),
                    100 * 1024 * 1024,
                )
            })
        });
    }
    group.finish();
}

fn bench_full_decision(c: &mut Criterion) {
    // A realistic catalog (500 indexes) with a populated history.
    let setup = ExperimentSetup::new(ExperimentParams::default());
    let mut tuner = OnlineTuner::new(model());
    for k in 0..50u32 {
        let mut gains = BTreeMap::new();
        for i in 0..5 {
            gains.insert(IndexId((k * 7 + i) % 500), (2.0, 3.0));
        }
        tuner.history.record(HistoryEntry {
            dataflow: DataflowId(k),
            finished_at: SimTime::from_secs(60 * k as u64),
            index_gains: gains,
        });
    }
    let current: BTreeMap<IndexId, (f64, f64)> = (0..5).map(|i| (IndexId(i), (4.0, 5.0))).collect();
    c.bench_function("tuner/decide_500_indexes", |b| {
        b.iter(|| {
            tuner.decide(
                black_box(SimTime::from_secs(60 * 50)),
                &setup.catalog,
                &[&current],
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gain_evaluation, bench_full_decision
}
criterion_main!(benches);
