//! End-to-end service benchmarks: one full tune → schedule → interleave
//! → execute round, and a short multi-dataflow run per policy.

// Experiment/bench/example code fails fast on setup errors; panic-hygiene
// (flowtune-analyze) scopes to library code, so asserting here is idiomatic.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use flowtune_bench::micro::{BenchmarkId, Criterion};
use flowtune_bench::{criterion_group, criterion_main};
use flowtune_core::{IndexPolicy, QaasService, ServiceConfig};
use flowtune_dataflow::WorkloadKind;

fn short_run(policy: IndexPolicy, quanta: u64) -> usize {
    let mut config = ServiceConfig::default();
    config.params.total_quanta = quanta;
    config.policy = policy;
    config.workload = WorkloadKind::Random;
    config.max_skyline = 4;
    QaasService::new(config)
        .run()
        .expect("service run failed")
        .dataflows_finished
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/20_quanta_run");
    group.sample_size(10);
    for policy in [
        IndexPolicy::NoIndex,
        IndexPolicy::Random,
        IndexPolicy::Gain { delete: true },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label().replace(' ', "_")),
            &policy,
            |b, policy| b.iter(|| short_run(*policy, 20)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
