//! `flowtune-analyze` — the workspace invariant checker.
//!
//! A zero-external-dependency static-analysis pass over the flowtune
//! workspace, enforcing the repo-specific invariants the EDBT'20
//! reproduction depends on (and that no generic linter knows about).
//! Rules work on a token stream lexed from the comment/string-stripped
//! "code view" ([`lexer`]) plus a light item model ([`model`]) that
//! scopes `#[cfg(test)]` structurally:
//!
//! - **determinism** — no ambient entropy, wall clocks, or env lookups
//!   in simulation code; runs must be pure functions of seed + config.
//! - **ordered-iteration** — no `HashMap`/`HashSet` in the crates whose
//!   state reaches schedules, costs, or experiment reports.
//! - **panic-hygiene** — no `unwrap`/`expect`/`panic!` in non-test
//!   library code of the core crates.
//! - **newtype-discipline** — no raw `f64` money/time bindings outside
//!   `flowtune-common`; use `Money`/`SimTime`/`Quanta`.
//! - **dep-hygiene** — every declared dependency is actually used.
//! - **cast-discipline** — no lossy `as` casts on money/time values.
//! - **obs-discipline** — obs names are dotted snake_case, unique, and
//!   present in the committed metrics golden.
//! - **golden-coverage** — `tests/golden/` files and their references
//!   match both ways.
//! - **bin-hygiene** — `exp_*` binaries wire `obs_guard()` and accept
//!   `--smoke`.
//! - **waiver-audit** — stale/unknown/reason-less waivers are findings
//!   themselves (severity `warn`).
//!
//! False positives are silenced in place with a mandatory-reason waiver
//! (a plain `//` comment — doc comments and strings don't count):
//!
//! ```text
//! // flowtune-allow(panic-hygiene): mutex poisoning is unrecoverable here
//! ```
//!
//! The pass runs three ways: as a CLI (`cargo run -p flowtune-analyze`,
//! non-zero exit on violations, `--format json` for the stable
//! `flowtune.analyze.v1` schema), from `ci/check.sh` (JSON + baseline
//! mode), and as a library from the integration test
//! `tests/workspace_clean.rs`, which makes plain `cargo test` the
//! enforcement point — a new violation anywhere in the workspace fails
//! the tier-1 gate.

pub mod json;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod scan;
pub mod workspace;

pub use rules::{all_rules, Diagnostic, Emitter, Rule, Severity, Sink};
pub use scan::{FileKind, SourceFile};
pub use workspace::{CrateInfo, Workspace};

use std::path::{Path, PathBuf};

/// Run every rule over the workspace rooted at `root`.
///
/// Diagnostics are sorted (file, line, rule) so output is deterministic —
/// the analyzer holds itself to the invariant it enforces.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let ws = Workspace::discover(root)?;
    Ok(check(&ws))
}

/// Run every rule over an already-discovered workspace, then audit the
/// waivers against what the run actually suppressed.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut sink = Sink::default();
    for rule in all_rules() {
        let (name, sev) = (rule.name(), rule.severity());
        {
            let mut em = Emitter::new(name, sev, &mut sink);
            rule.check_workspace(ws, &mut em);
        }
        for krate in &ws.crates {
            let mut em = Emitter::new(name, sev, &mut sink);
            rule.check_crate(krate, &mut em);
            for file in &krate.files {
                let mut em = Emitter::new(name, sev, &mut sink);
                rule.check_file(krate, file, &mut em);
            }
        }
    }
    audit_waivers(ws, &mut sink);
    let mut diags = sink.diags;
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags
}

/// The waiver-audit post-pass: every declared waiver must name a known
/// rule, carry a reason, and have suppressed at least one finding this
/// run. Runs in two sub-passes so a `waiver-audit` waiver that
/// suppresses an audit finding is itself counted as used before being
/// judged.
fn audit_waivers(ws: &Workspace, sink: &mut Sink) {
    let known: std::collections::BTreeSet<&'static str> =
        all_rules().iter().map(|r| r.name()).collect();
    for pass_audit_waivers in [false, true] {
        for krate in &ws.crates {
            for file in &krate.files {
                for decl in &file.waiver_decls {
                    if (decl.rule == "waiver-audit") != pass_audit_waivers {
                        continue;
                    }
                    let used = sink.used_waivers.contains(&(
                        file.rel.clone(),
                        decl.rule.clone(),
                        decl.line,
                    ));
                    let mut em = Emitter::new("waiver-audit", Severity::Warn, sink);
                    if !known.contains(decl.rule.as_str()) {
                        em.emit(
                            file,
                            decl.line,
                            format!(
                                "waiver names unknown rule `{}`; the intended waiver is dead",
                                decl.rule
                            ),
                        );
                    } else if !decl.has_reason {
                        em.emit(
                            file,
                            decl.line,
                            format!(
                                "waiver for `{}` has no `: reason` and suppresses nothing",
                                decl.rule
                            ),
                        );
                    } else if !used {
                        em.emit(
                            file,
                            decl.line,
                            format!(
                                "stale waiver: `{}` no longer fires on the covered lines; \
                                 delete it",
                                decl.rule
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The workspace root this crate was built from: `CARGO_MANIFEST_DIR`'s
/// grandparent. Tests and the CLI default to analyzing the live tree.
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .to_path_buf()
}
