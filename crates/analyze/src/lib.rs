//! `flowtune-analyze` — the workspace invariant checker.
//!
//! A zero-external-dependency static-analysis pass over the flowtune
//! workspace, enforcing the repo-specific invariants the EDBT'20
//! reproduction depends on (and that no generic linter knows about):
//!
//! - **determinism** — no ambient entropy, wall clocks, or env lookups
//!   in simulation code; runs must be pure functions of seed + config.
//! - **ordered-iteration** — no `HashMap`/`HashSet` in the crates whose
//!   state reaches schedules, costs, or experiment reports.
//! - **panic-hygiene** — no `unwrap`/`expect`/`panic!` in non-test
//!   library code of the core crates.
//! - **newtype-discipline** — no raw `f64` money/time bindings outside
//!   `flowtune-common`; use `Money`/`SimTime`/`Quanta`.
//! - **dep-hygiene** — every declared dependency is actually used.
//!
//! False positives are silenced in place with a mandatory-reason waiver:
//!
//! ```text
//! // flowtune-allow(panic-hygiene): mutex poisoning is unrecoverable here
//! ```
//!
//! The pass runs two ways: as a CLI (`cargo run -p flowtune-analyze`,
//! non-zero exit on violations) and as a library from the integration
//! test `tests/workspace_clean.rs`, which makes plain `cargo test` the
//! enforcement point — a new violation anywhere in the workspace fails
//! the tier-1 gate.

pub mod rules;
pub mod scan;
pub mod workspace;

pub use rules::{all_rules, Diagnostic, Emitter, Rule};
pub use scan::{FileKind, SourceFile};
pub use workspace::{CrateInfo, Workspace};

use std::path::{Path, PathBuf};

/// Run every rule over the workspace rooted at `root`.
///
/// Diagnostics are sorted (file, line, rule) so output is deterministic —
/// the analyzer holds itself to the invariant it enforces.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let ws = Workspace::discover(root)?;
    Ok(check(&ws))
}

/// Run every rule over an already-discovered workspace.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for rule in all_rules() {
        let name = rule.name();
        for krate in &ws.crates {
            let mut em = Emitter::new(name, &mut diags);
            rule.check_crate(krate, &mut em);
            for file in &krate.files {
                let mut em = Emitter::new(name, &mut diags);
                rule.check_file(krate, file, &mut em);
            }
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags
}

/// The workspace root this crate was built from: `CARGO_MANIFEST_DIR`'s
/// grandparent. Tests and the CLI default to analyzing the live tree.
pub fn workspace_root() -> PathBuf {
    // flowtune-allow(determinism): compile-time env! resolves the in-repo path, not runtime state
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .to_path_buf()
}
