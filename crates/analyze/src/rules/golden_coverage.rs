//! Rule `golden-coverage`: the committed goldens under `tests/golden/`
//! and the code that diffs against them must reference each other both
//! ways. An orphan golden (no test or `ci/check.sh` step reads it)
//! rots silently — it pins nothing — and a dangling reference (a test
//! naming a golden that doesn't exist) fails only at runtime, usually
//! in CI. The rule scans test targets and the check script for
//! `tests/golden/<name>` path literals and cross-checks the directory
//! listing.
//!
//! The committed perf baselines at the repository root (`BENCH_*.json`)
//! get the same treatment: each must be read by a test or a check-script
//! step (otherwise its speedup bars gate nothing), and every `BENCH_*`
//! name a test mentions must exist. A `BENCH_` occurrence preceded by
//! `/` is a scratch-copy path (e.g. `$scratch/BENCH_sched.json` in the
//! smoke steps), not a reference to the committed file, and is ignored.

use super::{Emitter, Rule};
use crate::scan::FileKind;
use crate::workspace::Workspace;
use std::collections::BTreeSet;

#[derive(Debug)]
pub struct GoldenCoverage;

impl Rule for GoldenCoverage {
    fn name(&self) -> &'static str {
        "golden-coverage"
    }

    fn description(&self) -> &'static str {
        "tests/golden files, BENCH_* perf baselines, and their test/ci references must match both ways"
    }

    fn check_workspace(&self, ws: &Workspace, em: &mut Emitter<'_>) {
        // All referenced paths, plus where each reference lives.
        let mut referenced: BTreeSet<String> = BTreeSet::new();
        let mut bench_referenced: BTreeSet<String> = BTreeSet::new();
        for krate in &ws.crates {
            for file in &krate.files {
                if file.kind != FileKind::Test {
                    continue;
                }
                for (idx, raw) in file.raw_lines.iter().enumerate() {
                    for path in refs_in_line(raw) {
                        if ws.golden(&path).is_none() {
                            em.emit(
                                file,
                                idx,
                                format!("referenced golden `{path}` does not exist"),
                            );
                        }
                        referenced.insert(path);
                    }
                    for name in bench_refs_in_line(raw) {
                        if ws.baseline(&name).is_none() {
                            em.emit(
                                file,
                                idx,
                                format!("referenced perf baseline `{name}` does not exist"),
                            );
                        }
                        bench_referenced.insert(name);
                    }
                }
            }
        }
        if let Some(script) = &ws.check_script {
            for (idx, raw) in script.text.lines().enumerate() {
                for path in refs_in_line(raw) {
                    if ws.golden(&path).is_none() {
                        em.emit_raw(
                            script.rel.clone(),
                            idx + 1,
                            format!("referenced golden `{path}` does not exist"),
                        );
                    }
                    referenced.insert(path);
                }
                for name in bench_refs_in_line(raw) {
                    if ws.baseline(&name).is_none() {
                        em.emit_raw(
                            script.rel.clone(),
                            idx + 1,
                            format!("referenced perf baseline `{name}` does not exist"),
                        );
                    }
                    bench_referenced.insert(name);
                }
            }
        }

        for golden in &ws.goldens {
            if !referenced.contains(&golden.rel) {
                em.emit_raw(
                    golden.rel.clone(),
                    1,
                    "golden file is not referenced by any test or ci/check.sh; \
                     it pins nothing"
                        .to_owned(),
                );
            }
        }
        for baseline in &ws.baselines {
            if !bench_referenced.contains(&baseline.rel) {
                em.emit_raw(
                    baseline.rel.clone(),
                    1,
                    "perf baseline is not referenced by any test or ci/check.sh; \
                     its bars gate nothing"
                        .to_owned(),
                );
            }
        }
    }
}

/// Every root-level `BENCH_*.json` occurrence in one line of raw text.
/// An occurrence preceded by `/` is a path component inside some other
/// directory (a scratch copy), not the committed baseline, and is
/// skipped.
fn bench_refs_in_line(line: &str) -> Vec<String> {
    const PREFIX: &str = "BENCH_";
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = line[from..].find(PREFIX) {
        let abs = from + at;
        let preceded_by_slash = line[..abs].ends_with('/');
        let tail = &line[abs + PREFIX.len()..];
        let end = tail
            .find(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
            .unwrap_or(tail.len());
        let name = &tail[..end];
        if !preceded_by_slash && name.ends_with(".json") {
            out.push(format!("{PREFIX}{name}"));
        }
        from = abs + PREFIX.len();
    }
    out
}

/// Every `tests/golden/<path>` occurrence in one line of raw text.
fn refs_in_line(line: &str) -> Vec<String> {
    const PREFIX: &str = "tests/golden/";
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(at) = rest.find(PREFIX) {
        let tail = &rest[at + PREFIX.len()..];
        let end = tail
            .find(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '/')))
            .unwrap_or(tail.len());
        if end > 0 {
            out.push(format!("{PREFIX}{}", &tail[..end]));
        }
        rest = &rest[at + PREFIX.len()..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_path_references() {
        assert_eq!(
            refs_in_line(r#"let p = root.join("tests/golden/metrics_smoke.json");"#),
            ["tests/golden/metrics_smoke.json"]
        );
        assert_eq!(
            refs_in_line("diff tests/golden/a.json tests/golden/b.jsonl"),
            ["tests/golden/a.json", "tests/golden/b.jsonl"]
        );
        // A bare directory mention is not a file reference.
        assert!(refs_in_line("ls tests/golden/ | wc -l").is_empty());
        assert!(refs_in_line("no goldens here").is_empty());
    }

    #[test]
    fn extracts_bench_baseline_references() {
        assert_eq!(
            bench_refs_in_line(r#"let p = root.join("BENCH_sched.json");"#),
            ["BENCH_sched.json"]
        );
        assert_eq!(
            bench_refs_in_line("grep -q schema BENCH_sched.json BENCH_interleave.json"),
            ["BENCH_sched.json", "BENCH_interleave.json"]
        );
        // A scratch-copy path is not a reference to the committed file.
        assert!(bench_refs_in_line(r#"--out "$scratch/BENCH_sched.json""#).is_empty());
        // A non-json mention (e.g. a schema name fragment) is skipped.
        assert!(bench_refs_in_line("the BENCH_ prefix itself").is_empty());
        assert!(bench_refs_in_line("no baselines here").is_empty());
    }
}
