//! Rule `determinism`: the simulator must be a pure function of its
//! seed and config (DESIGN §2 — "All randomness is seeded → runs are
//! reproducible"). Ambient entropy, wall clocks, and environment
//! variables are the three ways nondeterminism leaks into a run, so all
//! three are banned outside an explicit allowlist:
//!
//! - `crates/query/src/timer.rs` legitimately wall-clocks the Table 6
//!   query micro-benchmarks (real elapsed time is the measurement);
//! - `crates/bench/` is measurement tooling, not simulation;
//! - `crates/analyze/` is this tool.

use std::collections::BTreeSet;

use super::{Emitter, Rule};
use crate::lexer::path_matches;
use crate::scan::SourceFile;
use crate::workspace::CrateInfo;

/// Workspace-relative path prefixes exempt from this rule.
const ALLOWED_PREFIXES: &[&str] = &[
    "crates/query/src/timer.rs",
    "crates/bench/",
    "crates/analyze/",
];

/// Banned identifiers and what to use instead. These match anywhere in
/// a path (`std::time::Instant` and a bare `Instant` both count).
const BANNED_IDENTS: &[(&str, &str)] = &[
    (
        "thread_rng",
        "seed a SimRng from the experiment config instead of ambient entropy",
    ),
    (
        "from_entropy",
        "seed a SimRng from the experiment config instead of ambient entropy",
    ),
    (
        "ThreadRng",
        "seed a SimRng from the experiment config instead of ambient entropy",
    ),
    (
        "Instant",
        "wall-clock time is nondeterministic; use SimTime driven by the event loop",
    ),
    (
        "SystemTime",
        "wall-clock time is nondeterministic; use SimTime driven by the event loop",
    ),
];

/// Banned `::`-paths, matched from their first segment.
const BANNED_PATHS: &[(&str, &str)] = &[(
    "std::env",
    "environment lookups make runs host-dependent; thread config through ExperimentConfig",
)];

#[derive(Debug)]
pub struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "forbid ambient entropy, wall clocks, and env lookups outside the allowlist"
    }

    fn check_file(&self, _krate: &CrateInfo, file: &SourceFile, em: &mut Emitter<'_>) {
        if ALLOWED_PREFIXES.iter().any(|p| file.rel.starts_with(p)) {
            return;
        }
        // One finding per (line, banned token) — `SystemTime` twice on a
        // line is one diagnostic, as with the old per-line matcher.
        let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
        for (at, tok) in file.tokens.iter().enumerate() {
            if file.is_test_line(tok.line) {
                continue;
            }
            for (ident, hint) in BANNED_IDENTS {
                if tok.is_ident(ident) && seen.insert((tok.line, ident)) {
                    em.emit(file, tok.line, format!("banned `{ident}`: {hint}"));
                }
            }
            for (path, hint) in BANNED_PATHS {
                if path_matches(&file.tokens, at, path) && seen.insert((tok.line, path)) {
                    em.emit(file, tok.line, format!("banned `{path}`: {hint}"));
                }
            }
        }
    }
}
