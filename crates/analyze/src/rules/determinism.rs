//! Rule `determinism`: the simulator must be a pure function of its
//! seed and config (DESIGN §2 — "All randomness is seeded → runs are
//! reproducible"). Ambient entropy, wall clocks, and environment
//! variables are the three ways nondeterminism leaks into a run, so all
//! three are banned outside an explicit allowlist:
//!
//! - `crates/query/src/timer.rs` legitimately wall-clocks the Table 6
//!   query micro-benchmarks (real elapsed time is the measurement);
//! - `crates/bench/` is measurement tooling, not simulation;
//! - `crates/analyze/` is this tool.

use super::{Emitter, Rule};
use crate::scan::{contains_token, SourceFile};
use crate::workspace::CrateInfo;

/// Workspace-relative path prefixes exempt from this rule.
const ALLOWED_PREFIXES: &[&str] = &[
    "crates/query/src/timer.rs",
    "crates/bench/",
    "crates/analyze/",
];

/// Banned tokens and what to use instead.
const BANNED: &[(&str, &str)] = &[
    (
        "thread_rng",
        "seed a SimRng from the experiment config instead of ambient entropy",
    ),
    (
        "from_entropy",
        "seed a SimRng from the experiment config instead of ambient entropy",
    ),
    (
        "ThreadRng",
        "seed a SimRng from the experiment config instead of ambient entropy",
    ),
    (
        "Instant",
        "wall-clock time is nondeterministic; use SimTime driven by the event loop",
    ),
    (
        "SystemTime",
        "wall-clock time is nondeterministic; use SimTime driven by the event loop",
    ),
    (
        "std::env",
        "environment lookups make runs host-dependent; thread config through ExperimentConfig",
    ),
];

#[derive(Debug)]
pub struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "forbid ambient entropy, wall clocks, and env lookups outside the allowlist"
    }

    fn check_file(&self, _krate: &CrateInfo, file: &SourceFile, em: &mut Emitter<'_>) {
        if ALLOWED_PREFIXES.iter().any(|p| file.rel.starts_with(p)) {
            return;
        }
        for (idx, code) in file.code_lines.iter().enumerate() {
            if file.is_test_line(idx) {
                continue;
            }
            for (token, hint) in BANNED {
                // `Instant` bans both the import and the call site; the
                // word-boundary match keeps `instant`-like identifiers safe.
                if contains_token(code, token) {
                    em.emit(file, idx, format!("banned `{token}`: {hint}"));
                }
            }
        }
    }
}
