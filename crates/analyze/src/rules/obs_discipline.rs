//! Rule `obs-discipline`: the observability surface is a contract — the
//! metric names passed to `flowtune_obs::count/gauge/observe` and the
//! event kinds passed to `obs_event!` end up in traces, dashboards, and
//! the committed goldens. The rule extracts every name literal and
//! enforces:
//!
//! 1. **format** — names are dotted snake_case (`area.metric`), so the
//!    trace/metrics namespaces stay greppable and sort by subsystem;
//! 2. **no duplicates** — a metric name recorded as two different kinds
//!    (counter here, distribution there) splits one series in the
//!    summary, and an event kind emitted from two sites makes traces
//!    ambiguous; the earliest site is canonical, later ones are flagged;
//! 3. **golden membership** — every metric name must appear in
//!    `tests/golden/metrics_smoke.json`; a name absent from the smoke
//!    golden is either dead, misspelled, or only reachable on paths the
//!    smoke run skips (waive with which path exercises it).
//!
//! Names are string literals — blanked in the code view — so the rule
//! locates call sites by token and reads the literal back from the raw
//! line(s) following the opening parenthesis.

use super::{Emitter, Rule};
use crate::json;
use crate::lexer::TokenKind;
use crate::scan::{FileKind, SourceFile};
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// Root-relative path of the metrics golden the membership check uses.
const METRICS_GOLDEN: &str = "tests/golden/metrics_smoke.json";

#[derive(Debug)]
pub struct ObsDiscipline;

/// One extracted name literal.
struct Site<'a> {
    file: &'a SourceFile,
    /// 0-based line of the call ident.
    line: usize,
    name: String,
    /// "count" | "gauge" | "observe" | "event".
    kind: &'static str,
}

impl Rule for ObsDiscipline {
    fn name(&self) -> &'static str {
        "obs-discipline"
    }

    fn description(&self) -> &'static str {
        "obs names must be dotted snake_case, unique, and present in the metrics golden"
    }

    fn check_workspace(&self, ws: &Workspace, em: &mut Emitter<'_>) {
        let mut sites: Vec<Site<'_>> = Vec::new();
        for krate in &ws.crates {
            // The analyzer manipulates these idents as data; the obs
            // crate defines them. Neither emits.
            if krate.name == "flowtune-analyze" {
                continue;
            }
            for file in &krate.files {
                if file.kind == FileKind::Test {
                    continue;
                }
                collect_sites(file, &mut sites);
            }
        }

        for site in &sites {
            if !valid_name(&site.name) {
                em.emit(
                    site.file,
                    site.line,
                    format!(
                        "obs name `{}` must be dotted snake_case (`area.metric`)",
                        site.name
                    ),
                );
            }
        }

        // Duplicate detection: the earliest site (scan order is
        // deterministic: crates and files sorted, then token order) is
        // canonical; later conflicting sites are flagged.
        let mut first_metric: BTreeMap<&str, &Site<'_>> = BTreeMap::new();
        let mut first_event: BTreeMap<&str, &Site<'_>> = BTreeMap::new();
        for site in &sites {
            if site.kind == "event" {
                match first_event.get(site.name.as_str()) {
                    None => {
                        first_event.insert(&site.name, site);
                    }
                    Some(canon) => em.emit(
                        site.file,
                        site.line,
                        format!(
                            "event `{}` is already emitted at {}:{}; one kind, one site",
                            site.name,
                            canon.file.rel,
                            canon.line + 1
                        ),
                    ),
                }
            } else {
                match first_metric.get(site.name.as_str()) {
                    None => {
                        first_metric.insert(&site.name, site);
                    }
                    Some(canon) if canon.kind != site.kind => em.emit(
                        site.file,
                        site.line,
                        format!(
                            "metric `{}` recorded as {} here but as {} at {}:{}; pick one kind",
                            site.name,
                            site.kind,
                            canon.kind,
                            canon.file.rel,
                            canon.line + 1
                        ),
                    ),
                    Some(_) => {}
                }
            }
        }

        // Golden membership, metrics only (event kinds appear in traces,
        // which have no committed name inventory).
        let Some(keys) = golden_metric_names(ws) else {
            return;
        };
        let mut flagged: BTreeSet<(&str, usize, &str)> = BTreeSet::new();
        for site in &sites {
            if site.kind == "event" || keys.contains(site.name.as_str()) {
                continue;
            }
            if !flagged.insert((&site.file.rel, site.line, &site.name)) {
                continue;
            }
            em.emit(
                site.file,
                site.line,
                format!(
                    "metric `{}` is absent from {METRICS_GOLDEN}; add it to the smoke \
                     golden or waive with the path that exercises it",
                    site.name
                ),
            );
        }
    }
}

/// Find `count(` / `gauge(` / `observe(` / `obs_event!(` call sites whose
/// first argument is a string literal, and read that literal back from
/// the raw source.
fn collect_sites<'a>(file: &'a SourceFile, out: &mut Vec<Site<'a>>) {
    let toks = &file.tokens;
    for at in 0..toks.len() {
        let t = &toks[at];
        if t.kind != TokenKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        let (kind, paren_at) = if matches!(t.text.as_str(), "count" | "gauge" | "observe")
            && toks.get(at + 1).is_some_and(|n| n.is_punct("("))
            // `.count()` and friends are iterator adaptors, not obs calls.
            && !(at > 0 && toks[at - 1].is_punct("."))
        {
            (literal_kind(&t.text), at + 1)
        } else if t.is_ident("obs_event")
            && toks.get(at + 1).is_some_and(|n| n.is_punct("!"))
            && toks.get(at + 2).is_some_and(|n| n.is_punct("("))
        {
            ("event", at + 2)
        } else {
            continue;
        };
        let paren = &toks[paren_at];
        if let Some(name) = literal_after(file, paren.line, paren.col + 1) {
            out.push(Site {
                file,
                line: t.line,
                name,
                kind,
            });
        }
    }
}

/// Map the call ident to its static kind string.
fn literal_kind(text: &str) -> &'static str {
    match text {
        "count" => "count",
        "gauge" => "gauge",
        _ => "observe",
    }
}

/// The string literal starting at/after `(line, col)` in the raw source,
/// skipping whitespace (across lines). `None` when the next
/// non-whitespace isn't a plain `"` literal — then the name is computed,
/// not a literal, and the rule has nothing to check.
fn literal_after(file: &SourceFile, line: usize, col: usize) -> Option<String> {
    let (mut line, mut col) = (line, col);
    loop {
        let raw = file.raw_lines.get(line)?;
        let chars: Vec<char> = raw.chars().collect();
        match chars.get(col) {
            None => {
                line += 1;
                col = 0;
            }
            Some(c) if c.is_whitespace() => col += 1,
            Some('"') => {
                let mut name = String::new();
                for &c in chars.get(col + 1..)? {
                    match c {
                        '"' => return Some(name),
                        // Escapes never appear in obs names; bail rather
                        // than guess.
                        '\\' => return None,
                        c => name.push(c),
                    }
                }
                return None;
            }
            Some(_) => return None,
        }
    }
}

/// Is `name` dotted snake_case with at least two segments?
fn valid_name(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|s| {
            !s.is_empty()
                && s.starts_with(|c: char| c.is_ascii_lowercase())
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// All metric names the committed smoke golden knows (counters, gauges,
/// and distributions). `None` when the golden is missing or unparseable
/// — golden-coverage owns existence, so this rule stays quiet then.
fn golden_metric_names(ws: &Workspace) -> Option<BTreeSet<String>> {
    let doc = json::parse(&ws.golden(METRICS_GOLDEN)?.text).ok()?;
    let mut keys = BTreeSet::new();
    for section in ["counters", "gauges", "distributions"] {
        for (k, _) in doc.get(section)?.as_obj()? {
            keys.insert(k.clone());
        }
    }
    Some(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileKind;

    #[test]
    fn name_format() {
        assert!(valid_name("sched.steps"));
        assert!(valid_name("interleave.knapsack_nodes"));
        assert!(valid_name("a.b.c2"));
        assert!(!valid_name("sched"));
        assert!(!valid_name("Sched.steps"));
        assert!(!valid_name("sched.Steps"));
        assert!(!valid_name("sched..steps"));
        assert!(!valid_name("sched.steps-x"));
        assert!(!valid_name(".steps"));
    }

    #[test]
    fn extracts_names_from_raw_source() {
        let file = SourceFile::from_text(
            "fn f() {\n    flowtune_obs::count(\"sched.steps\", 1);\n    obs_event!(\n        \"sched.step\",\n        t\n    );\n    let n = xs.iter().count();\n    flowtune_obs::observe(computed_name, 1.0);\n}\n",
            std::path::PathBuf::from("m.rs"),
            "m.rs".to_owned(),
            FileKind::Lib,
        );
        let mut sites = Vec::new();
        collect_sites(&file, &mut sites);
        let got: Vec<(&str, &str, usize)> = sites
            .iter()
            .map(|s| (s.name.as_str(), s.kind, s.line))
            .collect();
        // The iterator `.count()` and the computed-name observe are
        // skipped; the multiline obs_event! literal is found.
        assert_eq!(
            got,
            [("sched.steps", "count", 1), ("sched.step", "event", 2)]
        );
    }
}
