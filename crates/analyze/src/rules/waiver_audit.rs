//! Rule `waiver-audit`: a `flowtune-allow(rule)` waiver is a standing
//! exception, and standing exceptions rot. The audit flags three
//! shapes:
//!
//! * **stale** — the waived rule no longer fires on the covered lines,
//!   so the waiver hides nothing and should be deleted before it masks
//!   a future regression;
//! * **unknown rule** — the waiver names a rule the analyzer doesn't
//!   have (usually a typo, which means the *intended* waiver is dead);
//! * **missing reason** — a waiver without a `: why` clause never
//!   suppressed anything (scan.rs requires the reason), so it is pure
//!   noise.
//!
//! The checks need the full run's suppression record (which waivers
//! were actually consumed), so the logic lives in the engine
//! ([`crate::check`]) as a post-pass over
//! [`crate::rules::Sink::used_waivers`]; this type exists so the rule
//! is listed, filterable, and documented like any other.
//!
//! Findings are `warn` severity: a stale waiver is debt, not breakage.

use super::{Rule, Severity};

#[derive(Debug)]
pub struct WaiverAudit;

impl Rule for WaiverAudit {
    fn name(&self) -> &'static str {
        "waiver-audit"
    }

    fn description(&self) -> &'static str {
        "flag stale, unknown-rule, and reason-less flowtune-allow waivers"
    }

    fn severity(&self) -> Severity {
        Severity::Warn
    }
}
