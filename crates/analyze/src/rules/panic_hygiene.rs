//! Rule `panic-hygiene`: library code in the core crates must not
//! panic on recoverable conditions — a panic mid-quantum tears down the
//! whole simulated cloud instead of surfacing a diagnosable
//! `flowtune_common::error::Error`. `unwrap`/`expect`/`panic!` (and the
//! placeholder macros) are banned in non-test library code; sites whose
//! invariants genuinely cannot fail carry a waiver stating why.
//!
//! Test modules, integration tests, benches, examples, and CLI `main`
//! files are exempt: asserting and fast-failing is idiomatic there.

use super::{Emitter, Rule};
use crate::scan::{FileKind, SourceFile};
use crate::workspace::CrateInfo;

/// The core library crates the rule protects.
const CORE_CRATES: &[&str] = &[
    "flowtune-common",
    "flowtune-storage",
    "flowtune-index",
    "flowtune-query",
    "flowtune-dataflow",
    "flowtune-sched",
    "flowtune-interleave",
    "flowtune-cloud",
    "flowtune-tuner",
    "flowtune-core",
    "flowtune-obs",
];

/// Substring patterns (matched on the comment/string-stripped view).
const BANNED: &[(&str, &str)] = &[
    (
        ".unwrap()",
        "return Result via flowtune_common::error, or waive with the invariant",
    ),
    (
        ".expect(",
        "return Result via flowtune_common::error, or waive with the invariant",
    ),
    (
        "panic!(",
        "return an Error instead of tearing down the simulation",
    ),
    (
        "todo!(",
        "unimplemented paths must not ship in library code",
    ),
    (
        "unimplemented!(",
        "unimplemented paths must not ship in library code",
    ),
];

#[derive(Debug)]
pub struct PanicHygiene;

impl Rule for PanicHygiene {
    fn name(&self) -> &'static str {
        "panic-hygiene"
    }

    fn description(&self) -> &'static str {
        "forbid unwrap/expect/panic! in non-test library code of the core crates"
    }

    fn check_file(&self, krate: &CrateInfo, file: &SourceFile, em: &mut Emitter<'_>) {
        if !CORE_CRATES.contains(&krate.name.as_str()) || file.kind != FileKind::Lib {
            return;
        }
        for (idx, code) in file.code_lines.iter().enumerate() {
            if file.is_test_line(idx) {
                continue;
            }
            for (pat, hint) in BANNED {
                if code.contains(pat) {
                    let what = pat.trim_end_matches('(').trim_end_matches("()");
                    em.emit(file, idx, format!("`{what}` in library code: {hint}"));
                }
            }
        }
    }
}
