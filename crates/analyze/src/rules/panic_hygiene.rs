//! Rule `panic-hygiene`: library code in the core crates must not
//! panic on recoverable conditions — a panic mid-quantum tears down the
//! whole simulated cloud instead of surfacing a diagnosable
//! `flowtune_common::error::Error`. `unwrap`/`expect`/`panic!` (and the
//! placeholder macros) are banned in non-test library code; sites whose
//! invariants genuinely cannot fail carry a waiver stating why.
//!
//! Test modules, integration tests, benches, examples, and CLI `main`
//! files are exempt: asserting and fast-failing is idiomatic there.

use super::{Emitter, Rule};
use crate::lexer::Token;
use crate::scan::{FileKind, SourceFile};
use crate::workspace::CrateInfo;

/// The core library crates the rule protects (also reused by
/// cast-discipline, which guards the same shipping code).
pub(crate) const CORE_CRATES: &[&str] = &[
    "flowtune-common",
    "flowtune-storage",
    "flowtune-index",
    "flowtune-query",
    "flowtune-dataflow",
    "flowtune-sched",
    "flowtune-interleave",
    "flowtune-cloud",
    "flowtune-tuner",
    "flowtune-core",
    "flowtune-obs",
];

#[derive(Debug)]
pub struct PanicHygiene;

/// Does a banned construct start at `tokens[at]`? Returns the display
/// name and the hint. Matching on tokens (not substrings) means
/// `dont_panic!(…)` or `x.unwrap_or(0)` can never fire.
fn banned_at(tokens: &[Token], at: usize) -> Option<(&'static str, &'static str)> {
    const RESULT_HINT: &str =
        "return Result via flowtune_common::error, or waive with the invariant";
    const PANIC_HINT: &str = "return an Error instead of tearing down the simulation";
    const TODO_HINT: &str = "unimplemented paths must not ship in library code";
    let t = |i: usize| tokens.get(at + i);
    // `.unwrap()` — the full nullary call.
    if t(0).is_some_and(|t| t.is_punct("."))
        && t(1).is_some_and(|t| t.is_ident("unwrap"))
        && t(2).is_some_and(|t| t.is_punct("("))
        && t(3).is_some_and(|t| t.is_punct(")"))
    {
        return Some((".unwrap", RESULT_HINT));
    }
    // `.expect(…)`.
    if t(0).is_some_and(|t| t.is_punct("."))
        && t(1).is_some_and(|t| t.is_ident("expect"))
        && t(2).is_some_and(|t| t.is_punct("("))
    {
        return Some((".expect", RESULT_HINT));
    }
    // Macro invocations: `panic!(`, `todo!(`, `unimplemented!(`.
    for (name, display, hint) in [
        ("panic", "panic!", PANIC_HINT),
        ("todo", "todo!", TODO_HINT),
        ("unimplemented", "unimplemented!", TODO_HINT),
    ] {
        if t(0).is_some_and(|t| t.is_ident(name))
            && t(1).is_some_and(|t| t.is_punct("!"))
            && t(2).is_some_and(|t| t.is_punct("("))
        {
            return Some((display, hint));
        }
    }
    None
}

impl Rule for PanicHygiene {
    fn name(&self) -> &'static str {
        "panic-hygiene"
    }

    fn description(&self) -> &'static str {
        "forbid unwrap/expect/panic! in non-test library code of the core crates"
    }

    fn check_file(&self, krate: &CrateInfo, file: &SourceFile, em: &mut Emitter<'_>) {
        if !CORE_CRATES.contains(&krate.name.as_str()) || file.kind != FileKind::Lib {
            return;
        }
        let mut seen: std::collections::BTreeSet<(usize, &'static str)> = Default::default();
        for at in 0..file.tokens.len() {
            let Some((what, hint)) = banned_at(&file.tokens, at) else {
                continue;
            };
            // Attribute the finding to the line of the named token (the
            // ident after a leading `.`), and dedupe per (line, kind).
            let line = file.tokens[at + usize::from(what.starts_with('.'))].line;
            if file.is_test_line(line) || !seen.insert((line, what)) {
                continue;
            }
            em.emit(file, line, format!("`{what}` in library code: {hint}"));
        }
    }
}
