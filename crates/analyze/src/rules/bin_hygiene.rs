//! Rule `bin-hygiene`: every `exp_*` experiment binary in
//! `flowtune-bench` must wire the shared harness plumbing:
//!
//! * `flowtune_bench::obs_guard()` — parses `--trace-out` /
//!   `--metrics-out` and writes the recorded trace/metrics on exit, so
//!   any experiment can seed `BENCH_*.json` without bespoke glue;
//! * `--smoke` — a CI-sized run (via `flowtune_bench::smoke()` or a
//!   hand-rolled flag check), so `ci/check.sh` can exercise the binary
//!   without a full paper-scale horizon.
//!
//! An experiment missing either silently opts out of observability or
//! of CI coverage; both have been sources of drift.

use super::{Emitter, Rule};
use crate::scan::{FileKind, SourceFile};
use crate::workspace::CrateInfo;

#[derive(Debug)]
pub struct BinHygiene;

impl Rule for BinHygiene {
    fn name(&self) -> &'static str {
        "bin-hygiene"
    }

    fn description(&self) -> &'static str {
        "exp_* binaries must wire obs_guard() and accept --smoke"
    }

    fn check_file(&self, krate: &CrateInfo, file: &SourceFile, em: &mut Emitter<'_>) {
        if krate.name != "flowtune-bench" || file.kind != FileKind::Bin {
            return;
        }
        let stem = file.rel.rsplit('/').next().unwrap_or(&file.rel);
        if !stem.starts_with("exp_") {
            return;
        }
        let line = main_line(file);
        if !file.tokens.iter().any(|t| t.is_ident("obs_guard")) {
            em.emit(
                file,
                line,
                "experiment binary never calls flowtune_bench::obs_guard(); \
                 --trace-out/--metrics-out are dead flags here"
                    .to_owned(),
            );
        }
        let accepts_smoke = file.tokens.iter().any(|t| t.is_ident("smoke"))
            || file.raw_lines.iter().any(|l| l.contains("--smoke"));
        if !accepts_smoke {
            em.emit(
                file,
                line,
                "experiment binary does not accept --smoke; wire \
                 flowtune_bench::smoke() so CI can run a short horizon"
                    .to_owned(),
            );
        }
    }
}

/// The line of `fn main` — the natural anchor (and waiver point) for a
/// whole-binary finding. Falls back to the first line.
fn main_line(file: &SourceFile) -> usize {
    let toks = &file.tokens;
    for at in 0..toks.len().saturating_sub(1) {
        if toks[at].is_ident("fn") && toks[at + 1].is_ident("main") {
            return toks[at].line;
        }
    }
    0
}
