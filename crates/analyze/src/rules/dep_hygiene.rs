//! Rule `dep-hygiene`: every dependency a manifest declares must be
//! referenced by the crate's sources. Unused declarations are not just
//! clutter — under the workspace's zero-external-dependency policy
//! (DESIGN §7) a stray registry dependency breaks the offline build for
//! every crate downstream of it. Normal dependencies must appear in
//! library/binary code; dev-dependencies must appear in tests, benches,
//! examples, or `#[cfg(test)]` modules.

use super::{Emitter, Rule};
use crate::scan::FileKind;
use crate::workspace::{CrateInfo, Dep};

#[derive(Debug)]
pub struct DepHygiene;

impl Rule for DepHygiene {
    fn name(&self) -> &'static str {
        "dep-hygiene"
    }

    fn description(&self) -> &'static str {
        "every declared dependency must be used by the crate's sources"
    }

    fn check_crate(&self, krate: &CrateInfo, em: &mut Emitter<'_>) {
        for dep in &krate.deps {
            if !used_anywhere(krate, dep, false) {
                em.emit_raw(
                    krate.manifest_rel.clone(),
                    dep.line,
                    format!(
                        "dependency `{}` is declared but never used by {}",
                        dep.name, krate.name
                    ),
                );
            }
        }
        for dep in &krate.dev_deps {
            if !used_anywhere(krate, dep, true) {
                em.emit_raw(
                    krate.manifest_rel.clone(),
                    dep.line,
                    format!(
                        "dev-dependency `{}` is declared but never used by {}'s tests",
                        dep.name, krate.name
                    ),
                );
            }
        }
    }
}

/// Does any relevant token reference the dependency's crate identifier?
///
/// For normal deps every token counts; for dev-deps only test targets
/// and `#[cfg(test)]` regions count (a dev-dep referenced from shipping
/// code would be an undeclared real dependency, which cargo itself
/// rejects).
fn used_anywhere(krate: &CrateInfo, dep: &Dep, dev: bool) -> bool {
    let ident = dep.name.replace('-', "_");
    krate.files.iter().any(|file| {
        file.tokens.iter().any(|tok| {
            if dev && file.kind != FileKind::Test && !file.is_test_line(tok.line) {
                return false;
            }
            tok.is_ident(&ident)
        })
    })
}
