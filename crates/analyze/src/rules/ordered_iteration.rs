//! Rule `ordered-iteration`: `HashMap`/`HashSet` iteration order is
//! unspecified, so any hash collection whose contents reach scheduling
//! decisions or experiment output silently breaks run-to-run
//! reproducibility (Figs. 6–14 are all produced by replaying seeds).
//! In the crates on the simulation output path the rule bans hash
//! collections outright, steering to `BTreeMap`/`BTreeSet` (or a sorted
//! `Vec`); genuinely order-free uses can carry a waiver.

use std::collections::BTreeSet;

use super::{Emitter, Rule};
use crate::scan::{FileKind, SourceFile};
use crate::workspace::CrateInfo;

/// Crates whose state feeds schedules, costs, or reports.
const ORDERED_CRATES: &[&str] = &[
    "flowtune-sched",
    "flowtune-cloud",
    "flowtune-tuner",
    "flowtune-interleave",
    "flowtune-core",
    "flowtune-obs",
];

const BANNED: &[&str] = &["HashMap", "HashSet"];

#[derive(Debug)]
pub struct OrderedIteration;

impl Rule for OrderedIteration {
    fn name(&self) -> &'static str {
        "ordered-iteration"
    }

    fn description(&self) -> &'static str {
        "forbid HashMap/HashSet in crates on the simulation output path"
    }

    fn check_file(&self, krate: &CrateInfo, file: &SourceFile, em: &mut Emitter<'_>) {
        if !ORDERED_CRATES.contains(&krate.name.as_str()) || file.kind == FileKind::Test {
            return;
        }
        let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
        for tok in &file.tokens {
            if file.is_test_line(tok.line) {
                continue;
            }
            for token in BANNED {
                if tok.is_ident(token) && seen.insert((tok.line, token)) {
                    em.emit(
                        file,
                        tok.line,
                        format!(
                            "`{token}` iteration order is unspecified and can leak into \
                             schedules/reports; use BTree{} or a sorted Vec",
                            &token[4..]
                        ),
                    );
                }
            }
        }
    }
}
