//! The pluggable rule set.
//!
//! A rule is a stateless checker over a loaded [`CrateInfo`]. File-level
//! rules implement [`Rule::check_file`] and are invoked once per source
//! file; crate-level rules (dep-hygiene) implement [`Rule::check_crate`].
//! Waivers are honoured by the engine: a rule reports a candidate via
//! [`Emitter::emit`], which drops it silently when the line carries a
//! `// flowtune-allow(<rule>): <reason>` waiver.

use crate::scan::SourceFile;
use crate::workspace::CrateInfo;

mod dep_hygiene;
mod determinism;
mod newtype;
mod ordered_iteration;
mod panic_hygiene;

pub use dep_hygiene::DepHygiene;
pub use determinism::Determinism;
pub use newtype::NewtypeDiscipline;
pub use ordered_iteration::OrderedIteration;
pub use panic_hygiene::PanicHygiene;

/// One reported violation, pointing at a workspace-relative file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    /// 1-based.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Waiver-aware diagnostic sink handed to rules.
#[derive(Debug)]
pub struct Emitter<'a> {
    rule: &'static str,
    out: &'a mut Vec<Diagnostic>,
}

impl<'a> Emitter<'a> {
    pub fn new(rule: &'static str, out: &'a mut Vec<Diagnostic>) -> Emitter<'a> {
        Emitter { rule, out }
    }

    /// Report a violation at 0-based `line_idx` of `file`, unless waived.
    pub fn emit(&mut self, file: &SourceFile, line_idx: usize, message: String) {
        if file.is_waived(self.rule, line_idx) {
            return;
        }
        self.out.push(Diagnostic {
            file: file.rel.clone(),
            line: line_idx + 1,
            rule: self.rule,
            message,
        });
    }

    /// Report a violation not tied to a source file (e.g. a manifest).
    pub fn emit_raw(&mut self, file: String, line: usize, message: String) {
        self.out.push(Diagnostic {
            file,
            line,
            rule: self.rule,
            message,
        });
    }
}

/// A single invariant checker.
pub trait Rule {
    fn name(&self) -> &'static str;

    /// One-line description shown by `flowtune-analyze --rules`.
    fn description(&self) -> &'static str;

    fn check_file(&self, _krate: &CrateInfo, _file: &SourceFile, _em: &mut Emitter<'_>) {}

    fn check_crate(&self, _krate: &CrateInfo, _em: &mut Emitter<'_>) {}
}

/// The full rule registry, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Determinism),
        Box::new(OrderedIteration),
        Box::new(PanicHygiene),
        Box::new(NewtypeDiscipline),
        Box::new(DepHygiene),
    ]
}
