//! The pluggable rule set.
//!
//! A rule is a stateless checker over the loaded workspace. File-level
//! rules implement [`Rule::check_file`] and are invoked once per source
//! file; crate-level rules (dep-hygiene) implement [`Rule::check_crate`];
//! rules that need cross-crate context (obs-discipline, golden-coverage)
//! implement [`Rule::check_workspace`]. Waivers are honoured by the
//! engine: a rule reports a candidate via [`Emitter::emit`], which drops
//! it silently when the line carries a
//! `// flowtune-allow(<rule>): <reason>` waiver — and records the waiver
//! as *used*, which is what the stale-waiver audit keys off.

use std::collections::BTreeSet;

use crate::scan::SourceFile;
use crate::workspace::{CrateInfo, Workspace};

mod bin_hygiene;
mod cast_discipline;
mod dep_hygiene;
mod determinism;
mod golden_coverage;
mod newtype;
mod obs_discipline;
mod ordered_iteration;
mod panic_hygiene;
mod waiver_audit;

pub use bin_hygiene::BinHygiene;
pub use cast_discipline::CastDiscipline;
pub use dep_hygiene::DepHygiene;
pub use determinism::Determinism;
pub use golden_coverage::GoldenCoverage;
pub use newtype::NewtypeDiscipline;
pub use obs_discipline::ObsDiscipline;
pub use ordered_iteration::OrderedIteration;
pub use panic_hygiene::PanicHygiene;
pub use waiver_audit::WaiverAudit;

/// How a finding gates the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, but never fails the run.
    Warn,
    /// A violation: fails the run unless baselined or waived.
    Deny,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One reported violation, pointing at a workspace-relative file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    /// 1-based.
    pub line: usize,
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Accumulated results of an analysis run: the findings plus which
/// waiver declarations actually suppressed something.
#[derive(Debug, Default)]
pub struct Sink {
    pub diags: Vec<Diagnostic>,
    /// `(file rel, rule, 0-based declaration line)` of every waiver that
    /// suppressed at least one finding.
    pub used_waivers: BTreeSet<(String, String, usize)>,
}

/// Waiver-aware diagnostic sink handed to rules.
#[derive(Debug)]
pub struct Emitter<'a> {
    rule: &'static str,
    severity: Severity,
    sink: &'a mut Sink,
}

impl<'a> Emitter<'a> {
    pub fn new(rule: &'static str, severity: Severity, sink: &'a mut Sink) -> Emitter<'a> {
        Emitter {
            rule,
            severity,
            sink,
        }
    }

    /// Report a violation at 0-based `line_idx` of `file`, unless waived.
    /// A suppressing waiver is recorded as used.
    pub fn emit(&mut self, file: &SourceFile, line_idx: usize, message: String) {
        let decls = file.waiver_decl_lines(self.rule, line_idx);
        if !decls.is_empty() {
            for &d in decls {
                self.sink
                    .used_waivers
                    .insert((file.rel.clone(), self.rule.to_owned(), d));
            }
            return;
        }
        self.sink.diags.push(Diagnostic {
            file: file.rel.clone(),
            line: line_idx + 1,
            rule: self.rule,
            severity: self.severity,
            message,
        });
    }

    /// Report a violation not tied to a source file (e.g. a manifest).
    pub fn emit_raw(&mut self, file: String, line: usize, message: String) {
        self.sink.diags.push(Diagnostic {
            file,
            line,
            rule: self.rule,
            severity: self.severity,
            message,
        });
    }
}

/// A single invariant checker.
pub trait Rule {
    fn name(&self) -> &'static str;

    /// One-line description shown by `flowtune-analyze --list-rules`.
    fn description(&self) -> &'static str;

    /// Default gate level for this rule's findings.
    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn check_file(&self, _krate: &CrateInfo, _file: &SourceFile, _em: &mut Emitter<'_>) {}

    fn check_crate(&self, _krate: &CrateInfo, _em: &mut Emitter<'_>) {}

    /// Cross-crate checks (duplicate detection, golden cross-refs).
    fn check_workspace(&self, _ws: &Workspace, _em: &mut Emitter<'_>) {}
}

/// The full rule registry, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Determinism),
        Box::new(OrderedIteration),
        Box::new(PanicHygiene),
        Box::new(NewtypeDiscipline),
        Box::new(DepHygiene),
        Box::new(CastDiscipline),
        Box::new(ObsDiscipline),
        Box::new(GoldenCoverage),
        Box::new(BinHygiene),
        Box::new(WaiverAudit),
    ]
}
