//! Rule `cast-discipline`: `as` casts on money/quanta/sim-time values
//! silently truncate, saturate, or lose integer precision (u64 → f64 is
//! exact only below 2^53). The newtypes in `flowtune-common` exist so
//! those conversions go through one audited constructor; a raw
//! `leased_quanta as f64` scattered through the core crates re-opens the
//! hole newtype-discipline closes. The rule flags the token sequence
//! `name as <numeric>` where `name` contains a money/time word, in the
//! core crates (minus `flowtune-common`, which implements the blessed
//! conversions).

use super::{Emitter, Rule};
use crate::lexer::TokenKind;
use crate::rules::newtype::is_quantity_ident;
use crate::rules::panic_hygiene::CORE_CRATES;
use crate::scan::{FileKind, SourceFile};
use crate::workspace::CrateInfo;

/// Primitive numeric types an `as` cast can target.
const NUMERIC_TYPES: &[&str] = &[
    "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize",
];

#[derive(Debug)]
pub struct CastDiscipline;

impl Rule for CastDiscipline {
    fn name(&self) -> &'static str {
        "cast-discipline"
    }

    fn description(&self) -> &'static str {
        "flag lossy `as` casts on money/time quantities; convert via the newtypes"
    }

    fn check_file(&self, krate: &CrateInfo, file: &SourceFile, em: &mut Emitter<'_>) {
        if !CORE_CRATES.contains(&krate.name.as_str())
            || krate.name == "flowtune-common"
            || file.kind == FileKind::Test
        {
            return;
        }
        let toks = &file.tokens;
        for at in 0..toks.len().saturating_sub(2) {
            if !(toks[at].kind == TokenKind::Ident
                && is_quantity_ident(&toks[at].text)
                && toks[at + 1].is_ident("as")
                && toks[at + 2].kind == TokenKind::Ident
                && NUMERIC_TYPES.contains(&toks[at + 2].text.as_str()))
            {
                continue;
            }
            let line = toks[at].line;
            if file.is_test_line(line) {
                continue;
            }
            let (ident, ty) = (&toks[at].text, &toks[at + 2].text);
            em.emit(
                file,
                line,
                format!(
                    "`{ident} as {ty}` casts a money/time quantity; convert through \
                     the Money/SimTime/Quanta newtype APIs (or waive with the range invariant)"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cast_sites(code: &str) -> Vec<(String, String)> {
        let lines: Vec<String> = code.lines().map(str::to_owned).collect();
        let toks = lex(&lines);
        let mut out = Vec::new();
        for at in 0..toks.len().saturating_sub(2) {
            if toks[at].kind == TokenKind::Ident
                && is_quantity_ident(&toks[at].text)
                && toks[at + 1].is_ident("as")
                && toks[at + 2].kind == TokenKind::Ident
                && NUMERIC_TYPES.contains(&toks[at + 2].text.as_str())
            {
                out.push((toks[at].text.clone(), toks[at + 2].text.clone()));
            }
        }
        out
    }

    #[test]
    fn flags_quantity_casts_only() {
        assert_eq!(
            cast_sites("let x = exec.leased_quanta as f64;"),
            [("leased_quanta".to_string(), "f64".to_string())]
        );
        assert_eq!(
            cast_sites("(total_cost as u32)"),
            [("total_cost".to_string(), "u32".to_string())]
        );
        // Non-quantity idents, non-numeric targets, and plain `as`-free
        // code never fire.
        assert!(cast_sites("let x = rows as f64;").is_empty());
        assert!(cast_sites("let x = cost as Money;").is_empty());
        assert!(cast_sites("let cost: f64 = 1.0;").is_empty());
    }
}
