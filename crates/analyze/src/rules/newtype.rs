//! Rule `newtype-discipline`: money and simulated time are newtypes in
//! `flowtune-common` (`Money`, `SimTime`, `Quanta`) precisely so that
//! dollars never add to seconds. A raw `f64` annotated binding or field
//! whose name says it holds money or time re-opens that hole. The rule
//! is an identifier heuristic: it flags `name: f64` where `name`
//! contains a money/time word, outside `flowtune-common` itself (which
//! defines the newtypes and their internals).

use super::{Emitter, Rule};
use crate::scan::{FileKind, SourceFile};
use crate::workspace::CrateInfo;

/// Identifier fragments that mark a quantity as money or time.
const QUANTITY_WORDS: &[&str] = &[
    "cost", "price", "money", "dollar", "budget", "quanta", "time",
];

/// Crates exempt from the rule: `flowtune-common` defines the newtypes;
/// the analyzer has no money/time quantities.
const EXEMPT_CRATES: &[&str] = &["flowtune-common", "flowtune-analyze"];

#[derive(Debug)]
pub struct NewtypeDiscipline;

impl Rule for NewtypeDiscipline {
    fn name(&self) -> &'static str {
        "newtype-discipline"
    }

    fn description(&self) -> &'static str {
        "flag raw `f64` money/time bindings; use Money/SimTime/Quanta newtypes"
    }

    fn check_file(&self, krate: &CrateInfo, file: &SourceFile, em: &mut Emitter<'_>) {
        if EXEMPT_CRATES.contains(&krate.name.as_str()) || file.kind == FileKind::Test {
            return;
        }
        for (idx, code) in file.code_lines.iter().enumerate() {
            if file.is_test_line(idx) {
                continue;
            }
            for ident in f64_annotated_idents(code) {
                let lower = ident.to_ascii_lowercase();
                if QUANTITY_WORDS.iter().any(|w| lower.contains(w)) {
                    em.emit(
                        file,
                        idx,
                        format!(
                            "`{ident}: f64` looks like a money/time quantity; \
                             use Money, SimTime, or Quanta from flowtune-common"
                        ),
                    );
                }
            }
        }
    }
}

/// Identifiers annotated `ident: f64` on this line (bindings, fields, or
/// parameters — anywhere the annotation form appears).
fn f64_annotated_idents(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(pos) = code[search..].find("f64") {
        let abs = search + pos;
        search = abs + 3;
        // Must be the token `f64`, not e.g. `uf64`.
        let after = code[abs + 3..].chars().next();
        if after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        let before = &code[..abs];
        let before_trim = before.trim_end();
        let Some(rest) = before_trim.strip_suffix(':') else {
            continue;
        };
        let rest = rest.trim_end();
        let ident: String = rest
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if !ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            out.push(ident);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_annotated_idents() {
        assert_eq!(
            f64_annotated_idents("let build_cost: f64 = 3.0;"),
            ["build_cost"]
        );
        assert_eq!(
            f64_annotated_idents("fn f(price_per_hour: f64, n: u64)"),
            ["price_per_hour"]
        );
        assert_eq!(f64_annotated_idents("pub total_time: f64,"), ["total_time"]);
        assert!(f64_annotated_idents("let x = y as f64;").is_empty());
        assert!(f64_annotated_idents("Vec<f64>").is_empty());
    }
}
