//! Rule `newtype-discipline`: money and simulated time are newtypes in
//! `flowtune-common` (`Money`, `SimTime`, `Quanta`) precisely so that
//! dollars never add to seconds. A raw `f64` annotated binding or field
//! whose name says it holds money or time re-opens that hole. The rule
//! is an identifier heuristic: it flags the token sequence
//! `name : f64` where `name` contains a money/time word, outside
//! `flowtune-common` itself (which defines the newtypes and their
//! internals).

use super::{Emitter, Rule};
use crate::scan::{FileKind, SourceFile};
use crate::workspace::CrateInfo;

/// Identifier fragments that mark a quantity as money or time.
pub(crate) const QUANTITY_WORDS: &[&str] = &[
    "cost", "price", "money", "dollar", "budget", "quanta", "time",
];

/// Does this identifier look like it names a money/time quantity?
pub(crate) fn is_quantity_ident(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    QUANTITY_WORDS.iter().any(|w| lower.contains(w))
}

/// Crates exempt from the rule: `flowtune-common` defines the newtypes;
/// the analyzer has no money/time quantities.
const EXEMPT_CRATES: &[&str] = &["flowtune-common", "flowtune-analyze"];

#[derive(Debug)]
pub struct NewtypeDiscipline;

impl Rule for NewtypeDiscipline {
    fn name(&self) -> &'static str {
        "newtype-discipline"
    }

    fn description(&self) -> &'static str {
        "flag raw `f64` money/time bindings; use Money/SimTime/Quanta newtypes"
    }

    fn check_file(&self, krate: &CrateInfo, file: &SourceFile, em: &mut Emitter<'_>) {
        if EXEMPT_CRATES.contains(&krate.name.as_str()) || file.kind == FileKind::Test {
            return;
        }
        let toks = &file.tokens;
        for at in 0..toks.len().saturating_sub(2) {
            // The annotation form: `ident : f64` (binding, field, or
            // parameter). `as f64` and `Vec<f64>` have no colon.
            if !(toks[at].kind == crate::lexer::TokenKind::Ident
                && toks[at + 1].is_punct(":")
                && toks[at + 2].is_ident("f64"))
            {
                continue;
            }
            let line = toks[at].line;
            if file.is_test_line(line) {
                continue;
            }
            let ident = &toks[at].text;
            if is_quantity_ident(ident) {
                em.emit(
                    file,
                    line,
                    format!(
                        "`{ident}: f64` looks like a money/time quantity; \
                         use Money, SimTime, or Quanta from flowtune-common"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn annotated_quantity_idents(code: &str) -> Vec<String> {
        let lines: Vec<String> = code.lines().map(str::to_owned).collect();
        let toks = lex(&lines);
        let mut out = Vec::new();
        for at in 0..toks.len().saturating_sub(2) {
            if toks[at].kind == crate::lexer::TokenKind::Ident
                && toks[at + 1].is_punct(":")
                && toks[at + 2].is_ident("f64")
                && is_quantity_ident(&toks[at].text)
            {
                out.push(toks[at].text.clone());
            }
        }
        out
    }

    #[test]
    fn extracts_annotated_idents() {
        assert_eq!(
            annotated_quantity_idents("let build_cost: f64 = 3.0;"),
            ["build_cost"]
        );
        assert_eq!(
            annotated_quantity_idents("fn f(price_per_hour: f64, n: u64)"),
            ["price_per_hour"]
        );
        assert_eq!(
            annotated_quantity_idents("pub total_time: f64,"),
            ["total_time"]
        );
        assert!(annotated_quantity_idents("let cost = time as f64;").is_empty());
        assert!(annotated_quantity_idents("cost_curve: Vec<f64>").is_empty());
    }
}
