//! A minimal JSON value, writer, and parser — zero dependencies.
//!
//! The writer is *canonical*: objects keep insertion order, nesting is
//! two-space indented, and strings use the shortest escape form. The
//! parser accepts any standard JSON and preserves object key order, so
//! `render(parse(render(v))) == render(v)` byte-for-byte — the property
//! `tests/workspace_clean.rs` pins for the `--format json` output, and
//! what makes committed baselines diff cleanly.

/// A JSON value. Integers and floats are kept apart so that whole
/// numbers round-trip without a trailing `.0`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Canonical pretty rendering (two-space indent, trailing newline
    /// left to the caller).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry a byte offset and description.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser { bytes, at: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing content at offset {}", p.at));
    }
    Ok(v)
}

struct Parser {
    bytes: Vec<char>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.at += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at offset {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.at)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        for c in lit.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(',') => self.at += 1,
                Some('}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.at += 1,
                Some(']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some('"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d =
                                    self.peek().and_then(|c| c.to_digit(16)).ok_or_else(|| {
                                        format!("bad \\u escape at offset {}", self.at)
                                    })?;
                                code = code * 16 + d;
                                self.at += 1;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{other}")),
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.at += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some('-') {
            self.at += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => self.at += 1,
                '.' | 'e' | 'E' | '+' | '-' => {
                    float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text: String = self.bytes[start..self.at].iter().collect();
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_rerenders_byte_identically() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("flowtune.analyze.v1".into())),
            (
                "findings".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("file".into(), Json::Str("a/b.rs".into())),
                    ("line".into(), Json::Int(7)),
                ])]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let rendered = doc.render();
        let reparsed = parse(&rendered).expect("own output parses");
        assert_eq!(reparsed.render(), rendered);
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn parses_compact_and_nested_input() {
        let v = parse(r#"{"a":[1,2.5,true,null],"b":{"c":"d\ne"}}"#).expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(4)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("d\ne")
        );
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z":1,"a":2}"#).expect("parses");
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn escapes_round_trip() {
        let s = Json::Str("quote \" slash \\ nl \n tab \t ctrl \u{1}".into());
        let rendered = s.render();
        assert_eq!(parse(&rendered).expect("parses"), s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
    }
}
