//! Source loading and lexical preprocessing.
//!
//! The analyzer is deliberately *not* a parser: rules match tokens on a
//! per-line basis over a "code view" of each file in which comments,
//! string literals, and char literals have been blanked out. That keeps
//! the engine dependency-free (no `syn`) while eliminating the classic
//! grep false positives (a banned token inside a doc comment or a log
//! message). The stripping pass is a small character-level state machine
//! that understands nested block comments, escape sequences, raw strings
//! (`r"…"`, `r#"…"#`), byte strings, and the char-literal/lifetime
//! ambiguity.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Which compilation target a file belongs to — rules scope themselves
/// by kind (e.g. panic hygiene applies to library code only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` excluding `src/bin/**` and `src/main.rs`.
    Lib,
    /// `src/bin/**` or `src/main.rs` — CLI entry points.
    Bin,
    /// `tests/**`, `benches/**`, `examples/**` (including workspace-level
    /// targets referenced from a crate manifest).
    Test,
}

/// A loaded source file: raw text for waiver detection, stripped text
/// for rule matching, and a per-line map of `#[cfg(test)]` regions.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the scanned workspace root, `/`-separated.
    pub rel: String,
    pub kind: FileKind,
    /// Original lines (comments intact) — waivers live here.
    pub raw_lines: Vec<String>,
    /// Lines with comments/strings/chars blanked to spaces.
    pub code_lines: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
    /// rule name -> 0-based line indices waived for that rule.
    waivers: BTreeMap<String, BTreeSet<usize>>,
}

impl SourceFile {
    pub fn load(path: &Path, rel: String, kind: FileKind) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let stripped = strip_non_code(&text);
        let raw_lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let code_lines: Vec<String> = stripped.lines().map(str::to_owned).collect();
        let test_lines = mark_test_regions(&code_lines);
        let waivers = collect_waivers(&raw_lines);
        Ok(SourceFile {
            path: path.to_path_buf(),
            rel,
            kind,
            raw_lines,
            code_lines,
            test_lines,
            waivers,
        })
    }

    /// Is the given 0-based line waived for `rule`? A waiver comment
    /// covers its own line and the line immediately below it, so both
    /// trailing (`stmt; // flowtune-allow(...)`) and preceding
    /// (comment-only line above the statement) placements work.
    pub fn is_waived(&self, rule: &str, line_idx: usize) -> bool {
        self.waivers
            .get(rule)
            .is_some_and(|s| s.contains(&line_idx))
    }

    /// Convenience: is this line library (non-test) code?
    pub fn is_test_line(&self, line_idx: usize) -> bool {
        self.test_lines.get(line_idx).copied().unwrap_or(false)
    }
}

/// Blank out comments, strings, and char literals, preserving length and
/// line structure so byte offsets map 1:1 onto the original.
pub fn strip_non_code(text: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let bytes: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut st = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match st {
            State::Code => {
                if c == '/' && next == Some('/') {
                    st = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '"' {
                    st = State::Str;
                    out.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b') && raw_str_hashes(&bytes, i).is_some() {
                    // r"…", r#"…"#, br"…" etc. Consume prefix up to the
                    // opening quote, record the hash count.
                    let (hashes, quote_at) = match raw_str_hashes(&bytes, i) {
                        Some(v) => v,
                        None => unreachable!(),
                    };
                    for _ in i..=quote_at {
                        out.push(' ');
                    }
                    i = quote_at + 1;
                    st = State::RawStr(hashes);
                } else if c == '\'' {
                    // Char literal vs lifetime. A char literal is
                    // 'x', '\n', '\u{..}' — i.e. the quote is followed by
                    // either an escape or exactly one char then a quote.
                    if next == Some('\\') {
                        // Escaped char literal: consume to closing quote.
                        out.push(' ');
                        i += 1;
                        while i < bytes.len() {
                            let d = bytes[i];
                            out.push(if d == '\n' { '\n' } else { ' ' });
                            i += 1;
                            if d == '\'' {
                                break;
                            }
                            if d == '\\' && i < bytes.len() {
                                out.push(' ');
                                i += 1; // skip escaped char
                            }
                        }
                    } else if bytes.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        out.push(' ');
                        out.push(' ');
                        out.push(' ');
                        i += 3;
                    } else {
                        // Lifetime — part of the code view.
                        out.push(c);
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                if c == '\n' {
                    out.push('\n');
                    st = State::Code;
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 1 {
                        st = State::Code;
                    } else {
                        st = State::BlockComment(depth - 1);
                    }
                } else if c == '/' && next == Some('*') {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    st = State::BlockComment(depth + 1);
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push(' ');
                    if let Some(d) = next {
                        out.push(if d == '\n' { '\n' } else { ' ' });
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    out.push(' ');
                    i += 1;
                    st = State::Code;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_str(&bytes, i, hashes) {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                    st = State::Code;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    out
}

/// At position `i` on `r`/`b`: if this begins a raw string literal,
/// return `(hash_count, index_of_opening_quote)`.
fn raw_str_hashes(bytes: &[char], i: usize) -> Option<(u32, usize)> {
    // Accept r, rb?, br prefixes conservatively: r…" or br…".
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        // Guard against identifiers ending in r (e.g. `var"`) — the char
        // before `i` must not be alphanumeric/underscore.
        if i > 0 {
            let p = bytes[i - 1];
            if p.is_alphanumeric() || p == '_' {
                return None;
            }
        }
        Some((hashes, j))
    } else {
        None
    }
}

/// Does the quote at `i` terminate a raw string with `hashes` hashes?
fn closes_raw_str(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Mark every line belonging to a `#[cfg(test)]` item (attribute line,
/// item header, and the full brace-balanced body).
fn mark_test_regions(code_lines: &[String]) -> Vec<bool> {
    // A file-level `#![cfg(test)]` inner attribute marks the whole file:
    // it's how an out-of-line test-only module (declared `#[cfg(test)]
    // mod x;` in its parent, e.g. flowtune-sched's equivalence suite)
    // carries its gate where this per-file scan can see it.
    if code_lines.iter().any(|l| l.contains("#![cfg(test)]")) {
        return vec![true; code_lines.len()];
    }
    let mut marks = vec![false; code_lines.len()];
    let mut i = 0;
    while i < code_lines.len() {
        if code_lines[i].contains("#[cfg(test)]") {
            // Mark from the attribute until the item's braces balance.
            let mut depth: i64 = 0;
            let mut seen_open = false;
            let mut j = i;
            while j < code_lines.len() {
                marks[j] = true;
                for c in code_lines[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            seen_open = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if seen_open && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    marks
}

/// Parse `// flowtune-allow(<rule>): <reason>` waivers. A reason is
/// mandatory — a waiver without one is ignored (and the violation it
/// failed to cover will surface). Each waiver covers its own line and
/// the next line.
fn collect_waivers(raw_lines: &[String]) -> BTreeMap<String, BTreeSet<usize>> {
    let mut map: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    for (idx, line) in raw_lines.iter().enumerate() {
        let mut rest = line.as_str();
        while let Some(pos) = rest.find("flowtune-allow(") {
            rest = &rest[pos + "flowtune-allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_owned();
            let after = &rest[close + 1..];
            let reason_ok =
                after.trim_start().starts_with(':') && !after.trim_start()[1..].trim().is_empty();
            if !rule.is_empty() && reason_ok {
                let entry = map.entry(rule).or_default();
                entry.insert(idx);
                entry.insert(idx + 1);
            }
            rest = after;
        }
    }
    map
}

/// Token-level word match: `needle` occurs in `haystack` with no
/// identifier character (alphanumeric or `_`) adjacent on either side.
/// `needle` itself may contain `::` for path patterns.
pub fn contains_token(haystack: &str, needle: &str) -> bool {
    find_token(haystack, needle).is_some()
}

/// Position of the first token-level match, if any.
pub fn find_token(haystack: &str, needle: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !haystack[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = abs + needle.len();
        let after_ok = end >= haystack.len()
            || !haystack[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip_non_code("let x = 1; // HashMap here\n/* Instant::now() */ let y = 2;");
        assert!(!s.contains("HashMap"));
        assert!(!s.contains("Instant"));
        assert!(s.contains("let x = 1;"));
        assert!(s.contains("let y = 2;"));
    }

    #[test]
    fn strips_strings_and_chars_but_not_lifetimes() {
        let s =
            strip_non_code("fn f<'a>(x: &'a str) { let c = 'x'; let s = \"unwrap() inside\"; }");
        assert!(s.contains("fn f<'a>(x: &'a str)"));
        assert!(!s.contains("unwrap"));
        assert!(!s.contains('x') || !s.contains("'x'"));
    }

    #[test]
    fn strips_raw_strings_with_hashes() {
        let s = strip_non_code("let s = r#\"panic!(\"boom\")\"#; let t = 3;");
        assert!(!s.contains("panic"));
        assert!(s.contains("let t = 3;"));
    }

    #[test]
    fn nested_block_comments() {
        let s = strip_non_code("/* outer /* inner unwrap() */ still */ let z = 1;");
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let z = 1;"));
    }

    #[test]
    fn preserves_line_count() {
        let text = "a\n\"multi\nline\nstring\"\nb\n";
        assert_eq!(strip_non_code(text).lines().count(), text.lines().count());
    }

    #[test]
    fn marks_cfg_test_regions() {
        let code = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n";
        let lines: Vec<String> = code.lines().map(str::to_owned).collect();
        let marks = mark_test_regions(&lines);
        assert_eq!(marks, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn inner_cfg_test_attribute_marks_whole_file() {
        let code = "//! docs\n#![cfg(test)]\nfn helper() {}\nfn t() {}\n";
        let lines: Vec<String> = code.lines().map(str::to_owned).collect();
        assert_eq!(mark_test_regions(&lines), vec![true; 4]);
    }

    #[test]
    fn waiver_requires_reason_and_covers_next_line() {
        let lines: Vec<String> = vec![
            "// flowtune-allow(panic-hygiene): invariant upheld by caller".into(),
            "x.unwrap();".into(),
            "// flowtune-allow(panic-hygiene)".into(), // no reason -> ignored
            "y.unwrap();".into(),
        ];
        let w = collect_waivers(&lines);
        let set = &w["panic-hygiene"];
        assert!(set.contains(&0) && set.contains(&1));
        assert!(!set.contains(&3));
    }

    #[test]
    fn token_matching_respects_word_boundaries() {
        assert!(contains_token("let m: HashMap<u32, u32> = x;", "HashMap"));
        assert!(!contains_token("let m = MyHashMapLike::new();", "HashMap"));
        assert!(!contains_token("x.unwrap_or(0)", "unwrap()"));
        assert!(contains_token("std::env::var(k)", "std::env"));
    }
}
