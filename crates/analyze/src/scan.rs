//! Source loading and lexical preprocessing.
//!
//! The analyzer is deliberately *not* a parser: rules match the token
//! stream of a "code view" of each file in which comments, string
//! literals, and char literals have been blanked out. That keeps the
//! engine dependency-free (no `syn`) while eliminating the classic grep
//! false positives (a banned token inside a doc comment or a log
//! message). The stripping pass is a small character-level state machine
//! that understands nested block comments, escape sequences, raw strings
//! (`r"…"`, `r#"…"#`), byte strings/chars, and the char-literal/lifetime
//! ambiguity. A second "comment view" produced by the same pass keeps
//! *only* the text of plain `//` comments — the one place a
//! `flowtune-allow` waiver may legally live — so waivers quoted in doc
//! comments or string literals are no longer collected as real.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token};
use crate::model::FileModel;

/// Which compilation target a file belongs to — rules scope themselves
/// by kind (e.g. panic hygiene applies to library code only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` excluding `src/bin/**` and `src/main.rs`.
    Lib,
    /// `src/bin/**` or `src/main.rs` — CLI entry points.
    Bin,
    /// `tests/**`, `benches/**`, `examples/**` (including workspace-level
    /// targets referenced from a crate manifest).
    Test,
}

/// One `flowtune-allow(<rule>)` declaration found in a plain comment.
///
/// The engine's stale-waiver audit consumes these: a declaration whose
/// covered lines never suppressed a finding for its rule is itself a
/// diagnostic.
#[derive(Debug, Clone)]
pub struct WaiverDecl {
    pub rule: String,
    /// 0-based line the waiver comment sits on.
    pub line: usize,
    /// Whether the mandatory `: <reason>` was present. Reason-less
    /// waivers suppress nothing.
    pub has_reason: bool,
}

/// A loaded source file: raw text, stripped code view, token stream,
/// item model, and the waivers declared in its comments.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the scanned workspace root, `/`-separated.
    pub rel: String,
    pub kind: FileKind,
    /// Original lines (comments intact).
    pub raw_lines: Vec<String>,
    /// Lines with comments/strings/chars blanked to spaces.
    pub code_lines: Vec<String>,
    /// Token stream over `code_lines` (tokens never span lines).
    pub tokens: Vec<Token>,
    /// Item model: fn/impl/mod boundaries and structural `#[cfg(test)]`
    /// scoping derived from the token stream.
    pub model: FileModel,
    /// `true` for lines inside a `#[cfg(test)]` item (from the model).
    pub test_lines: Vec<bool>,
    /// Every waiver declaration, in source order (reasoned or not).
    pub waiver_decls: Vec<WaiverDecl>,
    /// rule name -> covered 0-based line -> declaring lines.
    waivers: BTreeMap<String, BTreeMap<usize, Vec<usize>>>,
}

impl SourceFile {
    pub fn load(path: &Path, rel: String, kind: FileKind) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        Ok(SourceFile::from_text(&text, path.to_path_buf(), rel, kind))
    }

    /// Build a `SourceFile` from in-memory text (also used by tests).
    pub fn from_text(text: &str, path: PathBuf, rel: String, kind: FileKind) -> SourceFile {
        let views = strip_views(text);
        let raw_lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let code_lines: Vec<String> = views.code.lines().map(str::to_owned).collect();
        let comment_lines: Vec<String> = views.comment.lines().map(str::to_owned).collect();
        let tokens = lex(&code_lines);
        let model = FileModel::build(&tokens, raw_lines.len());
        let test_lines = model.test_lines.clone();
        let (waivers, waiver_decls) = collect_waivers(&comment_lines);
        SourceFile {
            path,
            rel,
            kind,
            raw_lines,
            code_lines,
            tokens,
            model,
            test_lines,
            waiver_decls,
            waivers,
        }
    }

    /// Is the given 0-based line waived for `rule`? A waiver comment
    /// covers its own line and the line immediately below it, so both
    /// trailing (`stmt; // flowtune-allow(...)`) and preceding
    /// (comment-only line above the statement) placements work.
    pub fn is_waived(&self, rule: &str, line_idx: usize) -> bool {
        self.waivers
            .get(rule)
            .is_some_and(|m| m.contains_key(&line_idx))
    }

    /// 0-based lines of the waiver declarations covering `line_idx` for
    /// `rule` (empty when the line is not waived).
    pub fn waiver_decl_lines(&self, rule: &str, line_idx: usize) -> &[usize] {
        self.waivers
            .get(rule)
            .and_then(|m| m.get(&line_idx))
            .map_or(&[], Vec::as_slice)
    }

    /// Convenience: is this line library (non-test) code?
    pub fn is_test_line(&self, line_idx: usize) -> bool {
        self.test_lines.get(line_idx).copied().unwrap_or(false)
    }
}

/// The two line-preserving projections of a source text.
#[derive(Debug)]
pub struct Views {
    /// Comments, strings, and char literals blanked to spaces.
    pub code: String,
    /// Everything blanked *except* the text of plain `//` comments.
    /// Doc comments (`///`, `//!`), block comments, and string contents
    /// are spaces here — so a waiver is only real in a plain comment.
    pub comment: String,
}

/// Blank out comments, strings, and char literals, preserving length and
/// line structure so byte offsets map 1:1 onto the original.
pub fn strip_non_code(text: &str) -> String {
    strip_views(text).code
}

/// One pass of the stripping state machine, producing both views.
pub fn strip_views(text: &str) -> Views {
    enum State {
        Code,
        /// `doc` is true for `///` and `//!` comments, which are
        /// rendered documentation, not annotations on the line below.
        LineComment {
            doc: bool,
        },
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let bytes: Vec<char> = text.chars().collect();
    let mut code = String::with_capacity(text.len());
    let mut comment = String::with_capacity(text.len());
    // Push one char to the code view and its blank to the comment view.
    let both = |code: &mut String, comment: &mut String, c: char| {
        code.push(c);
        comment.push(if c == '\n' { '\n' } else { ' ' });
    };
    let mut st = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match st {
            State::Code => {
                if c == '/' && next == Some('/') {
                    let doc = matches!(bytes.get(i + 2), Some('/') | Some('!'));
                    st = State::LineComment { doc };
                    both(&mut code, &mut comment, ' ');
                    both(&mut code, &mut comment, ' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = State::BlockComment(1);
                    both(&mut code, &mut comment, ' ');
                    both(&mut code, &mut comment, ' ');
                    i += 2;
                } else if c == '"' {
                    st = State::Str;
                    both(&mut code, &mut comment, ' ');
                    i += 1;
                } else if (c == 'r' || c == 'b') && raw_str_hashes(&bytes, i).is_some() {
                    // r"…", r#"…"#, br"…" etc. Consume prefix up to the
                    // opening quote, record the hash count.
                    let (hashes, quote_at) = match raw_str_hashes(&bytes, i) {
                        Some(v) => v,
                        None => unreachable!(),
                    };
                    for _ in i..=quote_at {
                        both(&mut code, &mut comment, ' ');
                    }
                    i = quote_at + 1;
                    st = State::RawStr(hashes);
                } else if c == 'b'
                    && matches!(next, Some('\'') | Some('"'))
                    && (i == 0 || !is_ident_char(bytes[i - 1]))
                {
                    // Byte literal prefix (b'x', b"…"): blank the `b` so
                    // it doesn't survive as a stray identifier; the
                    // quote is handled on the next iteration.
                    both(&mut code, &mut comment, ' ');
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime. A char literal is
                    // 'x', '\n', '\u{..}' — i.e. the quote is followed by
                    // either an escape or exactly one char then a quote.
                    if next == Some('\\') {
                        // Escaped char literal: consume to closing quote.
                        both(&mut code, &mut comment, ' ');
                        i += 1;
                        while i < bytes.len() {
                            let d = bytes[i];
                            both(&mut code, &mut comment, if d == '\n' { '\n' } else { ' ' });
                            i += 1;
                            if d == '\'' {
                                break;
                            }
                            if d == '\\' && i < bytes.len() {
                                let e = bytes[i];
                                both(&mut code, &mut comment, if e == '\n' { '\n' } else { ' ' });
                                i += 1; // skip escaped char
                            }
                        }
                    } else if bytes.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        for _ in 0..3 {
                            both(&mut code, &mut comment, ' ');
                        }
                        i += 3;
                    } else {
                        // Lifetime — part of the code view.
                        both(&mut code, &mut comment, c);
                        i += 1;
                    }
                } else {
                    both(&mut code, &mut comment, c);
                    i += 1;
                }
            }
            State::LineComment { doc } => {
                if c == '\n' {
                    code.push('\n');
                    comment.push('\n');
                    st = State::Code;
                } else {
                    code.push(' ');
                    comment.push(if doc { ' ' } else { c });
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    both(&mut code, &mut comment, ' ');
                    both(&mut code, &mut comment, ' ');
                    i += 2;
                    if depth == 1 {
                        st = State::Code;
                    } else {
                        st = State::BlockComment(depth - 1);
                    }
                } else if c == '/' && next == Some('*') {
                    both(&mut code, &mut comment, ' ');
                    both(&mut code, &mut comment, ' ');
                    i += 2;
                    st = State::BlockComment(depth + 1);
                } else {
                    both(&mut code, &mut comment, if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    both(&mut code, &mut comment, ' ');
                    if let Some(d) = next {
                        both(&mut code, &mut comment, if d == '\n' { '\n' } else { ' ' });
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    both(&mut code, &mut comment, ' ');
                    i += 1;
                    st = State::Code;
                } else {
                    both(&mut code, &mut comment, if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_str(&bytes, i, hashes) {
                    for _ in 0..=hashes {
                        both(&mut code, &mut comment, ' ');
                    }
                    i += 1 + hashes as usize;
                    st = State::Code;
                } else {
                    both(&mut code, &mut comment, if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    Views { code, comment }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// At position `i` on `r`/`b`: if this begins a raw string literal,
/// return `(hash_count, index_of_opening_quote)`.
fn raw_str_hashes(bytes: &[char], i: usize) -> Option<(u32, usize)> {
    // Accept r, rb?, br prefixes conservatively: r…" or br…".
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        // Guard against identifiers ending in r (e.g. `var"`) — the char
        // before `i` must not be alphanumeric/underscore.
        if i > 0 && is_ident_char(bytes[i - 1]) {
            return None;
        }
        Some((hashes, j))
    } else {
        None
    }
}

/// Does the quote at `i` terminate a raw string with `hashes` hashes?
fn closes_raw_str(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Parse `// flowtune-allow(<rule>): <reason>` waivers from the comment
/// view (plain `//` comments only — a waiver quoted in a doc comment or
/// a string literal is not a waiver). A reason is mandatory — a waiver
/// without one suppresses nothing (and surfaces in the stale-waiver
/// audit). Each waiver covers its own line and the next line.
#[allow(clippy::type_complexity)]
fn collect_waivers(
    comment_lines: &[String],
) -> (
    BTreeMap<String, BTreeMap<usize, Vec<usize>>>,
    Vec<WaiverDecl>,
) {
    let mut map: BTreeMap<String, BTreeMap<usize, Vec<usize>>> = BTreeMap::new();
    let mut decls = Vec::new();
    for (idx, line) in comment_lines.iter().enumerate() {
        let mut rest = line.as_str();
        while let Some(pos) = rest.find("flowtune-allow(") {
            rest = &rest[pos + "flowtune-allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_owned();
            let after = &rest[close + 1..];
            let reason_ok =
                after.trim_start().starts_with(':') && !after.trim_start()[1..].trim().is_empty();
            if !rule.is_empty() {
                if reason_ok {
                    let entry = map.entry(rule.clone()).or_default();
                    entry.entry(idx).or_default().push(idx);
                    entry.entry(idx + 1).or_default().push(idx);
                }
                decls.push(WaiverDecl {
                    rule,
                    line: idx,
                    has_reason: reason_ok,
                });
            }
            rest = after;
        }
    }
    (map, decls)
}

/// Token-level word match: `needle` occurs in `haystack` with no
/// identifier character (alphanumeric or `_`) adjacent on either side.
/// `needle` itself may contain `::` for path patterns.
pub fn contains_token(haystack: &str, needle: &str) -> bool {
    find_token(haystack, needle).is_some()
}

/// Position of the first token-level match, if any.
pub fn find_token(haystack: &str, needle: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !haystack[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = abs + needle.len();
        let after_ok = end >= haystack.len()
            || !haystack[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip_non_code("let x = 1; // HashMap here\n/* Instant::now() */ let y = 2;");
        assert!(!s.contains("HashMap"));
        assert!(!s.contains("Instant"));
        assert!(s.contains("let x = 1;"));
        assert!(s.contains("let y = 2;"));
    }

    #[test]
    fn strips_strings_and_chars_but_not_lifetimes() {
        let s =
            strip_non_code("fn f<'a>(x: &'a str) { let c = 'x'; let s = \"unwrap() inside\"; }");
        assert!(s.contains("fn f<'a>(x: &'a str)"));
        assert!(!s.contains("unwrap"));
        assert!(!s.contains('x') || !s.contains("'x'"));
    }

    #[test]
    fn strips_raw_strings_with_hashes() {
        let s = strip_non_code("let s = r#\"panic!(\"boom\")\"#; let t = 3;");
        assert!(!s.contains("panic"));
        assert!(s.contains("let t = 3;"));
    }

    #[test]
    fn nested_block_comments() {
        let s = strip_non_code("/* outer /* inner unwrap() */ still */ let z = 1;");
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let z = 1;"));
    }

    #[test]
    fn deeply_nested_block_comments_unwind_fully() {
        let s = strip_non_code("/*1/*2/*3/*4/*5 panic!() */4*/3*/2*/1*/ let ok = 1;");
        assert!(!s.contains("panic"));
        assert!(s.contains("let ok = 1;"));
    }

    #[test]
    fn preserves_line_count() {
        let text = "a\n\"multi\nline\nstring\"\nb\n";
        assert_eq!(strip_non_code(text).lines().count(), text.lines().count());
    }

    #[test]
    fn byte_literals_are_blanked_including_prefix() {
        let s = strip_non_code("let a = b'x'; let s = b\"unwrap()\"; let blob = 1;");
        assert!(!s.contains("unwrap"));
        // The `b` prefix must not survive as a stray identifier...
        assert!(s.contains("let a =  "), "got: {s:?}");
        // ...while identifiers starting with b are untouched.
        assert!(s.contains("let blob = 1;"));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let s = strip_non_code("let q = '\\''; let r = 1;");
        assert!(s.contains("let r = 1;"), "got: {s:?}");
        assert!(!s.contains('\''), "quote leaked: {s:?}");
    }

    #[test]
    fn unterminated_raw_string_at_eof_consumes_rest() {
        // Malformed input must not panic or leak the tail into code.
        let s = strip_non_code("let s = r#\"never closed unwrap()");
        assert!(!s.contains("unwrap"));
        let s2 = strip_non_code("let s = \"also open\nunwrap()");
        assert!(!s2.contains("unwrap"));
        assert_eq!(s2.lines().count(), 2);
    }

    #[test]
    fn lifetime_vs_char_after_generics() {
        let s = strip_non_code("fn f<'a, 'b>(x: &'a u8, y: &'b u8) { let c = 'c'; }");
        assert!(s.contains("<'a, 'b>"), "lifetimes must survive: {s:?}");
        assert!(s.contains("&'a u8"));
        assert!(!s.contains("'c'"), "char literal must be blanked: {s:?}");
    }

    #[test]
    fn escaped_backslash_char_literal_terminates() {
        let s = strip_non_code("let b = '\\\\'; let after = 2;");
        assert!(s.contains("let after = 2;"), "got: {s:?}");
    }

    #[test]
    fn comment_view_keeps_only_plain_line_comments() {
        let text = "\
//! doc: flowtune-allow(determinism): phantom\n\
/// also doc: flowtune-allow(determinism): phantom\n\
// real: flowtune-allow(panic-hygiene): genuine\n\
let s = \"flowtune-allow(determinism): in a string\";\n\
/* block: flowtune-allow(determinism): phantom */\n";
        let v = strip_views(text);
        assert_eq!(v.comment.matches("flowtune-allow").count(), 1);
        assert!(v.comment.contains("flowtune-allow(panic-hygiene)"));
        assert!(!v.code.contains("flowtune-allow"));
    }

    #[test]
    fn waiver_requires_reason_and_covers_next_line() {
        let lines: Vec<String> = vec![
            "// flowtune-allow(panic-hygiene): invariant upheld by caller".into(),
            "".into(),
            "// flowtune-allow(panic-hygiene)".into(), // no reason -> suppresses nothing
            "".into(),
        ];
        let (map, decls) = collect_waivers(&lines);
        let set = &map["panic-hygiene"];
        assert!(set.contains_key(&0) && set.contains_key(&1));
        assert!(!set.contains_key(&2) && !set.contains_key(&3));
        // Both declarations are recorded for the stale-waiver audit.
        assert_eq!(decls.len(), 2);
        assert!(decls[0].has_reason);
        assert!(!decls[1].has_reason);
        assert_eq!(decls[1].line, 2);
    }

    #[test]
    fn waivers_in_docs_and_strings_are_phantom() {
        let text = "\
//! // flowtune-allow(determinism): doc example\n\
fn f() {\n\
    let s = \"flowtune-allow(ordered-iteration): stringly\";\n\
}\n";
        let f = SourceFile::from_text(text, PathBuf::from("x.rs"), "x.rs".into(), FileKind::Lib);
        assert!(f.waiver_decls.is_empty());
        assert!(!f.is_waived("determinism", 0));
        assert!(!f.is_waived("ordered-iteration", 2));
    }

    #[test]
    fn source_file_exposes_tokens_and_model() {
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let f = SourceFile::from_text(text, PathBuf::from("x.rs"), "x.rs".into(), FileKind::Lib);
        assert!(f.tokens.iter().any(|t| t.is_ident("lib")));
        assert_eq!(f.test_lines, vec![false, true, true, true, true]);
        assert!(!f.is_test_line(0) && f.is_test_line(3));
    }

    #[test]
    fn waiver_decl_lines_point_at_declaration() {
        let text = "// flowtune-allow(determinism): reason here\nlet x = 1;\n";
        let f = SourceFile::from_text(text, PathBuf::from("x.rs"), "x.rs".into(), FileKind::Lib);
        assert_eq!(f.waiver_decl_lines("determinism", 1), &[0]);
        assert_eq!(f.waiver_decl_lines("determinism", 5), &[] as &[usize]);
    }

    #[test]
    fn token_matching_respects_word_boundaries() {
        assert!(contains_token("let m: HashMap<u32, u32> = x;", "HashMap"));
        assert!(!contains_token("let m = MyHashMapLike::new();", "HashMap"));
        assert!(!contains_token("x.unwrap_or(0)", "unwrap()"));
        assert!(contains_token("std::env::var(k)", "std::env"));
    }
}
