//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p flowtune-analyze                  # analyze this workspace
//! cargo run -p flowtune-analyze -- <root>        # analyze another tree
//! cargo run -p flowtune-analyze -- --list-rules  # list rules
//! cargo run -p flowtune-analyze -- --format json --baseline ANALYZE_baseline.json
//! ```
//!
//! `--format json` emits the stable `flowtune.analyze.v1` document; a
//! clean run's output is itself a valid `--baseline` file. Baselined
//! findings (matched on file + rule + message, line ignored so
//! unrelated edits don't invalidate entries) are accepted without
//! failing the run. `--rule <name>` (repeatable) narrows the report;
//! all rules still *run* so the stale-waiver audit sees the full
//! suppression record.
//!
//! Exit codes: 0 clean (warn-only and baselined findings included),
//! 1 unbaselined deny findings, 2 I/O or usage error.

use flowtune_analyze::json::{self, Json};
use flowtune_analyze::{Diagnostic, Severity};
use std::collections::BTreeSet;
use std::process::ExitCode;

struct Options {
    root: Option<String>,
    format_json: bool,
    baseline: Option<String>,
    rules: Vec<String>,
    list_rules: bool,
    help: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        format_json: false,
        baseline: None,
        rules: Vec::new(),
        list_rules: false,
        help: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => opts.help = true,
            "--list-rules" | "--rules" => opts.list_rules = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.format_json = true,
                Some("text") => opts.format_json = false,
                Some(other) => return Err(format!("unknown format `{other}` (json|text)")),
                None => return Err("--format needs a value (json|text)".to_owned()),
            },
            "--baseline" => {
                opts.baseline = Some(it.next().ok_or("--baseline needs a file path")?.to_owned());
            }
            "--rule" => {
                opts.rules
                    .push(it.next().ok_or("--rule needs a rule name")?.to_owned());
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            root => {
                if opts.root.replace(root.to_owned()).is_some() {
                    return Err("more than one ROOT argument".to_owned());
                }
            }
        }
    }
    Ok(opts)
}

/// The baseline's `(file, rule, message)` triples.
fn load_baseline(path: &str) -> Result<BTreeSet<(String, String, String)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("parsing baseline {path}: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("flowtune.analyze.v1") => {}
        other => {
            return Err(format!(
                "baseline {path}: expected schema \"flowtune.analyze.v1\", got {other:?}"
            ))
        }
    }
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("baseline {path}: missing `findings` array"))?;
    let mut set = BTreeSet::new();
    for f in findings {
        let field = |key: &str| {
            f.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("baseline {path}: finding missing `{key}`"))
        };
        set.insert((field("file")?, field("rule")?, field("message")?));
    }
    Ok(set)
}

/// Render the `flowtune.analyze.v1` document.
fn render_report(findings: &[&Diagnostic], baselined: usize) -> String {
    let (mut deny, mut warn) = (0i64, 0i64);
    let items: Vec<Json> = findings
        .iter()
        .map(|d| {
            match d.severity {
                Severity::Deny => deny += 1,
                Severity::Warn => warn += 1,
            }
            Json::Obj(vec![
                ("file".into(), Json::Str(d.file.clone())),
                ("line".into(), Json::Int(d.line as i64)),
                ("rule".into(), Json::Str(d.rule.to_owned())),
                ("severity".into(), Json::Str(d.severity.as_str().to_owned())),
                ("message".into(), Json::Str(d.message.clone())),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("flowtune.analyze.v1".into())),
        ("findings".into(), Json::Arr(items)),
        (
            "summary".into(),
            Json::Obj(vec![
                ("deny".into(), Json::Int(deny)),
                ("warn".into(), Json::Int(warn)),
                ("baselined".into(), Json::Int(baselined as i64)),
            ]),
        ),
    ]);
    doc.render()
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;
    if opts.help {
        println!(
            "flowtune-analyze: workspace invariant checker\n\n\
             usage: flowtune-analyze [OPTIONS] [ROOT]\n\n\
             options:\n\
             \x20 --format json|text     output format (default text)\n\
             \x20 --baseline FILE        accept findings listed in FILE (flowtune.analyze.v1)\n\
             \x20 --rule NAME            report only this rule (repeatable; all rules still run)\n\
             \x20 --list-rules           list rules with severity and description\n\n\
             Scans ROOT (default: this workspace) and reports invariant violations.\n\
             Waive a false positive in place with a plain comment on or above the\n\
             line: `// flowtune-allow(<rule>): <reason>`. Stale waivers are\n\
             themselves reported by the waiver-audit rule."
        );
        return Ok(ExitCode::SUCCESS);
    }
    let registry = flowtune_analyze::all_rules();
    if opts.list_rules {
        for rule in &registry {
            println!(
                "{:<20} {:<5} {}",
                rule.name(),
                rule.severity().as_str(),
                rule.description()
            );
        }
        return Ok(ExitCode::SUCCESS);
    }
    for name in &opts.rules {
        if !registry.iter().any(|r| r.name() == name.as_str()) {
            return Err(format!("unknown rule `{name}` (see --list-rules)"));
        }
    }
    let baseline = match &opts.baseline {
        Some(path) => load_baseline(path)?,
        None => BTreeSet::new(),
    };
    let root = opts
        .root
        .as_ref()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(flowtune_analyze::workspace_root);

    let diags = flowtune_analyze::check_workspace(&root)
        .map_err(|e| format!("i/o error scanning {}: {e}", root.display()))?;

    let mut baselined = 0usize;
    let reported: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| opts.rules.is_empty() || opts.rules.iter().any(|r| r == d.rule))
        .filter(|d| {
            let hit = baseline.contains(&(d.file.clone(), d.rule.to_owned(), d.message.clone()));
            baselined += usize::from(hit);
            !hit
        })
        .collect();
    let deny = reported
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();

    if opts.format_json {
        println!("{}", render_report(&reported, baselined));
    } else if reported.is_empty() {
        println!(
            "flowtune-analyze: workspace clean ({}{})",
            root.display(),
            if baselined > 0 {
                format!(", {baselined} baselined")
            } else {
                String::new()
            }
        );
    } else {
        for d in &reported {
            println!("{d}");
        }
        let warn = reported.len() - deny;
        println!("\nflowtune-analyze: {deny} deny, {warn} warn, {baselined} baselined");
    }
    Ok(if deny == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("flowtune-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
