//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p flowtune-analyze            # analyze this workspace
//! cargo run -p flowtune-analyze -- <root>  # analyze another tree
//! cargo run -p flowtune-analyze -- --rules # list rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 I/O error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "flowtune-analyze: workspace invariant checker\n\n\
             usage: flowtune-analyze [--rules] [ROOT]\n\n\
             Scans ROOT (default: this workspace) and reports violations of the\n\
             determinism, ordered-iteration, panic-hygiene, newtype-discipline,\n\
             and dep-hygiene rules. Waive a false positive in place with\n\
             `// flowtune-allow(<rule>): <reason>`."
        );
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--rules") {
        for rule in flowtune_analyze::all_rules() {
            println!("{:<20} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }
    let root = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(flowtune_analyze::workspace_root);

    match flowtune_analyze::check_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("flowtune-analyze: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("\nflowtune-analyze: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!(
                "flowtune-analyze: i/o error scanning {}: {e}",
                root.display()
            );
            ExitCode::from(2)
        }
    }
}
