//! Token stream over the stripped "code view".
//!
//! [`crate::scan::strip_non_code`] blanks comments, strings, and char
//! literals while preserving line structure, so lexing the result is a
//! small, honest job: identifiers, numbers, lifetimes, and punctuation,
//! each carrying a span (0-based line, char column). Rules match token
//! sequences instead of substrings, which kills the remaining grep
//! false-positive class (`MyHashMapLike`, `unwrap_or`) without pulling
//! in a real parser.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `as`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — char literals are already blanked.
    Lifetime,
    /// Numeric literal, including suffixes (`1_000u64`, `0xFF`, `1.5`).
    Number,
    /// Operator or delimiter; multi-char operators (`::`, `->`, `..=`)
    /// lex as a single token.
    Punct,
}

/// One token with its position in the original file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 0-based line index (same numbering as `code_lines`).
    pub line: usize,
    /// 0-based char column of the token's first char.
    pub col: usize,
}

impl Token {
    /// Is this an identifier/keyword with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this text?
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Multi-char operators, longest first so maximal munch works by probing
/// in order.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "..", "&&", "||", "==", "!=", "<=", ">=", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex the stripped code view into a token stream. Blanked regions
/// (comments/strings/chars) contribute nothing; tokens never span lines
/// because the stripper preserves line structure.
pub fn lex(code_lines: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (line_idx, line) in code_lines.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: line_idx,
                    col: start,
                });
            } else if c.is_ascii_digit() {
                let start = i;
                // Integer part with radix prefixes and suffixes
                // (0xFF_u32, 1_000u64): any alphanumeric/underscore run.
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // Fraction: a '.' followed by a digit ('..' is a range).
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Number,
                    text: chars[start..i].iter().collect(),
                    line: line_idx,
                    col: start,
                });
            } else if c == '\'' {
                // The stripper leaves `'` only for lifetimes.
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: line_idx,
                    col: start,
                });
            } else {
                let rest: String = chars[i..].iter().collect();
                let munched = MULTI_PUNCT.iter().find(|p| rest.starts_with(**p));
                let text = match munched {
                    Some(p) => (*p).to_owned(),
                    None => c.to_string(),
                };
                let len = text.chars().count();
                out.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line: line_idx,
                    col: i,
                });
                i += len;
            }
        }
    }
    out
}

/// Does `tokens[at..]` start with the given `::`-separated ident path
/// (e.g. `"std::env"`)? Path segments must match exactly.
pub fn path_matches(tokens: &[Token], at: usize, path: &str) -> bool {
    let mut idx = at;
    let mut first = true;
    for seg in path.split("::") {
        if !first {
            if !tokens.get(idx).is_some_and(|t| t.is_punct("::")) {
                return false;
            }
            idx += 1;
        }
        if !tokens.get(idx).is_some_and(|t| t.is_ident(seg)) {
            return false;
        }
        idx += 1;
        first = false;
    }
    // A longer path (`std::env::var`) still matches its prefix, but a
    // *preceding* `::` means `at` is mid-path (`x::std::env` is not
    // `std::env`).
    at == 0 || !tokens[at - 1].is_punct("::")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_str(s: &str) -> Vec<Token> {
        let lines: Vec<String> = s.lines().map(str::to_owned).collect();
        lex(&lines)
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let t = lex_str("let x2 = 1_000u64 + 0xFF;");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x2", "=", "1_000u64", "+", "0xFF", ";"]);
        assert_eq!(t[3].kind, TokenKind::Number);
    }

    #[test]
    fn multi_char_puncts_munch_maximally() {
        let t = lex_str("a::b -> c..=d .. e");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "::", "b", "->", "c", "..=", "d", "..", "e"]);
    }

    #[test]
    fn floats_vs_ranges() {
        let t = lex_str("1.5 + 0..10");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["1.5", "+", "0", "..", "10"]);
    }

    #[test]
    fn lifetimes_lex_as_one_token() {
        let t = lex_str("fn f<'a>(x: &'a str)");
        assert!(t
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn spans_point_at_line_and_col() {
        let t = lex_str("ab\n  cd");
        assert_eq!((t[0].line, t[0].col), (0, 0));
        assert_eq!((t[1].line, t[1].col), (1, 2));
    }

    #[test]
    fn path_matching() {
        let t = lex_str("use std::env::var; x::std::env;");
        assert!(path_matches(&t, 1, "std::env"));
        // `x::std::env` — the std at index 8 is mid-path.
        let std_positions: Vec<usize> = t
            .iter()
            .enumerate()
            .filter(|(_, tok)| tok.is_ident("std"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(std_positions.len(), 2);
        assert!(!path_matches(&t, std_positions[1], "std::env"));
    }
}
