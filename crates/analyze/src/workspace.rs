//! Workspace discovery: find member crates, parse their manifests
//! (a minimal line-oriented TOML subset — section headers and
//! `key = value` pairs), and load every Rust source file attached to
//! each crate.

use crate::scan::{FileKind, SourceFile};
use std::path::{Path, PathBuf};

/// A declared dependency: name plus the manifest line it appears on
/// (1-based), so dep-hygiene diagnostics point at the exact line.
#[derive(Debug, Clone)]
pub struct Dep {
    pub name: String,
    pub line: usize,
}

/// One workspace member with its parsed manifest and loaded sources.
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name from `[package] name = "…"`.
    pub name: String,
    /// Manifest path relative to the workspace root.
    pub manifest_rel: String,
    pub deps: Vec<Dep>,
    pub dev_deps: Vec<Dep>,
    pub files: Vec<SourceFile>,
}

/// A non-Rust file the rules cross-reference (golden fixtures, the CI
/// driver script).
#[derive(Debug)]
pub struct AuxFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    pub text: String,
}

/// The scanned workspace: every member crate under `<root>/crates/`,
/// plus the auxiliary files rules cross-reference.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub crates: Vec<CrateInfo>,
    /// Files under `<root>/tests/golden/`, sorted by path.
    pub goldens: Vec<AuxFile>,
    /// Committed perf baselines: `<root>/BENCH_*.json`, sorted by path.
    pub baselines: Vec<AuxFile>,
    /// `<root>/ci/check.sh`, when present.
    pub check_script: Option<AuxFile>,
}

impl Workspace {
    /// Discover and load all member crates under `root/crates/*`.
    ///
    /// Directories named `fixtures` are skipped while walking crate
    /// sources — the analyzer's own test fixtures are intentionally
    /// full of violations and must not count against the real tree.
    pub fn discover(root: &Path) -> std::io::Result<Workspace> {
        let crates_dir = root.join("crates");
        let mut members: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.is_dir() && dir.join("Cargo.toml").is_file() {
                members.push(dir);
            }
        }
        members.sort();
        let mut crates = Vec::new();
        for dir in members {
            crates.push(load_crate(root, &dir)?);
        }

        let mut goldens = Vec::new();
        let golden_dir = root.join("tests/golden");
        if golden_dir.is_dir() {
            let mut paths: Vec<PathBuf> = std::fs::read_dir(&golden_dir)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|e| e.path())
                .filter(|p| p.is_file())
                .collect();
            paths.sort();
            for p in paths {
                goldens.push(AuxFile {
                    rel: rel_to(root, &p),
                    text: std::fs::read_to_string(&p)?,
                });
            }
        }
        let mut baselines = Vec::new();
        let mut bench_paths: Vec<PathBuf> = std::fs::read_dir(root)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| {
                p.is_file()
                    && p.file_name().is_some_and(|f| {
                        let f = f.to_string_lossy();
                        f.starts_with("BENCH_") && f.ends_with(".json")
                    })
            })
            .collect();
        bench_paths.sort();
        for p in bench_paths {
            baselines.push(AuxFile {
                rel: rel_to(root, &p),
                text: std::fs::read_to_string(&p)?,
            });
        }

        let check_path = root.join("ci/check.sh");
        let check_script = if check_path.is_file() {
            Some(AuxFile {
                rel: rel_to(root, &check_path),
                text: std::fs::read_to_string(&check_path)?,
            })
        } else {
            None
        };

        Ok(Workspace {
            root: root.to_path_buf(),
            crates,
            goldens,
            baselines,
            check_script,
        })
    }

    /// The golden file with this root-relative path, if present.
    pub fn golden(&self, rel: &str) -> Option<&AuxFile> {
        self.goldens.iter().find(|g| g.rel == rel)
    }

    /// The committed perf baseline with this root-relative name, if
    /// present.
    pub fn baseline(&self, rel: &str) -> Option<&AuxFile> {
        self.baselines.iter().find(|b| b.rel == rel)
    }
}

fn load_crate(root: &Path, dir: &Path) -> std::io::Result<CrateInfo> {
    let manifest_path = dir.join("Cargo.toml");
    let manifest = std::fs::read_to_string(&manifest_path)?;
    let parsed = parse_manifest(&manifest);

    let mut files = Vec::new();
    // src/: Lib, except src/bin/** and src/main.rs which are Bin.
    collect_rs(&dir.join("src"), &mut |p| {
        let kind = if p.components().any(|c| c.as_os_str() == "bin")
            || p.file_name().is_some_and(|f| f == "main.rs")
        {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        (kind, p.to_path_buf())
    })?
    .into_iter()
    .for_each(|f| files.push(f));
    for sub in ["tests", "benches", "examples"] {
        collect_rs(&dir.join(sub), &mut |p| (FileKind::Test, p.to_path_buf()))?
            .into_iter()
            .for_each(|f| files.push(f));
    }
    // Out-of-tree targets referenced by path (e.g. flowtune-core's
    // workspace-level tests/ and examples/).
    for target in &parsed.target_paths {
        let p = normalize(&dir.join(target));
        if p.extension().is_some_and(|e| e == "rs") && p.is_file() {
            files.push((FileKind::Test, p));
        }
    }

    files.sort_by(|a, b| a.1.cmp(&b.1));
    files.dedup_by(|a, b| a.1 == b.1);
    let mut sources = Vec::new();
    for (kind, path) in files {
        let rel = rel_to(root, &path);
        sources.push(SourceFile::load(&path, rel, kind)?);
    }

    Ok(CrateInfo {
        name: parsed.name,
        manifest_rel: rel_to(root, &manifest_path),
        deps: parsed.deps,
        dev_deps: parsed.dev_deps,
        files: sources,
    })
}

/// Recursively collect `.rs` files under `dir` (if it exists), skipping
/// `fixtures` directories. Returns `(kind, path)` pairs via `classify`.
fn collect_rs(
    dir: &Path,
    classify: &mut dyn FnMut(&Path) -> (FileKind, PathBuf),
) -> std::io::Result<Vec<(FileKind, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let p = entry?.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|f| f == "fixtures") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(classify(&p));
            }
        }
    }
    Ok(out)
}

struct ParsedManifest {
    name: String,
    deps: Vec<Dep>,
    dev_deps: Vec<Dep>,
    /// `path = "…"` values from `[[test]]` / `[[example]]` / `[[bench]]`.
    target_paths: Vec<String>,
}

/// Line-oriented parse of the few manifest shapes this workspace uses.
fn parse_manifest(text: &str) -> ParsedManifest {
    let mut section = String::new();
    let mut name = String::new();
    let mut deps = Vec::new();
    let mut dev_deps = Vec::new();
    let mut target_paths = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        match section.as_str() {
            "package" if key == "name" => {
                name = value.trim_matches('"').to_owned();
            }
            "dependencies" => deps.push(Dep {
                name: key.to_owned(),
                line: idx + 1,
            }),
            "dev-dependencies" => dev_deps.push(Dep {
                name: key.to_owned(),
                line: idx + 1,
            }),
            "test" | "example" | "bench" if key == "path" => {
                target_paths.push(value.trim_matches('"').to_owned());
            }
            _ => {}
        }
    }
    ParsedManifest {
        name,
        deps,
        dev_deps,
        target_paths,
    }
}

/// `path` relative to `root`, `/`-separated; falls back to the absolute
/// path display when `path` is outside `root`.
pub fn rel_to(root: &Path, path: &Path) -> String {
    let norm = normalize(path);
    let root = normalize(root);
    match norm.strip_prefix(&root) {
        Ok(r) => r
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/"),
        Err(_) => norm.display().to_string(),
    }
}

/// Resolve `..` / `.` components without touching the filesystem.
fn normalize(p: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for c in p.components() {
        match c {
            std::path::Component::ParentDir => {
                out.pop();
            }
            std::path::Component::CurDir => {}
            other => out.push(other.as_os_str()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_package_deps_and_target_paths() {
        let m = parse_manifest(
            r#"
[package]
name = "flowtune-core"

[dependencies]
flowtune-common = { workspace = true }
rand = "0.8"

[dev-dependencies]
proptest = "1"

[[test]]
name = "end_to_end"
path = "../../tests/end_to_end.rs"
"#,
        );
        assert_eq!(m.name, "flowtune-core");
        assert_eq!(
            m.deps.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
            ["flowtune-common", "rand"]
        );
        assert_eq!(m.dev_deps[0].name, "proptest");
        assert_eq!(m.target_paths, ["../../tests/end_to_end.rs"]);
    }

    #[test]
    fn rel_to_normalizes_parent_components() {
        let root = Path::new("/w");
        let p = Path::new("/w/crates/core/../../tests/x.rs");
        assert_eq!(rel_to(root, p), "tests/x.rs");
    }
}
