//! Lightweight item model over the token stream.
//!
//! Not a Rust parser — just enough structure for rules to scope
//! themselves: item boundaries (`fn` / `impl` / `mod` / `struct` /
//! `enum` / `trait`) with line extents, and *structural* `#[cfg(test)]`
//! scoping. The attribute is matched as a token sequence and attached to
//! the item that follows it, whose extent is found by brace matching —
//! so `#[cfg(test)] mod x;` covers exactly the declaration (the old
//! per-line heuristic bled into whatever item came next), and an inner
//! `#![cfg(test)]` marks the whole file.

use crate::lexer::{Token, TokenKind};

/// Kinds of items the model tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Impl,
    Mod,
    Struct,
    Enum,
    Trait,
    /// `use` / `static` / `type` declarations — tracked so a
    /// `#[cfg(test)]` gate on them covers exactly the declaration.
    Decl,
}

impl ItemKind {
    fn from_keyword(kw: &str) -> Option<ItemKind> {
        Some(match kw {
            "fn" => ItemKind::Fn,
            "impl" => ItemKind::Impl,
            "mod" => ItemKind::Mod,
            "struct" => ItemKind::Struct,
            "enum" => ItemKind::Enum,
            "trait" => ItemKind::Trait,
            "use" | "static" | "type" => ItemKind::Decl,
            _ => return None,
        })
    }
}

/// One item: kind, best-effort name, line extent, and whether it (or an
/// enclosing item) is gated `#[cfg(test)]`.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// First identifier after the keyword (`None` for a bare `impl`).
    pub name: Option<String>,
    /// 0-based line of the item keyword (or its first attribute).
    pub start_line: usize,
    /// 0-based line of the closing brace / semicolon (inclusive).
    pub end_line: usize,
    /// Nesting depth: 0 for top-level items.
    pub depth: usize,
    pub cfg_test: bool,
}

/// The parsed file model: a flat item list (in source order) plus the
/// per-line `#[cfg(test)]` map the rules consume.
#[derive(Debug, Default)]
pub struct FileModel {
    pub items: Vec<Item>,
    pub test_lines: Vec<bool>,
}

impl FileModel {
    /// Build the model. `n_lines` bounds the `test_lines` map.
    pub fn build(tokens: &[Token], n_lines: usize) -> FileModel {
        let mut model = FileModel {
            items: Vec::new(),
            test_lines: vec![false; n_lines],
        };
        // Inner `#![cfg(test)]` anywhere at the top marks the whole
        // file: how an out-of-line test-only module (declared
        // `#[cfg(test)] mod x;` in its parent) carries its gate where a
        // per-file scan can see it.
        let mut i = 0;
        while i < tokens.len() {
            if tokens[i].is_punct("#")
                && tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && attr_is_cfg_test(tokens, i + 2)
            {
                model.test_lines = vec![true; n_lines];
                break;
            }
            i += 1;
        }
        let mut idx = 0;
        parse_items(tokens, &mut idx, false, 0, &mut model);
        model
    }

    /// The innermost item containing the 0-based line, if any.
    pub fn item_at(&self, line: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.start_line <= line && line <= it.end_line)
            .max_by_key(|it| it.depth)
    }
}

/// Does an attribute body starting at `tokens[at]` (expected `[`) read
/// exactly `[cfg(test)]`?
fn attr_is_cfg_test(tokens: &[Token], at: usize) -> bool {
    tokens.get(at).is_some_and(|t| t.is_punct("["))
        && tokens.get(at + 1).is_some_and(|t| t.is_ident("cfg"))
        && tokens.get(at + 2).is_some_and(|t| t.is_punct("("))
        && tokens.get(at + 3).is_some_and(|t| t.is_ident("test"))
        && tokens.get(at + 4).is_some_and(|t| t.is_punct(")"))
        && tokens.get(at + 5).is_some_and(|t| t.is_punct("]"))
}

/// Skip a bracketed attribute body `[...]`; returns the index just past
/// the closing `]`.
fn skip_attr(tokens: &[Token], mut at: usize) -> usize {
    debug_assert!(tokens.get(at).is_some_and(|t| t.is_punct("[")));
    let mut depth = 0usize;
    while at < tokens.len() {
        if tokens[at].is_punct("[") {
            depth += 1;
        } else if tokens[at].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return at + 1;
            }
        }
        at += 1;
    }
    at
}

/// Recursive-descent walk. Collects items into `model`, marking
/// `test_lines` for any item gated (directly or by inheritance) behind
/// `#[cfg(test)]`. `*idx` advances past everything consumed; recursion
/// stops at the `}` that closes the enclosing item (left unconsumed for
/// the caller).
fn parse_items(
    tokens: &[Token],
    idx: &mut usize,
    inherited_test: bool,
    depth: usize,
    model: &mut FileModel,
) {
    // Attribute state: set when `#[cfg(test)]` was seen since the last
    // item, along with the line of the first attribute (the item's
    // visual start).
    let mut pending_test = false;
    let mut attr_start: Option<usize> = None;

    while *idx < tokens.len() {
        let t = &tokens[*idx];
        if t.is_punct("}") {
            // Closes the enclosing item; caller consumes it.
            return;
        }
        if t.is_punct("#") {
            let line = t.line;
            let mut j = *idx + 1;
            if tokens.get(j).is_some_and(|t| t.is_punct("!")) {
                j += 1; // inner attribute — handled file-wide in build()
            }
            if tokens.get(j).is_some_and(|t| t.is_punct("[")) {
                if attr_is_cfg_test(tokens, j) {
                    pending_test = true;
                }
                attr_start.get_or_insert(line);
                *idx = skip_attr(tokens, j);
                continue;
            }
            *idx += 1;
            continue;
        }
        let kw = if t.kind == TokenKind::Ident {
            ItemKind::from_keyword(&t.text)
        } else {
            None
        };
        let Some(kind) = kw else {
            // Not an item keyword: any pending attribute belongs to a
            // non-item (e.g. `#[derive] let`-adjacent macro soup) — keep
            // it armed only across visibility/unsafety modifiers.
            if t.kind == TokenKind::Ident
                && !matches!(
                    t.text.as_str(),
                    "pub" | "unsafe" | "async" | "const" | "extern"
                )
            {
                pending_test = false;
                attr_start = None;
            } else if t.is_punct("{") {
                // Anonymous block (fn body handled below; this is e.g. a
                // const initializer) — descend so nested `}` pairs up.
                *idx += 1;
                parse_items(tokens, idx, inherited_test, depth, model);
                if *idx < tokens.len() {
                    *idx += 1; // consume the matching `}`
                }
                pending_test = false;
                attr_start = None;
                continue;
            }
            *idx += 1;
            continue;
        };

        // `struct`/`enum`/`trait`/`impl` keywords can also appear in
        // type position (`impl Trait`); heuristic: treat as item only at
        // statement-ish position, which this walk approximates well
        // enough for scoping purposes.
        let start_line = attr_start.unwrap_or(t.line);
        let is_test = inherited_test || pending_test;
        pending_test = false;
        attr_start = None;

        let name = tokens
            .get(*idx + 1)
            .filter(|n| n.kind == TokenKind::Ident)
            .map(|n| n.text.clone());
        *idx += 1;

        // Scan to the item's body `{` or terminating `;` at bracket
        // depth 0 (angle brackets are ignored — `<`/`>` never wrap `{`
        // or `;` in item headers).
        let mut paren = 0i64;
        let mut body_start = None;
        while *idx < tokens.len() {
            let h = &tokens[*idx];
            if h.is_punct("(") || h.is_punct("[") {
                paren += 1;
            } else if h.is_punct(")") || h.is_punct("]") {
                paren -= 1;
            } else if paren == 0 && h.is_punct(";") {
                // Declaration without body (`mod x;`, trait fn, …).
                break;
            } else if paren == 0 && h.is_punct("{") {
                body_start = Some(*idx);
                break;
            } else if paren == 0 && h.is_punct("}") {
                // Malformed header (unbalanced close) — bail to caller.
                model.push_item(kind, name, start_line, h.line, depth, is_test);
                return;
            }
            *idx += 1;
        }
        let end_line = match body_start {
            Some(open_idx) => {
                *idx = open_idx + 1;
                parse_items(tokens, idx, is_test, depth + 1, model);
                let end = tokens
                    .get(*idx)
                    .map(|t| t.line)
                    .unwrap_or_else(|| tokens.last().map(|t| t.line).unwrap_or(start_line));
                if *idx < tokens.len() {
                    *idx += 1; // consume the `}`
                }
                end
            }
            None => {
                let end = tokens
                    .get(*idx)
                    .map(|t| t.line)
                    .unwrap_or_else(|| tokens.last().map(|t| t.line).unwrap_or(start_line));
                if *idx < tokens.len() {
                    *idx += 1; // consume the `;`
                }
                end
            }
        };
        model.push_item(kind, name, start_line, end_line, depth, is_test);
    }
}

impl FileModel {
    fn push_item(
        &mut self,
        kind: ItemKind,
        name: Option<String>,
        start_line: usize,
        end_line: usize,
        depth: usize,
        cfg_test: bool,
    ) {
        if cfg_test {
            for l in start_line..=end_line.min(self.test_lines.len().saturating_sub(1)) {
                self.test_lines[l] = true;
            }
        }
        self.items.push(Item {
            kind,
            name,
            start_line,
            end_line,
            depth,
            cfg_test,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model_of(src: &str) -> FileModel {
        let lines: Vec<String> = src.lines().map(str::to_owned).collect();
        let stripped = crate::scan::strip_non_code(src);
        let code: Vec<String> = stripped.lines().map(str::to_owned).collect();
        FileModel::build(&lex(&code), lines.len())
    }

    #[test]
    fn marks_cfg_test_module_body() {
        let m =
            model_of("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n");
        assert_eq!(m.test_lines, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn out_of_line_test_mod_covers_only_its_declaration() {
        // The old per-line heuristic bled past the `;` into following
        // items; the structural model stops at the declaration.
        let m = model_of("#[cfg(test)]\nmod equivalence_tests;\npub mod hetero;\nfn f() {}\n");
        assert_eq!(m.test_lines, vec![true, true, false, false]);
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let m = model_of("//! docs\n#![cfg(test)]\nfn helper() {}\nfn t() {}\n");
        assert_eq!(m.test_lines, vec![true; 4]);
    }

    #[test]
    fn cfg_any_test_is_not_cfg_test() {
        // Conservative: only the exact `#[cfg(test)]` gate marks test
        // code; `cfg(any(test, feature = "x"))` code also ships.
        let m = model_of(
            "#[cfg(any(test, feature = \"reference\"))]\nmod reference {\n fn f() {}\n}\n",
        );
        assert_eq!(m.test_lines, vec![false; 4]);
    }

    #[test]
    fn items_have_kinds_names_and_extents() {
        let m = model_of(
            "pub struct S { x: u32 }\nimpl S {\n    pub fn get(&self) -> u32 { self.x }\n}\n",
        );
        let kinds: Vec<(ItemKind, Option<&str>)> = m
            .items
            .iter()
            .map(|i| (i.kind, i.name.as_deref()))
            .collect();
        assert!(kinds.contains(&(ItemKind::Struct, Some("S"))));
        assert!(kinds.contains(&(ItemKind::Impl, Some("S"))));
        let f = m
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Fn && i.name.as_deref() == Some("get"))
            .expect("fn item");
        assert_eq!((f.start_line, f.end_line, f.depth), (2, 2, 1));
    }

    #[test]
    fn nested_items_inherit_test_gate() {
        let m = model_of(
            "#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n",
        );
        assert!(m.test_lines.iter().take(6).all(|&b| b));
        assert!(m.items.iter().all(|i| i.cfg_test));
    }

    #[test]
    fn attribute_line_counts_as_item_start() {
        let m = model_of("fn a() {}\n#[cfg(test)]\n#[derive(Debug)]\nstruct T;\nfn b() {}\n");
        assert_eq!(m.test_lines, vec![false, true, true, true, false]);
    }

    #[test]
    fn item_at_returns_innermost() {
        let m = model_of("mod outer {\n    fn inner() {\n        let x = 1;\n    }\n}\n");
        let item = m.item_at(2).expect("line inside fn");
        assert_eq!(item.kind, ItemKind::Fn);
        assert_eq!(item.name.as_deref(), Some("inner"));
    }
}
