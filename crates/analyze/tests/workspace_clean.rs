//! The enforcement point: the real workspace must be invariant-clean.
//!
//! Because this is an ordinary integration test, plain `cargo test`
//! (the tier-1 gate) fails the moment anyone introduces an unwaivered
//! `HashMap` on the output path, a wall clock in the simulator, an
//! unwrap in core library code, a raw money/time `f64`, or a dead
//! dependency. Waivers (`// flowtune-allow(<rule>): <reason>`) are the
//! escape hatch and leave an audit trail in the diff.

#[test]
fn real_workspace_has_no_violations() {
    let root = flowtune_analyze::workspace_root();
    let diags = flowtune_analyze::check_workspace(&root).expect("workspace scans");
    assert!(
        diags.is_empty(),
        "workspace invariant violations (waive with `// flowtune-allow(<rule>): <reason>` \
         only when the invariant genuinely holds):\n{}",
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
}

#[test]
fn cli_exits_zero_on_clean_workspace() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .arg(flowtune_analyze::workspace_root())
        .status()
        .expect("spawn analyzer CLI");
    assert_eq!(
        status.code(),
        Some(0),
        "CLI must succeed on the clean workspace"
    );
}

#[test]
fn cli_passes_against_committed_baseline() {
    // The exact invocation ci/check.sh runs: JSON report gated on the
    // committed baseline. A clean tree has nothing to suppress, so the
    // committed ANALYZE_baseline.json must itself be the empty report.
    let root = flowtune_analyze::workspace_root();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .args(["--format", "json", "--baseline"])
        .arg(root.join("ANALYZE_baseline.json"))
        .arg(&root)
        .output()
        .expect("spawn analyzer CLI");
    assert_eq!(out.status.code(), Some(0), "baseline gate must pass");
    let doc = flowtune_analyze::json::parse(&String::from_utf8(out.stdout).expect("utf8"))
        .expect("valid json");
    let findings = doc
        .get("findings")
        .and_then(|f| f.as_arr())
        .expect("findings");
    assert!(findings.is_empty(), "clean tree must report no findings");
}

#[test]
fn committed_baseline_is_canonical_json() {
    // The baseline is machine-written (`--format json` output redirected
    // to a file), so it must round-trip byte-identically through the
    // parser and renderer — any hand edit that drifts from canonical
    // form shows up here rather than as a confusing baseline mismatch.
    let path = flowtune_analyze::workspace_root().join("ANALYZE_baseline.json");
    let text = std::fs::read_to_string(&path).expect("read ANALYZE_baseline.json");
    let doc = flowtune_analyze::json::parse(&text).expect("baseline parses");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("flowtune.analyze.v1")
    );
    assert_eq!(
        text,
        format!("{}\n", doc.render()),
        "baseline must stay in canonical rendered form"
    );
}

#[test]
fn waiver_budget_is_pinned() {
    // Waivers are individually justified, but their total is a budget:
    // this pin makes every new `flowtune-allow` (and every removal) an
    // explicit diff to reviewed expectations, so suppressions cannot
    // accrete silently. Update the counts when a waiver is genuinely
    // added or retired.
    let root = flowtune_analyze::workspace_root();
    let ws = flowtune_analyze::workspace::Workspace::discover(&root).expect("workspace scans");
    let mut counts: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for kr in &ws.crates {
        for file in &kr.files {
            for decl in &file.waiver_decls {
                *counts.entry(decl.rule.clone()).or_insert(0) += 1;
            }
        }
    }
    let want: std::collections::BTreeMap<String, usize> = [
        ("cast-discipline", 1),
        ("determinism", 1),
        ("golden-coverage", 3),
        ("newtype-discipline", 2),
        // +2 obs-discipline: the composite-candidate metrics in
        // crates/tuner/src/candidates.rs fire outside the pinned smoke
        // trace. +4 panic-hygiene: documented invariants in the
        // composite index/query layer (tuple.rs, composite.rs, multi.rs).
        ("obs-discipline", 15),
        ("panic-hygiene", 27),
    ]
    .into_iter()
    .map(|(r, n)| (r.to_owned(), n))
    .collect();
    assert_eq!(counts, want, "per-rule waiver budget drifted");
}
