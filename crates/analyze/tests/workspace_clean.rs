//! The enforcement point: the real workspace must be invariant-clean.
//!
//! Because this is an ordinary integration test, plain `cargo test`
//! (the tier-1 gate) fails the moment anyone introduces an unwaivered
//! `HashMap` on the output path, a wall clock in the simulator, an
//! unwrap in core library code, a raw money/time `f64`, or a dead
//! dependency. Waivers (`// flowtune-allow(<rule>): <reason>`) are the
//! escape hatch and leave an audit trail in the diff.

#[test]
fn real_workspace_has_no_violations() {
    let root = flowtune_analyze::workspace_root();
    let diags = flowtune_analyze::check_workspace(&root).expect("workspace scans");
    assert!(
        diags.is_empty(),
        "workspace invariant violations (waive with `// flowtune-allow(<rule>): <reason>` \
         only when the invariant genuinely holds):\n{}",
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
}

#[test]
fn cli_exits_zero_on_clean_workspace() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .arg(flowtune_analyze::workspace_root())
        .status()
        .expect("spawn analyzer CLI");
    assert_eq!(
        status.code(),
        Some(0),
        "CLI must succeed on the clean workspace"
    );
}
