//! Golden test over the fixture mini-workspace in `tests/fixtures/ws`.
//!
//! The fixtures deliberately violate every rule and also carry waivers
//! and `#[cfg(test)]` regions, so this test pins down the analyzer's
//! exact behaviour: what fires, what a waiver suppresses, and what test
//! code is exempt from. Any rule change that shifts a finding shows up
//! here as a precise (file, line, rule) diff.

use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn fixture_findings_match_golden_list() {
    let diags = flowtune_analyze::check_workspace(&fixture_root()).expect("fixture ws scans");
    let got: Vec<(String, usize, &str)> = diags
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect();
    let want: Vec<(String, usize, &str)> = [
        // A committed perf baseline nothing reads (the scratch-copy
        // mention in the fixture check script must not count).
        // flowtune-allow(golden-coverage): fixture-tree path literal, not a reference to a repo baseline
        ("BENCH_orphan.json", 1, "golden-coverage"),
        // The fixture check script names a golden and a perf baseline
        // that do not exist.
        ("ci/check.sh", 6, "golden-coverage"),
        ("ci/check.sh", 8, "golden-coverage"),
        // An experiment binary with neither obs_guard() nor --smoke —
        // two findings on its fn main line. The waived sibling
        // (crates/bench/src/bin/exp_waived.rs) is absent.
        ("crates/bench/src/bin/exp_bare.rs", 3, "bin-hygiene"),
        ("crates/bench/src/bin/exp_bare.rs", 3, "bin-hygiene"),
        // A raw `as f64` on a quanta ident; the waived cast (line 6)
        // and the #[cfg(test)] cast (line 15) are absent.
        ("crates/cloud/src/billing.rs", 4, "cast-discipline"),
        // Ambient entropy in the cloud fixture's fault stream; the
        // waived SystemTime (line 12) and the #[cfg(test)] env lookup
        // (line 18) are absent.
        ("crates/cloud/src/fault.rs", 4, "determinism"),
        ("crates/cloud/src/fault.rs", 8, "determinism"),
        // The waiver-audit fixture: a stale determinism waiver, a
        // typo'd rule name, and a reason-less waiver. The stale
        // ordered-iteration waiver at line 15 is absent — the
        // waiver-audit waiver directly above it suppresses the finding
        // and is thereby used itself.
        ("crates/cloud/src/stale.rs", 3, "waiver-audit"),
        ("crates/cloud/src/stale.rs", 8, "waiver-audit"),
        ("crates/cloud/src/stale.rs", 11, "waiver-audit"),
        // HashMap import and signature plus an Instant wall clock in the
        // obs fixture; the waived unwrap (line 16) and the #[cfg(test)]
        // SystemTime (line 26) are absent.
        ("crates/obs/src/lib.rs", 5, "ordered-iteration"),
        ("crates/obs/src/lib.rs", 7, "ordered-iteration"),
        ("crates/obs/src/lib.rs", 8, "determinism"),
        // Obs naming: a non-snake_case name, a dual-kind recording
        // (observe after count), and a duplicate event emission site.
        // The waived gauge recording (line 8) is absent.
        ("crates/obs/src/names.rs", 5, "obs-discipline"),
        ("crates/obs/src/names.rs", 6, "obs-discipline"),
        ("crates/obs/src/names.rs", 10, "obs-discipline"),
        // Unused dep and dev-dep in the sched fixture manifest.
        ("crates/sched/Cargo.toml", 7, "dep-hygiene"),
        ("crates/sched/Cargo.toml", 10, "dep-hygiene"),
        // Wall clock + env lookup; the waived SystemTime line is absent.
        ("crates/sched/src/lib.rs", 4, "determinism"),
        ("crates/sched/src/lib.rs", 9, "determinism"),
        // The out-of-line test module fixture
        // (crates/sched/src/equivalence_tests.rs) is wholly absent: its
        // file-level #![cfg(test)] exempts the HashMap, Instant, and
        // unwrap inside.
        //
        // Cached-state shapes of the incremental skyline search (DESIGN
        // §5f): a hash-ordered gap cache (import + field) and a
        // panicking cache fold; the waived cache lookup (line 19) and
        // the #[cfg(test)] HashMap (line 27) are absent.
        ("crates/sched/src/skyline.rs", 6, "ordered-iteration"),
        ("crates/sched/src/skyline.rs", 9, "ordered-iteration"),
        ("crates/sched/src/skyline.rs", 14, "panic-hygiene"),
        // The composite-candidate metric fixture: a malformed name
        // fires; the waived dual-kind recording of
        // `tuner.composite_candidates` (line 8) is absent.
        ("crates/tuner/src/candidates.rs", 9, "obs-discipline"),
        // HashMap import, HashMap in a signature, HashSet in a body; the
        // waived HashSet import (line 6) and the #[cfg(test)] HashMap
        // (line 28) are absent.
        ("crates/tuner/src/lib.rs", 4, "ordered-iteration"),
        ("crates/tuner/src/lib.rs", 8, "ordered-iteration"),
        // .unwrap() in lib code; the waived .expect (line 14) and the
        // unwrap inside #[cfg(test)] (line 34) are absent.
        ("crates/tuner/src/lib.rs", 9, "panic-hygiene"),
        // total_cost: f64 outside flowtune-common; the same shape inside
        // the flowtune-common fixture produces nothing.
        ("crates/tuner/src/lib.rs", 17, "newtype-discipline"),
        ("crates/tuner/src/lib.rs", 22, "ordered-iteration"),
        // A committed golden no test or check-script step reads.
        // flowtune-allow(golden-coverage): fixture-tree path literal, not a reference to a repo golden
        ("tests/golden/orphan.json", 1, "golden-coverage"),
    ]
    .into_iter()
    .map(|(f, l, r)| (f.to_owned(), l, r))
    .collect();
    assert_eq!(got, want, "fixture diagnostics drifted:\n{diags:#?}");
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let diags = flowtune_analyze::check_workspace(&fixture_root()).expect("fixture ws scans");
    let first = diags.first().expect("fixture has findings");
    let rendered = first.to_string();
    assert!(
        // flowtune-allow(golden-coverage): fixture-tree path literal, not a reference to a repo baseline
        rendered.starts_with("BENCH_orphan.json:1: [golden-coverage]"),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn cli_exits_nonzero_on_fixture_violations() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .arg(fixture_root())
        .status()
        .expect("spawn analyzer CLI");
    assert_eq!(
        status.code(),
        Some(1),
        "CLI must fail on a tree with violations"
    );
}

#[test]
fn cli_json_is_v1_schema_and_its_output_round_trips_as_baseline() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .args(["--format", "json"])
        .arg(fixture_root())
        .output()
        .expect("spawn analyzer CLI");
    assert_eq!(out.status.code(), Some(1), "fixtures have deny findings");
    let text = String::from_utf8(out.stdout).expect("utf8 json");
    let doc = flowtune_analyze::json::parse(&text).expect("valid json");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("flowtune.analyze.v1")
    );
    let findings = doc
        .get("findings")
        .and_then(|f| f.as_arr())
        .expect("findings");
    assert!(!findings.is_empty());
    for f in findings {
        for key in ["file", "rule", "severity", "message"] {
            assert!(
                f.get(key).and_then(|v| v.as_str()).is_some(),
                "missing {key}"
            );
        }
        assert!(f.get("line").and_then(|v| v.as_int()).is_some());
    }

    // A clean run's JSON doubles as a baseline: feeding the report back
    // suppresses every finding, so the same tree now exits 0.
    let baseline = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fixture_base.json");
    std::fs::write(&baseline, &text).expect("write baseline");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(fixture_root())
        .status()
        .expect("spawn analyzer CLI");
    assert_eq!(status.code(), Some(0), "fully baselined tree must pass");
}

#[test]
fn cli_rule_filter_gates_on_the_selected_rule_only() {
    // waiver-audit findings are warn severity: filtered alone they never
    // fail the run, while a deny rule still does.
    let warn_only = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .args(["--rule", "waiver-audit"])
        .arg(fixture_root())
        .status()
        .expect("spawn analyzer CLI");
    assert_eq!(warn_only.code(), Some(0));
    let deny = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .args(["--rule", "determinism"])
        .arg(fixture_root())
        .status()
        .expect("spawn analyzer CLI");
    assert_eq!(deny.code(), Some(1));
    let unknown = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .args(["--rule", "no-such-rule"])
        .arg(fixture_root())
        .status()
        .expect("spawn analyzer CLI");
    assert_eq!(unknown.code(), Some(2), "unknown rule is a usage error");
}

#[test]
fn cli_lists_all_ten_rules() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .arg("--list-rules")
        .output()
        .expect("spawn analyzer CLI");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(text.lines().count(), 10, "one line per rule:\n{text}");
    for rule in [
        "determinism",
        "ordered-iteration",
        "panic-hygiene",
        "newtype-discipline",
        "dep-hygiene",
        "cast-discipline",
        "obs-discipline",
        "golden-coverage",
        "bin-hygiene",
        "waiver-audit",
    ] {
        assert!(text.contains(rule), "missing rule {rule} in:\n{text}");
    }
}

#[test]
fn cli_exits_two_on_missing_root() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .arg(fixture_root().join("no-such-dir"))
        .status()
        .expect("spawn analyzer CLI");
    assert_eq!(
        status.code(),
        Some(2),
        "CLI must report I/O errors distinctly"
    );
}
