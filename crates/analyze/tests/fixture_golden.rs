//! Golden test over the fixture mini-workspace in `tests/fixtures/ws`.
//!
//! The fixtures deliberately violate every rule and also carry waivers
//! and `#[cfg(test)]` regions, so this test pins down the analyzer's
//! exact behaviour: what fires, what a waiver suppresses, and what test
//! code is exempt from. Any rule change that shifts a finding shows up
//! here as a precise (file, line, rule) diff.

use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn fixture_findings_match_golden_list() {
    let diags = flowtune_analyze::check_workspace(&fixture_root()).expect("fixture ws scans");
    let got: Vec<(String, usize, &str)> = diags
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect();
    let want: Vec<(String, usize, &str)> = [
        // Ambient entropy in the cloud fixture's fault stream; the
        // waived SystemTime (line 12) and the #[cfg(test)] env lookup
        // (line 18) are absent.
        ("crates/cloud/src/fault.rs", 4, "determinism"),
        ("crates/cloud/src/fault.rs", 8, "determinism"),
        // HashMap import and signature plus an Instant wall clock in the
        // obs fixture; the waived unwrap (line 16) and the #[cfg(test)]
        // SystemTime (line 26) are absent.
        ("crates/obs/src/lib.rs", 5, "ordered-iteration"),
        ("crates/obs/src/lib.rs", 7, "ordered-iteration"),
        ("crates/obs/src/lib.rs", 8, "determinism"),
        // Unused dep and dev-dep in the sched fixture manifest.
        ("crates/sched/Cargo.toml", 7, "dep-hygiene"),
        ("crates/sched/Cargo.toml", 10, "dep-hygiene"),
        // Wall clock + env lookup; the waived SystemTime line is absent.
        ("crates/sched/src/lib.rs", 4, "determinism"),
        ("crates/sched/src/lib.rs", 9, "determinism"),
        // The out-of-line test module fixture
        // (crates/sched/src/equivalence_tests.rs) is wholly absent: its
        // file-level #![cfg(test)] exempts the HashMap, Instant, and
        // unwrap inside.
        //
        // Cached-state shapes of the incremental skyline search (DESIGN
        // §5f): a hash-ordered gap cache (import + field) and a
        // panicking cache fold; the waived cache lookup (line 19) and
        // the #[cfg(test)] HashMap (line 27) are absent.
        ("crates/sched/src/skyline.rs", 6, "ordered-iteration"),
        ("crates/sched/src/skyline.rs", 9, "ordered-iteration"),
        ("crates/sched/src/skyline.rs", 14, "panic-hygiene"),
        // HashMap import, HashMap in a signature, HashSet in a body; the
        // waived HashSet import (line 6) and the #[cfg(test)] HashMap
        // (line 28) are absent.
        ("crates/tuner/src/lib.rs", 4, "ordered-iteration"),
        ("crates/tuner/src/lib.rs", 8, "ordered-iteration"),
        // .unwrap() in lib code; the waived .expect (line 14) and the
        // unwrap inside #[cfg(test)] (line 34) are absent.
        ("crates/tuner/src/lib.rs", 9, "panic-hygiene"),
        // total_cost: f64 outside flowtune-common; the same shape inside
        // the flowtune-common fixture produces nothing.
        ("crates/tuner/src/lib.rs", 17, "newtype-discipline"),
        ("crates/tuner/src/lib.rs", 22, "ordered-iteration"),
    ]
    .into_iter()
    .map(|(f, l, r)| (f.to_owned(), l, r))
    .collect();
    assert_eq!(got, want, "fixture diagnostics drifted:\n{diags:#?}");
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let diags = flowtune_analyze::check_workspace(&fixture_root()).expect("fixture ws scans");
    let first = diags.first().expect("fixture has findings");
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("crates/cloud/src/fault.rs:4: [determinism]"),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn cli_exits_nonzero_on_fixture_violations() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .arg(fixture_root())
        .status()
        .expect("spawn analyzer CLI");
    assert_eq!(
        status.code(),
        Some(1),
        "CLI must fail on a tree with violations"
    );
}

#[test]
fn cli_exits_two_on_missing_root() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_flowtune-analyze"))
        .arg(fixture_root().join("no-such-dir"))
        .status()
        .expect("spawn analyzer CLI");
    assert_eq!(
        status.code(),
        Some(2),
        "CLI must report I/O errors distinctly"
    );
}
