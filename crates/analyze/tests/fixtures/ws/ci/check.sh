#!/usr/bin/env bash
# Fixture check script for golden-coverage: one good reference, one
# dangling — for both the tests/golden/ files and the root BENCH_*.json
# perf baselines. The scratch-copy path must not count as a reference.
diff tests/golden/used.json tests/golden/used.json
cat tests/golden/missing.json
grep -q schema BENCH_used.json
grep -q schema BENCH_missing.json
cp BENCH_used.json "$scratch/BENCH_orphan.json"
