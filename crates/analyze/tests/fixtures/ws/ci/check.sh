#!/usr/bin/env bash
# Fixture check script for golden-coverage: one good reference, one dangling.
diff tests/golden/used.json tests/golden/used.json
cat tests/golden/missing.json
