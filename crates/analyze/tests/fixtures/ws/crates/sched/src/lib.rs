//! Fixture `flowtune-sched`: determinism violations and a waiver.

pub fn stamp() -> u64 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos() as u64
}

pub fn host() -> Option<String> {
    std::env::var("FLOWTUNE_FIXTURE_HOST").ok()
}

// flowtune-allow(determinism): fixture proof that determinism waivers work
pub const EPOCH: std::time::SystemTime = std::time::SystemTime::UNIX_EPOCH;
