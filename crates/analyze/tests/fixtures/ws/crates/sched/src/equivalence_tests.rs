//! Fixture for an out-of-line test-only module: the file-level
//! `#![cfg(test)]` below must exempt everything here, exactly like
//! the real flowtune-sched equivalence suite.

#![cfg(test)]

use std::collections::HashMap;

pub fn golden_diff(got: &HashMap<u32, u64>) -> u64 {
    let started = std::time::Instant::now();
    *got.values().max().unwrap() + started.elapsed().as_millis() as u64
}
