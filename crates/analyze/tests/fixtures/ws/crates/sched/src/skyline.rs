//! Fixture for the scheduler's cached-state shapes (DESIGN §5f): the
//! incremental objective caches iterate per-container state and
//! materialize reduce survivors, so hash-ordered caches and panicking
//! cache lookups in exactly these shapes must keep firing.

use std::collections::HashMap;

pub struct CachedPartial {
    pub gap_internal: HashMap<u32, u64>,
}

impl CachedPartial {
    pub fn idle_cached(&self) -> u64 {
        self.gap_internal.values().copied().max().unwrap()
    }

    pub fn money_delta(&self, container: u32) -> u64 {
        // flowtune-allow(panic-hygiene): fixture proof cache waivers work
        *self.gap_internal.get(&container).expect("container leased")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_stay_exempt() {
        let m: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        assert!(m.get(&0).is_none());
    }
}
