//! Obs-discipline fixture: name format and duplicate-kind findings.

pub fn emit() {
    flowtune_obs::count("obsfix.steps", 1);
    flowtune_obs::count("NotSnake.Case", 1);
    flowtune_obs::observe("obsfix.steps", 2.0);
    // flowtune-allow(obs-discipline): fixture shows a waived dual-kind recording
    flowtune_obs::gauge("obsfix.steps", 3.0);
    obs_event!("obsfix.step_event");
    obs_event!("obsfix.step_event");
}
