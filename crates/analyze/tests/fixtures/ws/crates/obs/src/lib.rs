//! Fixture `flowtune-obs`: the observability layer sits on the
//! simulation output path, so hash-order iteration, wall clocks, and
//! panics in its library code must all fire.

use std::collections::HashMap;

pub fn metric_snapshot(counters: &HashMap<String, u64>) -> u64 {
    let started = std::time::Instant::now();
    let total: u64 = counters.values().sum();
    total + started.elapsed().as_millis() as u64
}

pub fn stamped(events: &[u64]) -> u64 {
    // flowtune-allow(panic-hygiene): fixture proof that obs waivers work
    *events.last().unwrap()
}

pub fn seeded() -> u64 {
    flowtune_common::seed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_stay_exempt() {
        let now = std::time::SystemTime::now();
        assert!(now.elapsed().is_ok());
    }
}
