//! Fixture composite-candidate metrics: the `tuner.composite_*` names
//! the real tree records, with a waived dual-kind recording next to a
//! malformed name that must still fire.

pub fn record(survivors: usize, subsumed: usize) {
    flowtune_obs::count("tuner.composite_candidates", survivors as u64);
    // flowtune-allow(obs-discipline): fixture shows the waived dual-kind shape candidates.rs relies on
    flowtune_obs::observe("tuner.composite_candidates", subsumed as f64);
    flowtune_obs::count("Tuner.CompositeSubsumed", subsumed as u64);
}
