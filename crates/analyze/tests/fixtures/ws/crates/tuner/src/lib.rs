//! Fixture `flowtune-tuner`: ordered-iteration, panic-hygiene, and
//! newtype-discipline violations plus waivers and test-region escapes.

use std::collections::HashMap;
// flowtune-allow(ordered-iteration): fixture proof that waivers suppress findings
use std::collections::HashSet;

pub fn lookup(m: &HashMap<u32, u32>) -> u32 {
    *m.get(&0).unwrap()
}

pub fn waived(v: Option<u32>) -> u32 {
    // flowtune-allow(panic-hygiene): the fixture caller always passes Some
    v.expect("fixture invariant")
}

pub fn pay(total_cost: f64) -> f64 {
    total_cost + flowtune_common::seed() as f64
}

pub fn dedup(v: &[u32]) -> usize {
    let s: HashSet<u32> = v.iter().copied().collect();
    s.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_regions_are_exempt() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(*m.get(&1).unwrap(), 2);
    }
}
