//! A fixture experiment that documents why it opts out of the harness.

// flowtune-allow(bin-hygiene): fixture binary exercising the waiver path
fn main() {}
