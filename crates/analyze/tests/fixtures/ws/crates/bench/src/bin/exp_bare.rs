//! Bin-hygiene fixture: an experiment missing the harness plumbing.

fn main() {
    println!("no obs guard, no smoke flag");
}
