//! Fixture `flowtune-common`: exempt from newtype-discipline, so the
//! raw money/time fields below must produce no findings.

/// Raw quantity fields are allowed here — this crate defines the newtypes.
pub struct Pricing {
    pub vm_price: f64,
    pub storage_cost: f64,
}

/// Deterministic token other fixture crates can reference.
pub const fn seed() -> u32 {
    42
}
