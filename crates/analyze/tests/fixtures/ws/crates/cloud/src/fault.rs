//! Fixture `flowtune-cloud`: ambient entropy in the fault stream.

pub fn ambient_fault_seed() -> u64 {
    rand::thread_rng().next_u64()
}

pub fn reseeded_fault_stream() -> u64 {
    rand::rngs::SmallRng::from_entropy().next_u64()
}

// flowtune-allow(determinism): fixture proof that fault-stream waivers work
pub const FIXED_EPOCH: std::time::SystemTime = std::time::SystemTime::UNIX_EPOCH;

#[cfg(test)]
mod tests {
    #[test]
    fn env_lookups_are_test_exempt() {
        assert!(std::env::var("FLOWTUNE_FAULT_FIXTURE").is_err());
    }
}
