//! Waiver-audit fixture: stale, unknown-rule, and reason-less waivers.

// flowtune-allow(determinism): nothing below touches a clock any more
pub fn quiet() -> u64 {
    7
}

// flowtune-allow(no-such-rule): typo'd rule name, so the intended waiver is dead
pub const X: u64 = 1;

// flowtune-allow(panic-hygiene)
pub const Y: u64 = 2;

// flowtune-allow(waiver-audit): kept to document the suppression pattern
// flowtune-allow(ordered-iteration): stale on purpose, audit-waived above
pub const Z: u64 = 3;
