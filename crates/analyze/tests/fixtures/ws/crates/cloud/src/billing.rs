//! Cast-discipline fixture: raw `as` casts on money/time idents.

pub fn bill(leased_quanta: u64) -> f64 {
    let dollars = leased_quanta as f64 * 0.1;
    // flowtune-allow(cast-discipline): quanta counts stay below 2^53 here
    let waived = leased_quanta as f64;
    dollars + waived
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_in_tests_are_exempt() {
        let total_cost = 5u64;
        let _c = total_cost as f64;
    }
}
