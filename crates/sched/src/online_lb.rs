//! The online load-balance baseline scheduler.
//!
//! "An online load balance scheduler (online) typically deployed in
//! elastic clouds" (§6): it examines the dataflow graph in an online
//! greedy fashion, assigning each ready operator to the least-loaded
//! container so that load balance is achieved. It produces a single
//! schedule and, crucially, ignores data placement — which is why it
//! loses badly on data-intensive dataflows (Fig. 7).

#[cfg(test)]
use flowtune_common::OpId;
use flowtune_common::{ContainerId, SimDuration, SimTime};
use flowtune_dataflow::Dag;

use crate::schedule::{Assignment, Schedule};

/// The baseline scheduler.
#[derive(Debug, Clone)]
pub struct OnlineLoadBalanceScheduler {
    /// Pool size: containers to balance across. The paper's elastic
    /// setting sizes the pool to the dataflow's parallelism, bounded by
    /// the provider cap.
    pub max_containers: u32,
    /// Network bandwidth (bytes/s) for inter-container transfers — the
    /// transfers still *happen*, the scheduler just doesn't optimise for
    /// them.
    pub network_bandwidth: f64,
}

impl Default for OnlineLoadBalanceScheduler {
    fn default() -> Self {
        OnlineLoadBalanceScheduler {
            max_containers: 100,
            network_bandwidth: 1e9 / 8.0,
        }
    }
}

impl OnlineLoadBalanceScheduler {
    /// Create a baseline scheduler.
    pub fn new(max_containers: u32, network_bandwidth: f64) -> Self {
        OnlineLoadBalanceScheduler {
            max_containers,
            network_bandwidth,
        }
    }

    /// Produce the single greedy schedule.
    pub fn schedule(&self, dag: &Dag) -> Schedule {
        if dag.is_empty() {
            return Schedule::new();
        }
        let pool = (dag.width().max(1) as u32).min(self.max_containers) as usize;
        let mut free = vec![SimTime::ZERO; pool];
        let mut load = vec![SimDuration::ZERO; pool];
        let mut op_end = vec![SimTime::ZERO; dag.len()];
        let mut op_container = vec![0usize; dag.len()];
        let mut assignments = Vec::with_capacity(dag.len());
        for op in dag.topo_order() {
            // Least loaded container (ties: lowest id) — load balance,
            // blind to where the inputs live.
            #[allow(clippy::expect_used)]
            let c = (0..pool)
                .min_by_key(|&c| (load[c], c))
                // flowtune-allow(panic-hygiene): SchedulerConfig::validate rejects a zero container pool
                .expect("pool is non-empty");
            let mut ready = SimTime::ZERO;
            for &pred in dag.preds(op) {
                let mut t = op_end[pred.index()];
                if op_container[pred.index()] != c {
                    t += SimDuration::from_secs_f64(
                        dag.edge_bytes(pred, op) as f64 / self.network_bandwidth,
                    );
                }
                ready = ready.max(t);
            }
            let start = ready.max(free[c]);
            let end = start + dag.op(op).runtime;
            assignments.push(Assignment {
                op,
                container: ContainerId(c as u32),
                start,
                end,
                build: None,
            });
            free[c] = end;
            load[c] += dag.op(op).runtime;
            op_end[op.index()] = end;
            op_container[op.index()] = c;
        }
        Schedule::from_assignments(assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_common::SimRng;
    use flowtune_dataflow::{App, Edge, OpSpec};

    fn op(i: u32, secs: u64) -> OpSpec {
        OpSpec::new(OpId(i), format!("op{i}"), SimDuration::from_secs(secs))
    }

    #[test]
    fn produces_valid_schedules() {
        let sched = OnlineLoadBalanceScheduler::default();
        let mut rng = SimRng::seed_from_u64(1);
        for app in App::ALL {
            let dag = app.generate(100, &[], &mut rng);
            let s = sched.schedule(&dag);
            s.validate(&dag).unwrap();
        }
    }

    #[test]
    fn parallel_ops_are_spread() {
        // Three independent 30 s ops: load balancing uses 3 containers.
        let dag = Dag::new(vec![op(0, 30), op(1, 30), op(2, 30)], vec![]).unwrap();
        let s = OnlineLoadBalanceScheduler::default().schedule(&dag);
        assert_eq!(s.containers().len(), 3);
        assert_eq!(s.makespan(), SimDuration::from_secs(30));
    }

    #[test]
    fn respects_container_cap() {
        let dag = Dag::new((0..10).map(|i| op(i, 10)).collect(), vec![]).unwrap();
        let s = OnlineLoadBalanceScheduler::new(2, 1e9 / 8.0).schedule(&dag);
        assert!(s.containers().len() <= 2);
        s.validate(&dag).unwrap();
    }

    #[test]
    fn ignores_data_placement_unlike_skyline() {
        // Chain with an enormous edge: LB may place the consumer on an
        // idle container and eat the transfer; either way the schedule
        // stays *valid*, it's just slower than co-location.
        let dag = Dag::new(
            vec![op(0, 10), op(1, 5), op(2, 10)],
            vec![
                Edge {
                    from: OpId(0),
                    to: OpId(2),
                    bytes: 12_500_000_000,
                },
                Edge {
                    from: OpId(1),
                    to: OpId(2),
                    bytes: 0,
                },
            ],
        )
        .unwrap();
        let s = OnlineLoadBalanceScheduler::default().schedule(&dag);
        s.validate(&dag).unwrap();
    }

    #[test]
    fn empty_dag() {
        let dag = Dag::new(vec![], vec![]).unwrap();
        assert!(OnlineLoadBalanceScheduler::default()
            .schedule(&dag)
            .is_empty());
    }
}
